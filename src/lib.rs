#![warn(missing_docs)]

//! # topk-monitor
//!
//! Continuous monitoring of top-k queries over sliding windows — a
//! production-quality Rust implementation of *Mouratidis, Bakiras,
//! Papadias, SIGMOD 2006* (DOI 10.1145/1142473.1142544).
//!
//! A d-dimensional append-only stream flows through a sliding window
//! (count-based or time-based); the server continuously reports, for every
//! registered query, the k valid tuples with the highest score under the
//! query's monotone preference function. Valid tuples live in main memory,
//! indexed by a regular grid with per-cell *influence lists* that restrict
//! maintenance work to the sub-domains of the workspace that can change
//! some result.
//!
//! ## Quick start
//!
//! ```
//! use topk_monitor::{MonitorServer, Query, ScoreFn, ServerConfig};
//!
//! // An SMA server over a count-based window of the 1000 most recent
//! // 2-attribute tuples.
//! let mut server = MonitorServer::new(ServerConfig::sma(2, 1000)).unwrap();
//! let q = server
//!     .register(Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap())
//!     .unwrap();
//!
//! // One processing cycle: three arrivals (flat coordinate buffer).
//! server.tick(&[0.9, 0.4, 0.3, 0.8, 0.5, 0.5]).unwrap();
//!
//! let top = server.result(q).unwrap();
//! assert_eq!(top.len(), 3);
//! assert!(top[0].score >= top[1].score);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`tkm_common`] | ids, ordered floats, hashing, scoring functions, rectangles |
//! | [`tkm_ostree`] | order-statistic AVL tree |
//! | [`tkm_window`] | count/time sliding windows, update-stream slab store |
//! | [`tkm_grid`] | regular grid, point lists, influence lists |
//! | [`tkm_skyband`] | k-skyband with dominance counters |
//! | [`tkm_tsl`] | TSL baseline (sorted lists + TA + kmax views) |
//! | [`tkm_core`] | TMA, SMA, computation module, §7 extensions, server |
//! | [`tkm_service`] | TCP serving layer: wire protocol, sessions, delta fan-out |
//! | [`tkm_datagen`] | IND/ANT generators, query workloads, stream simulator |
//! | [`tkm_analysis`] | §6 analytical cost model |
//!
//! The most common items are re-exported at the root.

/// Every fenced `rust` block in the README compiles and runs as a doctest
/// of this item (`cargo test --doc`), so the README's snippets can never
/// drift from the real API again.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use tkm_analysis::ModelParams;
pub use tkm_common::{
    LinearFn, Monotonicity, OrderedF64, ProductFn, QuadraticFn, QueryId, QuerySlot, Rect, Result,
    ScoreFn, Scored, ScoringFunction, Timestamp, TkmError, TupleId, MAX_DIMS,
};
pub use tkm_core::{
    build_engine, compute_topk, ComputeScratch, ContinuousTopK, EngineKind, EngineStats, GridSpec,
    IngestState, MonitorServer, OracleMonitor, ParallelMonitor, PiecewiseMonitor, PiecewiseQuery,
    Query, QueryMaintenance, QueryRegistry, ResultDelta, ServerConfig, SharedParallelMonitor,
    SharedSmaMonitor, SharedTmaMonitor, SmaMaintenance, SmaMonitor, ThresholdMonitor,
    TmaMaintenance, TmaMonitor, UpdateOp, UpdateStreamTma,
};
pub use tkm_datagen::{DataDist, FnFamily, PointGen, QueryGen, StreamSim};
pub use tkm_service::{Service, ServiceClient, ServiceConfig, TickPolicy};
pub use tkm_skyband::{tuned_kmax, Skyband};
pub use tkm_tsl::{KmaxPolicy, TslMonitor};
pub use tkm_window::{CountWindow, SlabStore, TimeWindow, TupleLookup, Window, WindowSpec};

// Full sub-crate access for advanced use.
pub use tkm_analysis as analysis;
pub use tkm_common as common;
pub use tkm_core as engines;
pub use tkm_datagen as datagen;
pub use tkm_grid as grid;
pub use tkm_ostree as ostree;
pub use tkm_service as service;
pub use tkm_skyband as skyband;
pub use tkm_tsl as baseline;
pub use tkm_window as window;
