//! Threshold monitoring (§7) against a brute-force reference, with delta
//! exactness.

mod common;

use common::BatchGen;
use proptest::prelude::*;
use topk_monitor::engines::GridSpec;
use topk_monitor::{
    DataDist, QueryId, ScoreFn, ThresholdMonitor, Timestamp, TupleId, Window, WindowSpec,
};

fn brute(window: &Window, f: &ScoreFn, tau: f64) -> Vec<TupleId> {
    let mut out: Vec<TupleId> = window
        .iter()
        .filter(|(_, c)| f.score(c) > tau)
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn matching_set_tracks_brute_force() {
    let dims = 3;
    let mut m =
        ThresholdMonitor::new(dims, WindowSpec::Count(200), GridSpec::PerDim(5)).expect("config");
    let fns = [
        (ScoreFn::linear(vec![1.0, 1.0, 1.0]).unwrap(), 2.2),
        (ScoreFn::linear(vec![1.0, -1.0, 0.5]).unwrap(), 1.1),
        (ScoreFn::product(vec![0.0, 0.0, 0.0]).unwrap(), 0.5),
    ];
    for (i, (f, tau)) in fns.iter().enumerate() {
        m.register_query(QueryId(i as u64), f.clone(), *tau)
            .expect("register");
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, 55);
    for t in 0..50u64 {
        m.tick(Timestamp(t), &stream.batch(20)).expect("tick");
        for (i, (f, tau)) in fns.iter().enumerate() {
            let mut got: Vec<TupleId> = m
                .matching(QueryId(i as u64))
                .expect("matching")
                .iter()
                .copied()
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute(m.window(), f, *tau), "query {i} at tick {t}");
        }
    }
}

/// Added/removed deltas reconstruct the matching set exactly.
#[test]
fn deltas_reconstruct_the_set() {
    let dims = 2;
    let mut m =
        ThresholdMonitor::new(dims, WindowSpec::Count(60), GridSpec::PerDim(6)).expect("config");
    let f = ScoreFn::linear(vec![2.0, 1.0]).unwrap();
    m.register_query(QueryId(0), f.clone(), 1.8)
        .expect("register");
    let mut reconstructed = std::collections::BTreeSet::new();
    let mut stream = BatchGen::new(dims, DataDist::Ind, 8);
    for t in 0..60u64 {
        m.tick(Timestamp(t), &stream.batch(9)).expect("tick");
        for add in m.added(QueryId(0)).expect("added") {
            assert!(reconstructed.insert(add.id), "duplicate add {}", add.id);
        }
        for rem in m.removed(QueryId(0)).expect("removed") {
            assert!(reconstructed.remove(rem), "removal of absent {rem}");
        }
        let mut got: Vec<TupleId> = m
            .matching(QueryId(0))
            .expect("matching")
            .iter()
            .copied()
            .collect();
        got.sort_unstable();
        let want: Vec<TupleId> = reconstructed.iter().copied().collect();
        assert_eq!(got, want, "delta stream diverged at tick {t}");
    }
}

/// Time-window threshold queries expire matches by age.
#[test]
fn time_window_thresholds() {
    let dims = 2;
    let mut m =
        ThresholdMonitor::new(dims, WindowSpec::Time(4), GridSpec::PerDim(5)).expect("config");
    let f = ScoreFn::quadratic(vec![1.0, 1.0]).unwrap();
    m.register_query(QueryId(1), f.clone(), 1.2)
        .expect("register");
    let mut stream = BatchGen::new(dims, DataDist::Ant, 19);
    for t in 0..40u64 {
        let n = 4 + (t % 6) as usize;
        m.tick(Timestamp(t), &stream.batch(n)).expect("tick");
        let mut got: Vec<TupleId> = m
            .matching(QueryId(1))
            .expect("matching")
            .iter()
            .copied()
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute(m.window(), &f, 1.2), "tick {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_thresholds_match(
        tau in 0.0f64..2.0,
        w1 in -1.5f64..1.5,
        w2 in -1.5f64..1.5,
        seed in 0u64..500,
        capacity in 10usize..80,
    ) {
        let dims = 2;
        let mut m = ThresholdMonitor::new(
            dims,
            WindowSpec::Count(capacity),
            GridSpec::PerDim(4),
        ).expect("config");
        let f = ScoreFn::linear(vec![w1, w2]).expect("dims");
        m.register_query(QueryId(0), f.clone(), tau).expect("register");
        let mut stream = BatchGen::new(dims, DataDist::Ind, seed);
        for t in 0..15u64 {
            m.tick(Timestamp(t), &stream.batch(8)).expect("tick");
            let mut got: Vec<TupleId> =
                m.matching(QueryId(0)).expect("matching").iter().copied().collect();
            got.sort_unstable();
            prop_assert_eq!(got, brute(m.window(), &f, tau));
        }
    }
}
