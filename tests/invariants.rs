//! Structural invariants the engines must uphold across long streams —
//! failure injection for the book-keeping layers rather than result
//! comparison.

mod common;

use common::BatchGen;
use topk_monitor::engines::{GridSpec, SmaMonitor, TmaMonitor};
use topk_monitor::{DataDist, Query, QueryId, ScoreFn, Timestamp, WindowSpec};

/// TMA influence-list invariant: after any tick, every cell whose maxscore
/// reaches a query's current threshold must list the query (otherwise an
/// arrival could be missed), and the result members' cells must all list
/// it (otherwise an expiry could be missed).
#[test]
fn tma_influence_lists_cover_influence_region() {
    let dims = 2;
    let mut m = TmaMonitor::new(dims, WindowSpec::Count(120), GridSpec::PerDim(8)).expect("config");
    let f = ScoreFn::linear(vec![1.0, 2.0]).expect("dims");
    let q = Query::top_k(f.clone(), 5).expect("k");
    m.register_query(QueryId(0), q).expect("register");
    let mut stream = BatchGen::new(dims, DataDist::Ind, 64);
    for t in 0..60u64 {
        m.tick(Timestamp(t), &stream.batch(15)).expect("tick");
        let top = m.result(QueryId(0)).expect("result");
        if top.len() < 5 {
            continue;
        }
        let threshold = top.last().expect("k = 5").score.get();
        let slot = m.query_slot(QueryId(0)).expect("live query");
        for (cid, _) in m.grid().cells() {
            if m.grid().maxscore(cid, &f) >= threshold {
                assert!(
                    m.influence().contains(cid, slot),
                    "cell {cid:?} (maxscore ≥ threshold {threshold}) not listed at tick {t}"
                );
            }
        }
    }
}

/// SMA skyband invariants across a long stream: strict descending order,
/// dominance counters below k, top prefix = true top-k, and bounded size.
#[test]
fn sma_skyband_invariants_over_time() {
    let dims = 3;
    let k = 8;
    let mut m = SmaMonitor::new(dims, WindowSpec::Count(200), GridSpec::PerDim(5)).expect("config");
    let f = ScoreFn::linear(vec![0.5, 1.5, 1.0]).expect("dims");
    m.register_query(QueryId(0), Query::top_k(f.clone(), k).expect("k"))
        .expect("register");
    let mut stream = BatchGen::new(dims, DataDist::Ant, 12);
    for t in 0..80u64 {
        m.tick(Timestamp(t), &stream.batch(20)).expect("tick");
        // Brute-force top-k from the window.
        let mut want: Vec<topk_monitor::Scored> = m
            .window()
            .iter()
            .map(|(id, c)| topk_monitor::Scored::new(f.score(c), id))
            .collect();
        want.sort_by(|a, b| b.cmp(a));
        want.truncate(k);
        assert_eq!(m.result(QueryId(0)).expect("result"), want, "tick {t}");
        // Dominance pruning keeps the band near k·ln(M/k) where M is the
        // above-threshold population — far below the window size. Without
        // pruning it would approach the window size itself. (The paper's
        // Table 2 setting — a 1M window — keeps it at ≈ k; tiny windows
        // are noisier.)
        let len = m.skyband_len(QueryId(0)).expect("len");
        assert!(
            len <= 10 * k,
            "skyband ballooned to {len} at tick {t} (pruning broken)"
        );
    }
}

/// Grid point lists and the window must stay in lockstep: every windowed
/// tuple is in exactly the cell covering its coordinates.
#[test]
fn grid_window_lockstep() {
    let dims = 2;
    let mut m = TmaMonitor::new(dims, WindowSpec::Count(80), GridSpec::PerDim(6)).expect("config");
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("dims"), 3).expect("k");
    m.register_query(QueryId(0), q).expect("register");
    let mut stream = BatchGen::new(dims, DataDist::Ind, 2);
    for t in 0..40u64 {
        m.tick(Timestamp(t), &stream.batch(11)).expect("tick");
        let mut grid_total = 0usize;
        for (cid, cell) in m.grid().cells() {
            for (id, cell_coords) in cell.points().iter() {
                grid_total += 1;
                let coords = m.window().coords(id).expect("grid tuple must be valid");
                assert_eq!(
                    cell_coords, coords,
                    "cell block coords diverge from window for tuple {id}"
                );
                assert_eq!(m.grid().locate(coords), cid, "tuple {id} in wrong cell");
            }
        }
        assert_eq!(grid_total, m.window().len(), "index/window size mismatch");
    }
}

/// After removing every query, no influence entries may remain anywhere,
/// for both engines, including constrained queries.
#[test]
fn no_influence_leaks_after_removal() {
    let dims = 2;
    let rect = topk_monitor::Rect::new(vec![0.2, 0.4], vec![0.8, 0.9]).expect("rect");
    let fns = [
        Query::top_k(ScoreFn::linear(vec![1.0, 0.5]).expect("d"), 4).expect("k"),
        Query::top_k(ScoreFn::linear(vec![-1.0, 1.0]).expect("d"), 2).expect("k"),
        Query::constrained(ScoreFn::linear(vec![0.3, 0.9]).expect("d"), 3, rect).expect("k"),
    ];
    let mut tma =
        TmaMonitor::new(dims, WindowSpec::Count(100), GridSpec::PerDim(7)).expect("config");
    let mut sma =
        SmaMonitor::new(dims, WindowSpec::Count(100), GridSpec::PerDim(7)).expect("config");
    let mut stream = BatchGen::new(dims, DataDist::Ind, 9);
    // Interleave: register, stream, remove, stream, verify.
    for (i, q) in fns.iter().enumerate() {
        tma.register_query(QueryId(i as u64), q.clone())
            .expect("tma");
        sma.register_query(QueryId(i as u64), q.clone())
            .expect("sma");
    }
    for t in 0..25u64 {
        let b = stream.batch(12);
        tma.tick(Timestamp(t), &b).expect("tick");
        sma.tick(Timestamp(t), &b).expect("tick");
    }
    for i in 0..fns.len() {
        tma.remove_query(QueryId(i as u64)).expect("remove");
        sma.remove_query(QueryId(i as u64)).expect("remove");
    }
    let leaks = |label: &str, total: usize| {
        assert_eq!(total, 0, "{label} leaked {total} influence entries");
    };
    leaks("TMA", tma.influence().total_entries());
    leaks("SMA", sma.influence().total_entries());
}

/// Engine statistics are self-consistent after a run.
#[test]
fn stats_are_consistent() {
    let dims = 2;
    let mut m = SmaMonitor::new(dims, WindowSpec::Count(50), GridSpec::PerDim(5)).expect("config");
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("d"), 3).expect("k");
    m.register_query(QueryId(0), q).expect("register");
    let mut stream = BatchGen::new(dims, DataDist::Ind, 41);
    for t in 0..30u64 {
        m.tick(Timestamp(t), &stream.batch(10)).expect("tick");
    }
    let s = m.stats();
    assert_eq!(s.ticks, 30);
    assert_eq!(s.arrivals, 300);
    assert_eq!(s.expirations, 300 - 50, "window keeps exactly 50");
    assert!(s.recomputations() >= 1, "the initial computation counts");
    assert!(m.space_bytes() > 0);
}
