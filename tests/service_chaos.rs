//! Seeded chaos soak over loopback: a fleet of subscribers rides out a
//! scripted fault schedule — resets, mid-line truncation, byte garbling,
//! write stalls, short writes — while an ingest connection drives hundreds
//! of ticks. Every subscriber that survives or reconnects must end with an
//! `apply_push` mirror bit-exact against an in-process oracle fed the same
//! batches, and the self-healing clients must actually have reconnected.

use std::collections::BTreeMap;
use std::time::Duration;

use topk_monitor::service::{
    apply_push, ClientError, FaultSchedule, Push, ReconnectPolicy, Service, ServiceClient,
    ServiceConfig,
};
use topk_monitor::{MonitorServer, Query, QueryId, ScoreFn, Scored, ServerConfig};

/// Data coordinates stay strictly below 1.0 (max 30/32), so a tuple at
/// exactly (1.0, 1.0) — still inside the unit workspace — scores exactly
/// `Σ wᵢ`, which no data tuple can reach: the sentinel that tells a
/// subscriber the stream is over.
fn lcg_batches(seed: u64, ticks: usize, rate: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) % 31) as f64 / 32.0
    };
    (0..ticks)
        .map(|_| (0..rate * dims).map(|_| rnd()).collect())
        .collect()
}

fn saw_sentinel(mirror: &BTreeMap<QueryId, Vec<Scored>>, q: QueryId, threshold: f64) -> bool {
    mirror
        .get(&q)
        .is_some_and(|entries| entries.iter().any(|s| s.score.get() >= threshold))
}

#[test]
fn chaos_soak_survivors_reconstruct_oracle_results() {
    let dims = 2;
    let window = 200;
    let k = 8;
    let ticks = 600;
    let scfg = ServerConfig::sma(dims, window);

    // Connection indices are deterministic: ingest dials first (session 0),
    // then the six subscribers in order (sessions 1..=6). Five of the six
    // (83% ≥ the required 25%) are faulted; reconnected sessions get fresh
    // indices with no plan, so a resumed connection runs clean.
    let schedule = FaultSchedule::parse(
        "2=reset@12|3=stall-write@9+40:10|4=garble@10|5=truncate@16|6=partial@8+50",
        0xC4A05,
    )
    .expect("schedule dsl");
    let cfg = ServiceConfig::new(scfg).with_faults(schedule);
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    // One registering connection keeps wire query ids positional with the
    // oracle's registration order.
    let weights: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]];
    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let mut qids = Vec::new();
    for w in &weights {
        qids.push(ingest.register_linear(k, w).expect("register"));
    }
    let mut oracle = MonitorServer::new(scfg).expect("oracle");
    for w in &weights {
        let f = ScoreFn::linear(w.clone()).expect("weights");
        let oid = oracle
            .register(Query::top_k(f, k).expect("query"))
            .expect("oracle register");
        assert!(qids.contains(&oid), "wire and oracle ids diverged");
    }

    // Subscribers connect serially so their session ids (and thus their
    // fault plans) are deterministic, then consume concurrently.
    let mut subs = Vec::new();
    for i in 0..6u64 {
        let policy = ReconnectPolicy {
            base: Duration::from_millis(5),
            max: Duration::from_millis(100),
            retries: 40,
            seed: 0xBAD5EED ^ i,
            ..ReconnectPolicy::default()
        };
        let mut client = ServiceClient::connect(addr)
            .expect("subscriber connect")
            .with_reconnect(policy);
        let q = qids[(i % 3) as usize];
        let threshold: f64 = weights[(i % 3) as usize].iter().sum();
        let baseline = client.subscribe(q).expect("subscribe");
        subs.push((client, q, threshold, baseline));
    }

    let handles: Vec<_> = subs
        .into_iter()
        .map(|(mut client, q, threshold, baseline)| {
            std::thread::spawn(move || {
                let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
                while !saw_sentinel(&mirror, q, threshold) {
                    let push = client.next_push().expect("push stream");
                    apply_push(&mut mirror, &push);
                }
                (client, q, mirror)
            })
        })
        .collect();

    // The soak: hundreds of ticks into both the service and the oracle,
    // then one unmistakable sentinel tick that outranks all data.
    for batch in lcg_batches(0xD15EA5E, ticks, 10, dims) {
        ingest.tick(&batch).expect("tick");
        oracle.tick(&batch).expect("oracle tick");
    }
    let sentinel: Vec<f64> = vec![1.0; k * dims];
    ingest.tick(&sentinel).expect("sentinel tick");
    oracle.tick(&sentinel).expect("oracle sentinel");

    let mut fleet_reconnects = 0u64;
    for (idx, handle) in handles.into_iter().enumerate() {
        let (mut client, q, mut mirror) = handle.join().expect("subscriber thread");
        fleet_reconnects += client.reconnects();
        if idx == 3 {
            // The garbled connection: a one-byte flip can corrupt a score
            // digit into a line that still parses, which no checksum-free
            // text protocol can detect mid-stream. The recovery story is
            // re-baselining: resume and apply the fresh RESYNC/SNAPSHOT.
            client.resume().expect("garble-victim resume");
            match client.next_push().expect("resync") {
                Push::Resync { count } => assert_eq!(count, 1),
                other => panic!("expected RESYNC, got {other:?}"),
            }
            let push = client.next_push().expect("baseline");
            assert!(matches!(push, Push::Snapshot { .. }), "got {push:?}");
            apply_push(&mut mirror, &push);
        }
        let truth = oracle.result(q).expect("oracle result");
        assert_eq!(
            mirror.get(&q).map(Vec::as_slice),
            Some(truth.as_slice()),
            "subscriber {idx} diverged from the oracle"
        );
        match idx {
            // Killed connections (reset, truncate) must have self-healed.
            1 | 4 => assert!(
                client.reconnects() >= 1,
                "subscriber {idx} never reconnected"
            ),
            _ => {}
        }
    }
    assert!(
        fleet_reconnects >= 2,
        "the fleet reconnected only {fleet_reconnects} times"
    );

    // Server-side truth matches the oracle too, and the injected faults
    // are visible to operators.
    let mut verifier = ServiceClient::connect(addr).expect("verifier");
    for (q, w) in qids.iter().zip(&weights) {
        let (_, wire) = verifier.snapshot(*q).expect("snapshot");
        let truth = oracle.result(*q).expect("oracle result");
        assert_eq!(wire, truth, "server snapshot diverged for weights {w:?}");
    }
    let stats = verifier.stats().expect("stats");
    let faults: u64 = stats["faults"].parse().expect("faults");
    assert!(faults >= 3, "fault injections recorded: {stats:?}");
    verifier.quit().expect("quit");
    let _ = ingest.quit();
    service.shutdown();
}

/// The same seed and schedule replayed twice fire the same plan and end in
/// identical re-baselined results. (Exact per-run fault *tallies* depend
/// on how the writer batches lines under OS scheduling, so byte-level
/// injection determinism is pinned by `fault.rs`'s unit tests instead.)
#[test]
fn chaos_runs_are_reproducible_given_the_seed() {
    let run = |seed: u64| -> (Vec<Scored>, u64) {
        let scfg = ServerConfig::sma(2, 50);
        let schedule = FaultSchedule::parse("1=garble@6+7", seed).expect("dsl");
        let service = Service::bind(
            "127.0.0.1:0",
            ServiceConfig::new(scfg).with_faults(schedule),
        )
        .expect("bind");
        let addr = service.local_addr();
        let mut ingest = ServiceClient::connect(addr).expect("ingest");
        let q = ingest.register_linear(4, &[1.0, 1.0]).expect("register");

        // The garbled subscriber reads pushes until the stream breaks or
        // the sentinel arrives, then is re-baselined via a fresh snapshot.
        let mut sub = ServiceClient::connect(addr)
            .expect("sub")
            .with_reconnect(ReconnectPolicy {
                base: Duration::from_millis(2),
                retries: 20,
                ..ReconnectPolicy::default()
            });
        let baseline = sub.subscribe(q).expect("subscribe");
        let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
        for batch in lcg_batches(3, 60, 4, 2) {
            ingest.tick(&batch).expect("tick");
        }
        ingest.tick(&[1.0; 8]).expect("sentinel");
        while !saw_sentinel(&mirror, q, 2.0) {
            match sub.next_push() {
                Ok(p) => {
                    apply_push(&mut mirror, &p);
                }
                Err(ClientError::Server { .. }) => panic!("server err on push stream"),
                Err(e) => panic!("push stream died: {e}"),
            }
        }
        sub.resume().expect("re-baseline");
        while sub.take_status().is_some() {}
        let _ = sub.next_push().expect("resync");
        let p = sub.next_push().expect("snapshot");
        apply_push(&mut mirror, &p);

        let stats = ingest.stats().expect("stats");
        let faults: u64 = stats["faults"].parse().expect("faults");
        let result = mirror.remove(&q).expect("mirror");
        let _ = ingest.quit();
        service.shutdown();
        (result, faults)
    };
    let (a_result, a_faults) = run(77);
    let (b_result, b_faults) = run(77);
    assert_eq!(a_result, b_result, "results differ across identical seeds");
    assert!(a_faults >= 1, "the garble plan never fired (run a)");
    assert!(b_faults >= 1, "the garble plan never fired (run b)");
}
