//! Differential suite for the coordinate-inline (SoA) cell blocks: under
//! arbitrary churn, every cell's `(id, coords)` pairs must mirror a naive
//! per-cell model exactly — through FIFO ring compactions, window-overrun
//! transients, and Hash-mode swap-removes — and the engines built on the
//! blocks must keep reporting the brute-force oracle's results.

use proptest::prelude::*;
use topk_monitor::engines::{
    GridSpec, IngestState, OracleMonitor, SmaMonitor, TmaMonitor, UpdateStreamTma,
};
use topk_monitor::grid::Grid;
use topk_monitor::{
    Query, QueryId, ScoreFn, Scored, Timestamp, TupleId, UpdateOp, Window, WindowSpec,
};

/// Rebuilds the expected per-cell contents from the window: every valid
/// tuple, grouped by its covering cell, in arrival order.
fn expected_cells(grid: &Grid, window: &Window) -> Vec<Vec<(TupleId, Vec<f64>)>> {
    let mut cells: Vec<Vec<(TupleId, Vec<f64>)>> = vec![Vec::new(); grid.num_cells()];
    for (id, coords) in window.iter() {
        cells[grid.locate(coords).0 as usize].push((id, coords.to_vec()));
    }
    cells
}

fn assert_cells_match(grid: &Grid, window: &Window, context: &str) {
    let want = expected_cells(grid, window);
    for (cid, cell) in grid.cells() {
        let got: Vec<(TupleId, Vec<f64>)> = cell
            .points()
            .iter()
            .map(|(id, c)| (id, c.to_vec()))
            .collect();
        assert_eq!(
            got, want[cid.0 as usize],
            "{context}: cell {cid:?} diverged from the window"
        );
        // The SoA arrays themselves stay aligned.
        assert_eq!(
            cell.points().ids().len() * grid.dims(),
            cell.points().coords().len()
        );
    }
}

fn brute(window: &Window, q: &Query) -> Vec<Scored> {
    let mut all: Vec<Scored> = window
        .iter()
        .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
        .map(|(id, c)| Scored::new(q.f.score(c), id))
        .collect();
    all.sort_by(|a, b| b.cmp(a));
    all.truncate(q.k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FIFO blocks vs the window under arbitrary arrival/expiry churn.
    /// Small capacities force constant expiry (ring-compaction boundaries)
    /// and bursts larger than the window create same-cycle transients.
    #[test]
    fn fifo_cells_mirror_window_under_churn(
        capacity in 1usize..40,
        per_dim in 1usize..8,
        bursts in prop::collection::vec(prop::collection::vec((0u32..32, 0u32..32), 0..50), 1..20),
    ) {
        let dims = 2;
        let mut s = IngestState::new(dims, WindowSpec::Count(capacity), GridSpec::PerDim(per_dim))
            .expect("config");
        for (t, burst) in bursts.iter().enumerate() {
            let mut batch = Vec::with_capacity(burst.len() * dims);
            for (a, b) in burst {
                batch.push(*a as f64 / 31.0);
                batch.push(*b as f64 / 31.0);
            }
            s.ingest(Timestamp(t as u64), &batch).expect("ingest");
            assert_cells_match(s.grid(), s.window(), &format!("tick {t}"));
        }
    }

    /// Hash blocks vs a naive model under explicit out-of-order deletes
    /// (the §7 update-stream discipline): swap-removes must keep the id
    /// and coordinate arrays aligned, and the TMA engine on top must keep
    /// matching a full rescan.
    #[test]
    fn hash_cells_and_engine_survive_explicit_deletes(
        per_dim in 1usize..7,
        k in 1usize..6,
        w1 in -2.0f64..2.0,
        w2 in -2.0f64..2.0,
        ops in prop::collection::vec((0u32..32, 0u32..32, 0u32..4), 1..120),
    ) {
        let dims = 2;
        let mut m = UpdateStreamTma::new(dims, GridSpec::PerDim(per_dim)).expect("config");
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        m.register_query(QueryId(0), q.clone()).expect("register");
        let mut live: Vec<TupleId> = Vec::new();
        let mut cycle = Vec::new();
        for (i, (a, b, action)) in ops.iter().enumerate() {
            // action 0: delete a pseudo-random live tuple; else insert.
            if *action == 0 && live.len() > 1 {
                let victim = live.remove((*a as usize + i) % live.len());
                cycle.push(UpdateOp::Delete(victim));
            } else {
                cycle.push(UpdateOp::Insert(vec![*a as f64 / 31.0, *b as f64 / 31.0]));
            }
            if cycle.len() == 4 {
                let ids = m.apply(&cycle).expect("apply");
                live.extend(ids);
                cycle.clear();
                // Engine result stays exact over the hash blocks.
                let mut all: Vec<Scored> = m
                    .store()
                    .iter()
                    .map(|(id, c)| Scored::new(q.f.score(c), id))
                    .collect();
                all.sort_by(|x, y| y.cmp(x));
                all.truncate(q.k);
                prop_assert_eq!(m.result(QueryId(0)).expect("result"), &all[..]);
            }
        }
        // Drain the remaining partial cycle so the store is settled, then
        // check the index: every live tuple is in exactly its covering
        // cell with its coordinates aligned, and nothing else is indexed.
        if !cycle.is_empty() {
            m.apply(&cycle).expect("apply");
        }
        let mut total = 0usize;
        for (id, coords) in m.store().iter() {
            let cid = m.grid().locate(coords);
            let found = m
                .grid()
                .cell(cid)
                .points()
                .iter()
                .any(|(pid, pc)| pid == id && pc == coords);
            prop_assert!(found, "tuple {id:?} missing from its cell block");
            total += 1;
        }
        let indexed: usize = m.grid().cells().map(|(_, c)| c.points().len()).sum();
        prop_assert_eq!(indexed, total, "grid indexes a dead tuple");
    }

    /// Expiry-heavy engine differential: tiny windows and big bursts make
    /// every tick recompute (exercising the region-bound influence skip)
    /// while the FIFO blocks compact constantly. TMA and SMA must match
    /// the oracle on every cycle.
    #[test]
    fn engines_match_oracle_under_heavy_expiry(
        capacity in 2usize..12,
        k in 1usize..8,
        per_dim in 2usize..8,
        w1 in -2.0f64..2.0,
        w2 in -2.0f64..2.0,
        bursts in prop::collection::vec(prop::collection::vec((0u32..24, 0u32..24), 0..10), 1..30),
    ) {
        let dims = 2;
        let window = WindowSpec::Count(capacity);
        let grid = GridSpec::PerDim(per_dim);
        let mut tma = TmaMonitor::new(dims, window, grid).expect("config");
        let mut sma = SmaMonitor::new(dims, window, grid).expect("config");
        let mut oracle = OracleMonitor::new(dims, window).expect("config");
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        tma.register_query(QueryId(0), q.clone()).expect("register");
        sma.register_query(QueryId(0), q.clone()).expect("register");
        oracle.register_query(QueryId(0), q.clone()).expect("register");
        for (t, burst) in bursts.iter().enumerate() {
            let mut batch = Vec::with_capacity(burst.len() * dims);
            for (a, b) in burst {
                batch.push(*a as f64 / 23.0);
                batch.push(*b as f64 / 23.0);
            }
            let ts = Timestamp(t as u64);
            tma.tick(ts, &batch).expect("tick");
            sma.tick(ts, &batch).expect("tick");
            oracle.tick(ts, &batch).expect("tick");
            let want = oracle.result(QueryId(0)).expect("oracle");
            prop_assert_eq!(tma.result(QueryId(0)).expect("tma"), want, "TMA tick {}", t);
            prop_assert_eq!(&sma.result(QueryId(0)).expect("sma")[..], want, "SMA tick {}", t);
            prop_assert_eq!(&brute(tma.window(), &q)[..], want, "window drift tick {}", t);
        }
    }
}
