//! Failure-mode tests of the serving layer: heartbeats, idle reaping,
//! oversized-line recovery, overload shedding, leak-free teardown of
//! abruptly-vanished clients, and client-side reconnect/resume.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use topk_monitor::service::{
    apply_push, ClientError, ClientStatus, Push, ReconnectPolicy, Service, ServiceClient,
    ServiceConfig,
};
use topk_monitor::ServerConfig;

/// Number of threads in this process, from /proc/self/status. `None` when
/// the platform doesn't expose it (the caller then skips thread-count
/// assertions but keeps the rest of its checks).
fn thread_count() -> Option<usize> {
    let mut text = String::new();
    std::fs::File::open("/proc/self/status")
        .ok()?
        .read_to_string(&mut text)
        .ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn ask(raw: &mut TcpStream, lines: &mut BufReader<TcpStream>, req: &str) -> String {
    raw.write_all(req.as_bytes()).expect("write");
    raw.write_all(b"\n").expect("write nl");
    // Skip asynchronous pushes (e.g. the baseline SNAPSHOT a SUBSCRIBE
    // enqueues before its OK): the reply is the first OK/ERR line.
    loop {
        let mut line = String::new();
        lines.read_line(&mut line).expect("read");
        let line = line.trim();
        if line.starts_with("OK") || line.starts_with("ERR") {
            return line.to_string();
        }
    }
}

#[test]
fn ping_pong_heartbeat() {
    let service =
        Service::bind("127.0.0.1:0", ServiceConfig::new(ServerConfig::sma(2, 10))).expect("bind");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
    client.ping().expect("ping");
    client.ping().expect("ping again");
    client.quit().expect("quit");
    service.shutdown();
}

/// An oversized request line is answered with `ERR parse` and the session
/// keeps working — it used to kill the connection. Same for binary junk
/// that is not UTF-8, and for a hostile `k` that must be rejected before
/// it reaches an allocator.
#[test]
fn oversized_and_binary_lines_answer_err_and_survive() {
    let service =
        Service::bind("127.0.0.1:0", ServiceConfig::new(ServerConfig::sma(2, 10))).expect("bind");
    let mut raw = TcpStream::connect(service.local_addr()).expect("connect");
    let mut lines = BufReader::new(raw.try_clone().expect("clone"));

    // 1.5 MiB of 'a' in one line: over the 1 MiB cap.
    let huge = vec![b'a'; 3 << 19];
    raw.write_all(&huge).expect("write huge");
    raw.write_all(b"\n").expect("write nl");
    let mut line = String::new();
    lines.read_line(&mut line).expect("read");
    assert!(
        line.starts_with("ERR parse ") && line.contains("exceeds"),
        "oversized line reply: {line:?}"
    );

    // The session survived: next request answered normally.
    assert_eq!(ask(&mut raw, &mut lines, "PING"), "OK pong");

    // A complete line of invalid UTF-8 is also an ERR, not a hangup.
    raw.write_all(&[0xC3, 0x28, 0xFF, b'\n']).expect("binary");
    let mut line = String::new();
    lines.read_line(&mut line).expect("read");
    assert!(
        line.starts_with("ERR parse ") && line.contains("UTF-8"),
        "binary line reply: {line:?}"
    );
    assert_eq!(ask(&mut raw, &mut lines, "PING"), "OK pong");

    let reply = ask(&mut raw, &mut lines, "REGISTER k=999999999999 weights=1,1");
    assert!(reply.starts_with("ERR bad-arg "), "huge k reply: {reply:?}");
    assert_eq!(ask(&mut raw, &mut lines, "QUIT"), "OK bye");
    service.shutdown();
}

/// A connection silent in both directions past the idle deadline is
/// reaped (counted in `STATS reaped=`); a connection that heartbeats
/// stays alive across many deadlines.
#[test]
fn idle_sessions_are_reaped_heartbeats_are_not() {
    let cfg =
        ServiceConfig::new(ServerConfig::sma(2, 10)).with_idle_timeout(Duration::from_millis(150));
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    // The victim: connects and never speaks.
    let victim = TcpStream::connect(addr).expect("victim connect");
    // The observer polls STATS; every request is activity, so it is never
    // idle itself.
    let mut observer = ServiceClient::connect(addr).expect("observer");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = observer.stats().expect("stats");
        if stats["reaped"] == "1" && stats["sessions"] == "1" {
            break;
        }
        assert!(Instant::now() < deadline, "victim never reaped: {stats:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
    // The reaped socket is actually closed: reads see EOF (tolerating a
    // timeout instead of flaking on scheduler delay).
    let mut probe = victim.try_clone().expect("clone");
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 8];
    assert_eq!(probe.read(&mut buf).unwrap_or(0), 0, "victim socket EOF");

    // A silent-but-heartbeating client outlives many idle deadlines. The
    // observer polls along so it does not go idle itself.
    let mut beater = ServiceClient::connect(addr).expect("beater");
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(80));
        beater.ping().expect("heartbeat");
        observer.stats().expect("observer heartbeat");
    }
    let stats = observer.stats().expect("stats");
    assert_eq!(stats["reaped"], "1", "the heartbeater was not reaped");
    beater.quit().expect("quit");
    observer.quit().expect("quit");
    service.shutdown();
}

/// The writer-thread leak regression: a subscriber that vanishes without
/// closing its socket (keeps the connection open, stops reading) used to
/// leave its writer thread blocked forever and its `DeltaRouter`
/// subscription (plus router bytes) leaked. With a write deadline the
/// session is poisoned, both its threads exit, and the subscription is
/// dropped — counters return to baseline.
#[test]
fn abrupt_disconnect_reaps_threads_and_subscriptions() {
    let cfg = ServiceConfig::new(ServerConfig::sma(2, 64))
        .with_write_timeout(Duration::from_millis(200))
        .with_push_queue(1 << 20); // no resyncs: keep the socket filling
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let q = ingest.register_linear(64, &[1.0, 1.0]).expect("register");

    let baseline_stats = ingest.stats().expect("stats");
    let baseline_router: u64 = baseline_stats["router_bytes"]
        .parse()
        .expect("router_bytes");
    let baseline_threads = thread_count();

    // The deadbeat subscriber: subscribes, then never reads again while
    // keeping the connection open.
    let deadbeat = TcpStream::connect(addr).expect("deadbeat connect");
    {
        let mut w = deadbeat.try_clone().expect("clone");
        let mut lines = BufReader::new(deadbeat.try_clone().expect("clone"));
        let reply = ask(&mut w, &mut lines, &format!("SUBSCRIBE {q}"));
        assert!(reply.starts_with("OK"), "subscribe reply: {reply:?}");
    }
    let wait = Instant::now() + Duration::from_secs(5);
    loop {
        if ingest.stats().expect("stats")["subscriptions"] == "1" {
            break;
        }
        assert!(Instant::now() < wait, "subscription never registered");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Flood pushes until the deadbeat's socket buffers fill and the
    // server writer trips the write deadline; teardown must drop the
    // subscription. Each tick replaces the whole count-64 window, so
    // every delta churns the full top-64 result.
    let mut state = 0x5eed_u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let mut batch = Vec::with_capacity(64 * 2);
        for _ in 0..64 * 2 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            batch.push(((state >> 11) % 4096) as f64 / 4095.0);
        }
        ingest.tick(&batch).expect("tick");
        let stats = ingest.stats().expect("stats");
        if stats["subscriptions"] == "0" && stats["sessions"] == "1" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "deadbeat session never torn down: {stats:?}"
        );
    }

    // Router memory accounting returns to baseline.
    let stats = ingest.stats().expect("stats");
    let router: u64 = stats["router_bytes"].parse().expect("router_bytes");
    assert!(
        router <= baseline_router,
        "router bytes leaked: {router} > {baseline_router}"
    );

    // Both session threads (reader + writer) exit. Thread counts are
    // process-global, so poll until we are back at (or below) the
    // baseline; skipped silently where /proc is unavailable.
    if let Some(base) = baseline_threads {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match thread_count() {
                None => break,
                Some(now) if now <= base => break,
                Some(now) => {
                    assert!(
                        Instant::now() < deadline,
                        "threads leaked: {now} > baseline {base}"
                    );
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }
    drop(deadbeat);
    ingest.quit().expect("quit");
    service.shutdown();
}

/// Overload shedding: when the engine inbox stays full past the busy
/// deadline, a session with nothing else in flight gets `ERR busy` from
/// its reader instead of blocking — and because the shed request never
/// reached the engine, the session stays correct and ordered afterwards.
#[test]
fn full_inbox_sheds_with_err_busy() {
    let cfg =
        ServiceConfig::new(ServerConfig::sma(2, 2000)).with_busy_timeout(Duration::from_millis(5));
    // Inbox of 1: one event queued behind whatever the engine is grinding.
    let cfg = ServiceConfig { inbox: 1, ..cfg };
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    // Queries make ticks expensive: every arrival is scored per query.
    let mut setup = ServiceClient::connect(addr).expect("setup");
    for i in 0..8 {
        let w = 1.0 + f64::from(i) / 8.0;
        setup.register_linear(32, &[w, 2.0 - w]).expect("register");
    }
    setup.quit().expect("quit");

    // ~5k-tuple ticks keep the engine busy while a probe's request
    // waits on the full inbox.
    let heavy = {
        let mut line = String::from("TICK");
        for i in 0..10_000 {
            line.push_str(if i % 2 == 0 { " 0.5" } else { " 0.25" });
        }
        line.push('\n');
        line
    };

    let mut observed_busy = false;
    for _ in 0..10 {
        let mut flooder = TcpStream::connect(addr).expect("flooder");
        let mut flooder_lines = BufReader::new(flooder.try_clone().expect("clone"));
        // Pipelined heavy ticks: one in the engine, one in the inbox, the
        // rest queued in the flooder's own reader thread (which never
        // sheds — it always has earlier requests in flight).
        const TICKS: usize = 4;
        for _ in 0..TICKS {
            flooder.write_all(heavy.as_bytes()).expect("write heavy");
        }
        std::thread::sleep(Duration::from_millis(20));
        let mut prober = TcpStream::connect(addr).expect("prober");
        let mut prober_lines = BufReader::new(prober.try_clone().expect("clone"));
        let reply = ask(&mut prober, &mut prober_lines, "STATS");
        let shed = reply.starts_with("ERR busy ");
        assert!(
            shed || reply.starts_with("OK STATS "),
            "unexpected STATS reply: {reply:?}"
        );
        // Drain the flooder's replies so the engine goes quiet again,
        // then the prober's session must still work in order.
        for _ in 0..TICKS {
            let mut line = String::new();
            flooder_lines.read_line(&mut line).expect("tick reply");
            assert!(line.starts_with("OK "), "tick reply: {line:?}");
        }
        assert_eq!(ask(&mut prober, &mut prober_lines, "PING"), "OK pong");
        assert_eq!(ask(&mut prober, &mut prober_lines, "QUIT"), "OK bye");
        assert_eq!(ask(&mut flooder, &mut flooder_lines, "QUIT"), "OK bye");
        if shed {
            observed_busy = true;
            break;
        }
    }
    assert!(
        observed_busy,
        "10 rounds of a saturated inbox never produced ERR busy"
    );

    // The shed is visible to operators — both the total and the per-verb
    // breakdown (the probe shed STATS requests, so that slot must be
    // populated and the slots must sum to the total).
    let mut client = ServiceClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let shed: u64 = stats["shed"].parse().expect("shed");
    assert!(shed >= 1, "shed counter: {stats:?}");
    let by_verb: u64 = stats
        .iter()
        .filter(|(k, _)| k.starts_with("shed_"))
        .map(|(_, v)| v.parse::<u64>().expect("shed_<verb>"))
        .sum();
    assert_eq!(by_verb, shed, "per-verb sheds must sum to shed=: {stats:?}");
    let shed_stats: u64 = stats
        .get("shed_STATS")
        .map_or(0, |v| v.parse().expect("shed_STATS"));
    assert!(shed_stats >= 1, "the probe shed STATS requests: {stats:?}");
    client.quit().expect("quit");
    service.shutdown();
}

/// Client-side self-healing: the connection dies mid-stream; the client
/// reconnects with backoff, re-`SUBSCRIBE`s, surfaces Degraded/Recovered,
/// and its `apply_push` mirror re-baselines through the synthetic
/// RESYNC/SNAPSHOT pushes to match the live result bit-exactly.
#[test]
fn client_reconnects_resubscribes_and_rebaselines() {
    let service =
        Service::bind("127.0.0.1:0", ServiceConfig::new(ServerConfig::sma(2, 100))).expect("bind");
    let addr = service.local_addr();

    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let q = ingest.register_linear(5, &[1.0, 2.0]).expect("register");

    let policy = ReconnectPolicy {
        base: Duration::from_millis(5),
        max: Duration::from_millis(50),
        retries: 10,
        ..ReconnectPolicy::default()
    };
    let mut sub = ServiceClient::connect(addr)
        .expect("subscriber")
        .with_reconnect(policy);
    let baseline = sub.subscribe(q).expect("subscribe");
    let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();

    ingest.tick(&[0.9, 0.9, 0.1, 0.2]).expect("tick 1");
    match sub.next_push().expect("delta 1") {
        p @ Push::Delta { .. } => {
            apply_push(&mut mirror, &p);
        }
        other => panic!("expected a delta, got {other:?}"),
    }

    // A tick the subscriber will never see: its connection is torn down
    // before reading, and the re-baseline must repair the loss.
    ingest.tick(&[0.8, 0.8, 0.2, 0.2]).expect("tick 2");
    sub.resume().expect("resume");
    assert!(sub.reconnects() >= 1, "resume recorded");
    let mut saw_degraded = false;
    let mut saw_recovered = false;
    while let Some(status) = sub.take_status() {
        match status {
            ClientStatus::Degraded { .. } => saw_degraded = true,
            ClientStatus::Recovered { resubscribed, .. } => {
                assert_eq!(resubscribed, 1);
                saw_recovered = true;
            }
        }
    }
    assert!(saw_degraded && saw_recovered, "status transitions surfaced");

    // The resumed stream re-baselines the mirror: RESYNC then SNAPSHOT.
    match sub.next_push().expect("resync marker") {
        Push::Resync { count } => assert_eq!(count, 1),
        other => panic!("expected RESYNC, got {other:?}"),
    }
    match sub.next_push().expect("baseline") {
        p @ Push::Snapshot { .. } => {
            apply_push(&mut mirror, &p);
        }
        other => panic!("expected SNAPSHOT, got {other:?}"),
    }
    let (_, truth) = sub.snapshot(q).expect("snapshot");
    assert_eq!(mirror[&q], truth, "re-baselined mirror matches the server");

    // Delta flow continues on the resumed session, still bit-exact.
    ingest.tick(&[0.95, 0.95]).expect("tick 3");
    let p = sub.next_push().expect("delta 3");
    apply_push(&mut mirror, &p);
    let (_, truth) = sub.snapshot(q).expect("snapshot");
    assert_eq!(mirror[&q], truth, "post-resume deltas stay exact");

    // Once the server is gone for good, reconnecting gives up cleanly.
    ingest.quit().expect("quit");
    service.shutdown();
    let err = loop {
        match sub.next_push() {
            Ok(_) => continue, // drain any straggler pushes
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, ClientError::Io(_)),
        "exhausted retries surface as Io, got {err:?}"
    );
}
