//! Facade features: one-shot snapshots and per-tick result deltas.

mod common;

use common::BatchGen;
use topk_monitor::engines::GridSpec;
use topk_monitor::{
    DataDist, EngineKind, MonitorServer, Query, ScoreFn, Scored, ServerConfig, WindowSpec,
};

fn server(kind: EngineKind) -> MonitorServer {
    MonitorServer::new(
        ServerConfig::sma(2, 80)
            .with_engine(kind)
            .with_grid(GridSpec::PerDim(6))
            .with_window(WindowSpec::Count(80)),
    )
    .expect("server builds")
}

/// Snapshots agree across engines (oracle included) and support ad-hoc
/// functions that were never registered.
#[test]
fn snapshots_agree_across_engines() {
    let kinds = [
        EngineKind::Tma,
        EngineKind::Sma,
        EngineKind::Tsl,
        EngineKind::Oracle,
    ];
    let mut servers: Vec<MonitorServer> = kinds.iter().map(|k| server(*k)).collect();
    let mut stream = BatchGen::new(2, DataDist::Ind, 3);
    for _ in 0..12 {
        let batch = stream.batch(10);
        for s in &mut servers {
            s.tick(&batch).expect("tick");
        }
    }
    for (w1, w2, k) in [(1.0, 2.0, 3), (0.5, -1.0, 7), (2.0, 0.0, 1)] {
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        let reference = servers[3].snapshot(&q).expect("oracle snapshot");
        for s in servers[..3].iter_mut() {
            // TSL cannot snapshot constrained queries but these are plain.
            assert_eq!(
                s.snapshot(&q).expect("snapshot"),
                reference,
                "{} snapshot diverged",
                s.engine_name()
            );
        }
    }
}

/// A snapshot must not disturb continuous monitoring state.
#[test]
fn snapshot_leaves_no_residue() {
    let mut s = server(EngineKind::Sma);
    let monitored = s
        .register(Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("d"), 4).expect("k"))
        .expect("register");
    let mut stream = BatchGen::new(2, DataDist::Ind, 9);
    for _ in 0..10 {
        s.tick(&stream.batch(8)).expect("tick");
    }
    let before = s.result(monitored).expect("result");
    // One warm-up snapshot: the first ad-hoc traversal may grow the
    // reusable compute scratch (heap/frontier capacity, reported by
    // `space_bytes`); what must not happen is *per-snapshot* accumulation.
    s.snapshot(&Query::top_k(ScoreFn::linear(vec![0.1, 1.9]).expect("d"), 6).expect("k"))
        .expect("snapshot");
    let space_before = s.space_bytes();
    // Fire many ad-hoc snapshots with unrelated functions.
    for w in 1..20 {
        let q = Query::top_k(
            ScoreFn::linear(vec![w as f64 / 10.0, 2.0 - w as f64 / 10.0]).expect("d"),
            6,
        )
        .expect("k");
        s.snapshot(&q).expect("snapshot");
    }
    assert_eq!(s.result(monitored).expect("result"), before);
    assert_eq!(s.space_bytes(), space_before, "snapshots left state behind");
    // The monitor still works afterwards.
    s.tick(&stream.batch(8)).expect("tick");
}

/// Deltas applied to the previous result reproduce the current result,
/// tick by tick.
#[test]
fn deltas_reconstruct_results() {
    for kind in [EngineKind::Tma, EngineKind::Sma, EngineKind::Tsl] {
        let mut s = server(kind);
        let q = s
            .register(Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).expect("d"), 5).expect("k"))
            .expect("register");
        s.enable_delta_tracking().expect("enable");
        let mut view: Vec<Scored> = Vec::new();
        let mut stream = BatchGen::new(2, DataDist::Ind, 21);
        let mut saw_nonempty = false;
        for _ in 0..40 {
            s.tick(&stream.batch(6)).expect("tick");
            for delta in s.take_deltas() {
                assert_eq!(delta.query, q);
                assert!(!delta.is_empty());
                saw_nonempty = true;
                view.retain(|e| !delta.removed.contains(e));
                view.extend_from_slice(&delta.added);
                view.sort_by(|a, b| b.cmp(a));
            }
            assert_eq!(view, s.result(q).expect("result"), "{kind:?}");
        }
        assert!(saw_nonempty, "{kind:?} never produced a delta");
    }
}

/// Deltas are not produced before tracking is enabled, and a freshly
/// registered query starts from its initial result (no spurious "added"
/// burst).
#[test]
fn delta_tracking_lifecycle() {
    let mut s = server(EngineKind::Tma);
    let mut stream = BatchGen::new(2, DataDist::Ind, 5);
    s.tick(&stream.batch(10)).expect("tick");
    assert!(s.take_deltas().is_empty(), "tracking off by default");

    let q1 = s
        .register(Query::top_k(ScoreFn::linear(vec![1.0, 0.0]).expect("d"), 3).expect("k"))
        .expect("register");
    s.enable_delta_tracking().expect("enable");
    assert!(s.take_deltas().is_empty(), "enabling emits nothing");

    // A hopeless arrival produces no delta.
    s.tick(&[0.0, 0.0]).expect("tick");
    assert!(s.take_deltas().is_empty());

    // A top arrival produces exactly one delta for q1.
    s.tick(&[0.99, 0.99]).expect("tick");
    let deltas = s.take_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].query, q1);
    assert_eq!(deltas[0].added.len(), 1);

    // Queries registered while tracking start silently from their initial
    // result.
    let q2 = s
        .register(Query::top_k(ScoreFn::linear(vec![0.0, 1.0]).expect("d"), 2).expect("k"))
        .expect("register");
    assert!(s.take_deltas().is_empty());
    s.tick(&[0.5, 0.999]).expect("tick");
    let deltas = s.take_deltas();
    assert!(deltas.iter().any(|d| d.query == q2));

    // Unregistered queries stop reporting.
    s.unregister(q1).expect("unregister");
    s.tick(&[0.98, 0.98]).expect("tick");
    assert!(s.take_deltas().iter().all(|d| d.query != q1));
}
