//! Smoke guarantees for target wiring: every benchmark binary, criterion
//! bench and example the ROADMAP's experiments rely on must exist on disk
//! exactly where the manifests expect them, so `cargo check --workspace
//! --all-targets` (run in CI) compiles them all and none can silently rot.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn stems(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("missing directory {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? == "rs" {
                Some(path.file_stem()?.to_str()?.to_string())
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn all_paper_figure_binaries_exist() {
    let expected: BTreeSet<String> = [
        "ext_variants",
        "fig13_datasets",
        "fig14_grid",
        "fig15_dimensionality",
        "fig16_cardinality",
        "fig17_arrival_rate",
        "fig18_query_count",
        "fig19_k",
        "fig20_space",
        "fig21_nonlinear",
        "model_vs_measured",
        "replay",
        "scaleout",
        "serve",
        "table2_view_size",
        "tune_kmax",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let found = stems(&repo_root().join("crates/bench/src/bin"));
    assert_eq!(
        found, expected,
        "bench binaries drifted; update this list *and* README.md"
    );
}

#[test]
fn all_criterion_benches_exist_and_are_registered() {
    let expected: BTreeSet<String> = [
        "cell_scan",
        "micro_compute",
        "micro_engines",
        "micro_structures",
        "replay",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let found = stems(&repo_root().join("crates/bench/benches"));
    assert_eq!(found, expected, "criterion benches drifted");

    // Each must be registered with `harness = false` (the criterion
    // stand-in provides `main` via `criterion_main!`).
    let manifest =
        std::fs::read_to_string(repo_root().join("crates/bench/Cargo.toml")).expect("manifest");
    for bench in &expected {
        assert!(
            manifest.contains(&format!("name = \"{bench}\"")),
            "bench {bench} is not declared in crates/bench/Cargo.toml"
        );
    }
    assert_eq!(
        manifest.matches("harness = false").count(),
        expected.len(),
        "every [[bench]] must set harness = false"
    );
}

#[test]
fn all_examples_exist() {
    let expected: BTreeSet<String> = [
        "constrained_dashboard",
        "csv_monitor",
        "network_flows",
        "quickstart",
        "stock_ticker",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    let found = stems(&repo_root().join("examples"));
    assert_eq!(found, expected, "examples drifted; update README.md too");
}

#[test]
fn workspace_members_match_directories() {
    let manifest = std::fs::read_to_string(repo_root().join("Cargo.toml")).expect("root manifest");
    for dir in [
        "analysis", "bench", "common", "core", "datagen", "grid", "ostree", "service", "skyband",
        "tsl", "window",
    ] {
        assert!(
            manifest.contains(&format!("\"crates/{dir}\"")),
            "crates/{dir} missing from [workspace] members"
        );
        assert!(
            repo_root()
                .join("crates")
                .join(dir)
                .join("Cargo.toml")
                .is_file(),
            "crates/{dir}/Cargo.toml missing"
        );
    }
    for dir in ["rand", "proptest", "criterion"] {
        assert!(
            manifest.contains(&format!("\"vendor/{dir}\"")),
            "vendor/{dir} missing from [workspace] members"
        );
    }
}

#[test]
fn committed_proptest_regressions_parse() {
    let path = repo_root().join("proptest-regressions/proptest_engines.txt");
    let text = std::fs::read_to_string(&path).expect("committed regression file");
    let seeds: Vec<u64> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("cc "))
        .map(|h| u64::from_str_radix(h.trim(), 16).expect("valid hex seed"))
        .collect();
    assert!(
        !seeds.is_empty(),
        "regression file must pin at least one seed"
    );
}
