//! The central integration property: TMA, SMA, TSL and the brute-force
//! oracle report **identical** top-k results on every processing cycle of
//! every stream. (The paper's algorithms are exact; any divergence is a
//! bug.)

mod common;

use common::{build_all, register_all, tick_and_compare, BatchGen};
use topk_monitor::engines::GridSpec;
use topk_monitor::{DataDist, Query, QueryId, ScoreFn, Timestamp, WindowSpec};

fn linear_queries(dims: usize, seed: u64, n: usize, k: usize) -> Vec<Query> {
    let mut gen = topk_monitor::QueryGen::new(dims, topk_monitor::FnFamily::Linear, seed)
        .expect("valid dims");
    gen.workload(n)
        .into_iter()
        .map(|f| Query::top_k(f, k).expect("k > 0"))
        .collect()
}

/// Count-based window, uniform data, several linear queries.
#[test]
fn count_window_ind_linear() {
    let dims = 3;
    let mut engines = build_all(dims, WindowSpec::Count(300), GridSpec::PerDim(6));
    let mut queries = Vec::new();
    for (i, q) in linear_queries(dims, 11, 4, 5).into_iter().enumerate() {
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, 42);
    for tick in 0..60u64 {
        let batch = stream.batch(25);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Anti-correlated data stresses the traversal (deep influence regions).
#[test]
fn count_window_ant_linear() {
    let dims = 4;
    let mut engines = build_all(dims, WindowSpec::Count(400), GridSpec::CellBudget(1296));
    let mut queries = Vec::new();
    for (i, q) in linear_queries(dims, 5, 3, 10).into_iter().enumerate() {
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ant, 7);
    for tick in 0..50u64 {
        let batch = stream.batch(30);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Time-based window with a variable arrival rate.
#[test]
fn time_window_variable_rate() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Time(7), GridSpec::PerDim(8));
    let q = Query::top_k(ScoreFn::linear(vec![0.9, 1.3]).expect("dims"), 4).expect("k");
    let held = register_all(&mut engines, QueryId(0), &q);
    let queries = vec![(QueryId(0), held)];
    let mut stream = BatchGen::new(dims, DataDist::Ind, 3);
    for tick in 0..80u64 {
        let n = match tick % 5 {
            0 => 40,
            1 => 3,
            _ => 12,
        };
        let batch = stream.batch(n);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Mixed per-dimension monotonicity: f = 2·x1 − x2 (Figure 7a style).
#[test]
fn mixed_monotonicity_functions() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Count(200), GridSpec::PerDim(7));
    let fns = [
        ScoreFn::linear(vec![2.0, -1.0]).expect("dims"),
        ScoreFn::linear(vec![-0.5, -1.5]).expect("dims"),
        ScoreFn::linear(vec![-1.0, 2.0]).expect("dims"),
    ];
    let mut queries = Vec::new();
    for (i, f) in fns.into_iter().enumerate() {
        let q = Query::top_k(f, 3).expect("k");
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, 23);
    for tick in 0..50u64 {
        let batch = stream.batch(15);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Non-linear families (product and quadratic, Figure 21).
#[test]
fn nonlinear_functions() {
    let dims = 3;
    let mut engines = build_all(dims, WindowSpec::Count(250), GridSpec::PerDim(5));
    let fns = [
        ScoreFn::product(vec![0.1, 0.5, 0.9]).expect("dims"),
        ScoreFn::quadratic(vec![1.0, 0.2, 0.7]).expect("dims"),
        ScoreFn::quadratic(vec![0.5, -0.8, 0.3]).expect("dims"),
    ];
    let mut queries = Vec::new();
    for (i, f) in fns.into_iter().enumerate() {
        let q = Query::top_k(f, 6).expect("k");
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ant, 77);
    for tick in 0..40u64 {
        let batch = stream.batch(20);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Coarse-lattice coordinates force massive score ties; the comparator
/// (score desc, older first) must keep all engines in lockstep.
#[test]
fn tie_heavy_streams() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Count(120), GridSpec::PerDim(4));
    let fns = [
        ScoreFn::linear(vec![1.0, 1.0]).expect("dims"),
        ScoreFn::linear(vec![1.0, 0.0]).expect("dims"),
    ];
    let mut queries = Vec::new();
    for (i, f) in fns.into_iter().enumerate() {
        let q = Query::top_k(f, 5).expect("k");
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, 13);
    for tick in 0..70u64 {
        let batch = stream.coarse_batch(12, 4); // coordinates ∈ {0, ¼, ½, ¾, 1}
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Extreme ks: k = 1 and k larger than the window.
#[test]
fn extreme_k_values() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Count(50), GridSpec::PerDim(5));
    let q1 = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).expect("dims"), 1).expect("k");
    let q2 = Query::top_k(ScoreFn::linear(vec![2.0, 1.0]).expect("dims"), 80).expect("k");
    let mut queries = Vec::new();
    for (i, q) in [q1, q2].into_iter().enumerate() {
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, 31);
    for tick in 0..40u64 {
        let batch = stream.batch(10);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Queries registered mid-stream (over a warm window) and removed later.
#[test]
fn query_churn_mid_stream() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Count(150), GridSpec::PerDim(6));
    let mut stream = BatchGen::new(dims, DataDist::Ind, 17);

    // Warm everything with no queries registered.
    for tick in 0..10u64 {
        let batch = stream.batch(20);
        for e in engines.iter_mut() {
            e.tick(Timestamp(tick), &batch).expect("tick");
        }
    }

    let q = Query::top_k(ScoreFn::linear(vec![0.4, 1.6]).expect("dims"), 7).expect("k");
    let held = register_all(&mut engines, QueryId(9), &q);
    let queries = vec![(QueryId(9), held)];
    for tick in 10..30u64 {
        let batch = stream.batch(20);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }

    // Remove everywhere; further ticks must not fail.
    for e in engines.iter_mut() {
        e.remove_query(QueryId(9)).expect("remove");
        assert!(e.result(QueryId(9)).is_err());
    }
    for tick in 30..35u64 {
        let batch = stream.batch(20);
        for e in engines.iter_mut() {
            e.tick(Timestamp(tick), &batch).expect("tick");
        }
    }

    // Re-registering the same id must work (fresh book-keeping).
    let held = register_all(&mut engines, QueryId(9), &q);
    let queries = vec![(QueryId(9), held)];
    for tick in 35..45u64 {
        let batch = stream.batch(20);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// An empty tick (no arrivals) still expires tuples in time windows and
/// keeps all engines aligned.
#[test]
fn empty_ticks() {
    let dims = 2;
    let mut engines = build_all(dims, WindowSpec::Time(3), GridSpec::PerDim(4));
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("dims"), 3).expect("k");
    let held = register_all(&mut engines, QueryId(0), &q);
    let queries = vec![(QueryId(0), held)];
    let mut stream = BatchGen::new(dims, DataDist::Ind, 1);
    for tick in 0..20u64 {
        let batch = if tick % 3 == 0 {
            stream.batch(8)
        } else {
            Vec::new() // silence: only expirations happen
        };
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// The paper's largest dimensionality (d = 6) with the 12⁴-cell budget
/// rule (5 cells per axis): exercises the deep per-cell neighbour fan-out
/// and the budgeted grid sizing.
#[test]
fn six_dimensional_agreement() {
    let dims = 6;
    let mut engines = build_all(dims, WindowSpec::Count(300), GridSpec::CellBudget(20_736));
    let mut queries = Vec::new();
    for (i, q) in linear_queries(dims, 2, 2, 10).into_iter().enumerate() {
        let id = QueryId(i as u64);
        let held = register_all(&mut engines, id, &q);
        queries.push((id, held));
    }
    let mut stream = BatchGen::new(dims, DataDist::Ant, 66);
    for tick in 0..25u64 {
        let batch = stream.batch(30);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}

/// Correlated data (the easy case): skybands stay minimal and all engines
/// agree.
#[test]
fn correlated_data_agreement() {
    let dims = 3;
    let mut engines = build_all(dims, WindowSpec::Count(200), GridSpec::PerDim(6));
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 0.7, 1.3]).expect("dims"), 8).expect("k");
    let held = register_all(&mut engines, QueryId(0), &q);
    let queries = vec![(QueryId(0), held)];
    let mut stream = BatchGen::new(dims, DataDist::Cor, 44);
    for tick in 0..40u64 {
        let batch = stream.batch(15);
        tick_and_compare(&mut engines, Timestamp(tick), &batch, &queries);
    }
}
