//! Protocol fuzz hardening (no new deps: proptest is already vendored).
//!
//! Three layers: pure parser fuzz — [`parse_request`] / [`parse_server_line`]
//! must never panic on arbitrary byte soup, semi-structured near-miss
//! lines, or truncations of valid lines, and everything they do accept
//! must reparse to the same value from its own encoding — reactor framing
//! fuzz (PR 10): `LineFramer` reassembly is chunking-invariant (one-byte
//! reads, cuts inside multi-byte UTF-8 sequences, lines split across
//! wakeups) and `SessionOut` partial-write resumption reproduces the
//! queued byte stream exactly at arbitrary write granularities — and a
//! live session fuzz: a raw socket feeding junk (including split
//! multi-byte UTF-8 and an absurd `k=`) gets a clean `ERR` per line and
//! the session keeps serving.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use topk_monitor::service::{
    apply_push, parse_request, parse_server_line, FramedLine, LineFramer, Push, Service,
    ServiceConfig, SessionOut, MAX_REQUEST_LINE,
};
use topk_monitor::{Scored, ServerConfig};

/// If a line parses, its canonical encoding must parse back to the same
/// value — the fixed point every fuzz case below is checked against.
fn assert_request_fixed_point(line: &str) {
    if let Ok(req) = parse_request(line) {
        let encoded = req.to_string();
        match parse_request(&encoded) {
            Ok(again) => assert_eq!(req, again, "request round-trip via {encoded:?}"),
            Err(e) => panic!("canonical encoding {encoded:?} rejected: {e}"),
        }
    }
}

fn assert_server_line_fixed_point(line: &str) {
    if let Ok(parsed) = parse_server_line(line) {
        let encoded = match &parsed {
            topk_monitor::service::ServerLine::Reply(r) => r.to_string(),
            topk_monitor::service::ServerLine::Push(p) => p.to_string(),
        };
        match parse_server_line(&encoded) {
            Ok(again) => assert_eq!(parsed, again, "server-line round-trip via {encoded:?}"),
            Err(e) => panic!("canonical encoding {encoded:?} rejected: {e}"),
        }
    }
}

/// Builds a token that looks almost like a protocol argument — near-misses
/// exercise far more parser branches than uniform noise does.
fn near_token(kind: u8, a: u32, b: u32) -> String {
    match kind % 18 {
        0 => format!("q{a}"),
        1 => format!("t{a}:{}", b as f64 / 8.0),
        2 => format!(
            "{}t{a}:{}",
            if b.is_multiple_of(2) { '+' } else { '-' },
            a as f64 / 4.0
        ),
        3 => format!("@{}", a as i64 - 500),
        4 => format!("k={}", (a as u64) * (b as u64)),
        5 => format!("weights={},{}e{}", a as f64 / 7.0, b, a % 400),
        6 => ["fn=linear", "fn=product", "fn=quadratic", "fn=lin", "fn="][a as usize % 5].into(),
        7 => format!(
            "range={}:{},{}",
            a as f64 / 3.0,
            b,
            if b.is_multiple_of(2) { ":" } else { "" }
        ),
        8 => format!(
            "window={}:{a}",
            ["count", "time", "tick", ""][b as usize % 4]
        ),
        9 => [
            "nan", "inf", "NaN", "-inf", "1e308", "-1e-308", "0x10", "--1",
        ][a as usize % 8]
            .into(),
        10 => format!("queued={a}"),
        11 => [
            "pong", "bye", "STATS", "t:", "q", "@", "+t1:", "=", ",,", ":",
        ][a as usize % 10]
            .into(),
        12 => format!("{a}.{b}.{a}"),
        13 => format!("{}", f64::from_bits((a as u64) << 32 | b as u64)),
        // Site-tier argument shapes (SITE / SITEDELTA / SITETICK / ADOPT).
        14 => format!("s{a}"),
        15 => format!(
            "base={}",
            if b.is_multiple_of(3) {
                "x".into()
            } else {
                a.to_string()
            }
        ),
        16 => format!("dims={}", (a as u64) * (b as u64)),
        _ => ["retire", "retire extra", "s", "s-1", "base=", "dims="][a as usize % 6].into(),
    }
}

const VERBS: [&str; 21] = [
    "REGISTER",
    "UNREGISTER",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "SNAPSHOT",
    "TICK",
    "TICKAT",
    "STATS",
    "PING",
    "QUIT",
    "SITE",
    "SITEDELTA",
    "SITETICK",
    "OK",
    "ERR",
    "DELTA",
    "RESYNC",
    "ADOPT",
    "DEGRADED",
    "tick",
    "",
];

fn near_line(verb: usize, toks: &[(u8, u32, u32)]) -> String {
    let mut line = VERBS[verb % VERBS.len()].to_string();
    for (kind, a, b) in toks {
        line.push(' ');
        line.push_str(&near_token(*kind, *a, *b));
    }
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (decoded lossily, as the session reader does)
    /// never panics either parser, and anything accepted is a fixed point
    /// of its own encoding.
    #[test]
    fn parsers_survive_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        assert_request_fixed_point(&line);
        assert_server_line_fixed_point(&line);
    }

    /// Near-miss protocol lines — right verbs, plausible-but-mangled
    /// arguments — never panic and round-trip when accepted.
    #[test]
    fn parsers_survive_near_miss_lines(
        verb in 0usize..21,
        toks in prop::collection::vec((any::<u8>(), 0u32..2000, 0u32..2000), 0..7),
    ) {
        let line = near_line(verb, &toks);
        assert_request_fixed_point(&line);
        assert_server_line_fixed_point(&line);
    }

    /// Every byte-truncation of a valid request line (re-decoded lossily,
    /// so cuts can land inside a UTF-8 sequence) parses without panicking;
    /// the untruncated line must parse.
    #[test]
    fn truncated_valid_requests_never_panic(
        k in 1usize..16,
        weights in prop::collection::vec(-4i16..4, 1..5),
        arrivals in prop::collection::vec(0u16..1000, 0..6),
        cut in any::<u16>(),
    ) {
        let ws: Vec<String> = weights.iter().map(|w| (*w as f64 / 4.0).to_string()).collect();
        let vs: Vec<String> = arrivals.iter().map(|v| (*v as f64 / 1000.0).to_string()).collect();
        for line in [
            format!("REGISTER k={k} weights={} window=count:32", ws.join(",")),
            format!("TICK {}", vs.join(" ")),
            format!("TICKAT @{k} {}", vs.join(" ")),
            format!("SITE {k} dims={}", weights.len()),
            format!("SITEDELTA q{k} @{k} +t{k}:0.5 -t1:0.25"),
            format!("SITETICK @{k} base={k} {}", vs.join(" ")),
            format!("SITETICK @{k}"),
        ] {
            prop_assert!(parse_request(&line).is_ok(), "seed line rejected: {line}");
            let cut = cut as usize % (line.len() + 1);
            let truncated = String::from_utf8_lossy(&line.as_bytes()[..cut]);
            assert_request_fixed_point(&truncated);
        }
    }

    /// Byte-truncations of valid server lines (replies and pushes) never
    /// panic the client-side parser.
    #[test]
    fn truncated_valid_server_lines_never_panic(
        ids in prop::collection::vec(0u32..100, 1..5),
        cut in any::<u16>(),
    ) {
        let entries: Vec<String> =
            ids.iter().map(|i| format!("+t{i}:{}", *i as f64 / 8.0)).collect();
        for line in [
            format!("DELTA q1 @7{}", entries.iter().map(|e| format!(" {e}")).collect::<String>()),
            format!("OK SNAPSHOT q2 @9 t{}:0.5", ids[0]),
            "OK STATS sessions=3 faults=0".to_string(),
            "ERR busy server inbox full; request dropped, retry later".to_string(),
            "RESYNC 2".to_string(),
            format!("OK s{}", ids[0]),
            format!("ADOPT q{} k=2 weights=1,0.5 fn=product", ids[0]),
            format!("ADOPT q{} retire", ids[0]),
            format!("DEGRADED q{} s0 s{}", ids[0], ids[0] + 1),
            "DEGRADED q0".to_string(),
        ] {
            prop_assert!(parse_server_line(&line).is_ok(), "seed line rejected: {line}");
            let cut = cut as usize % (line.len() + 1);
            let truncated = String::from_utf8_lossy(&line.as_bytes()[..cut]);
            assert_server_line_fixed_point(&truncated);
        }
    }
}

/// Builds one framer-test line from fuzz integers: protocol-ish content
/// via [`near_token`], sometimes empty, sometimes with a multi-byte UTF-8
/// tail so chunk cuts can land mid-sequence.
fn framer_line(kind: u8, a: u32, b: u32) -> String {
    let mut line = if a.is_multiple_of(11) {
        String::new()
    } else {
        near_token(kind, a, b)
    };
    line.push_str(["", "é", "λ🦀", "→"][b as usize % 4]);
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reactor framing (PR 10): a line stream cut at arbitrary byte
    /// positions — including mid-UTF-8-sequence — reassembles to exactly
    /// the original lines, in order, with nothing left buffered; and any
    /// reassembled line the parser accepts is a fixed point of its own
    /// encoding.
    #[test]
    fn framer_reassembles_lines_under_arbitrary_chunking(
        specs in prop::collection::vec((any::<u8>(), 0u32..2000, 0u32..2000), 1..10),
        cuts in prop::collection::vec(any::<u16>(), 0..24),
    ) {
        let lines: Vec<String> =
            specs.iter().map(|(k, a, b)| framer_line(*k, *a, *b)).collect();
        let mut stream = Vec::new();
        for l in &lines {
            stream.extend_from_slice(l.as_bytes());
            stream.push(b'\n');
        }
        let mut splits: Vec<usize> =
            cuts.iter().map(|c| *c as usize % (stream.len() + 1)).collect();
        splits.sort_unstable();
        splits.push(stream.len());

        let mut framer = LineFramer::new(MAX_REQUEST_LINE);
        let mut got = Vec::new();
        let mut prev = 0;
        for cut in splits {
            framer.feed(&stream[prev..cut]);
            prev = cut;
            while let Some(framed) = framer.next_line() {
                match framed {
                    FramedLine::Line(l) => got.push(l),
                    other => prop_assert!(false, "unexpected {other:?}"),
                }
            }
        }
        prop_assert_eq!(framer.pending_len(), 0, "bytes left buffered");
        prop_assert_eq!(&got, &lines);
        for l in &got {
            assert_request_fixed_point(l);
            assert_server_line_fixed_point(l);
        }
    }

    /// Arbitrary byte chunks — invalid UTF-8, no terminators, whatever —
    /// never panic the framer, and a small cap is honoured: no yielded
    /// line exceeds it.
    #[test]
    fn framer_survives_arbitrary_byte_chunks(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12),
    ) {
        let cap = 32;
        let mut framer = LineFramer::new(cap);
        for chunk in &chunks {
            framer.feed(chunk);
            while let Some(framed) = framer.next_line() {
                if let FramedLine::Line(l) = framed {
                    prop_assert!(l.len() <= cap, "line over cap: {l:?}");
                }
            }
        }
    }

    /// A writer that resumes partial writes at arbitrary step sizes —
    /// alternating between the single-entry (`next_chunk`) and coalesced
    /// (`peek_coalesced`) paths — reproduces the queued byte stream
    /// exactly, regardless of how lines were enqueued.
    #[test]
    fn session_out_partial_writes_reproduce_the_exact_stream(
        specs in prop::collection::vec(
            (any::<u8>(), 0u32..2000, 0u32..2000, any::<u8>()), 1..10),
        steps in prop::collection::vec((any::<u8>(), 1u16..96), 1..32),
    ) {
        let out = SessionOut::new();
        let mut expected = Vec::new();
        for (kind, a, b, mode) in &specs {
            let line = near_token(*kind, *a, *b);
            expected.extend_from_slice(line.as_bytes());
            expected.push(b'\n');
            match mode % 3 {
                0 => out.send_reply(line),
                1 => prop_assert!(out.try_push(line, 1 << 20), "uncapped push dropped"),
                _ => out.force_push(line),
            }
        }
        let mut collected = Vec::new();
        let mut scratch = Vec::new();
        let mut i = 0usize;
        while !out.is_drained() {
            let (path, step) = steps[i % steps.len()];
            i += 1;
            let step = step as usize;
            if path % 2 == 0 {
                // The per-entry path a blocked socket resumes on.
                let (bytes, cursor) = out.next_chunk().expect("non-drained queue");
                let n = step.min(bytes.len() - cursor);
                collected.extend_from_slice(&bytes[cursor..cursor + n]);
                out.advance(n);
            } else {
                // The burst-coalescing path, spanning entries.
                let n = out.peek_coalesced(&mut scratch, step);
                prop_assert!(n >= 1, "coalesced peek of a non-drained queue");
                collected.extend_from_slice(&scratch[..n]);
                out.advance(n);
            }
        }
        prop_assert_eq!(&collected, &expected);
        prop_assert_eq!(out.queued_pushes(), 0);
    }
}

/// Byte-at-a-time reads (the worst wakeup pattern the reactor can see)
/// reassemble real protocol lines exactly, and each reassembled line is a
/// fixed point of its own encoding.
#[test]
fn framer_handles_one_byte_reads() {
    let lines = [
        "REGISTER k=4 weights=1,0.5 window=count:32",
        "SUBSCRIBE q0",
        "TICKAT @7 0.25 0.75",
        "",
        "DELTA q0 @7 +t1:0.75 -t0:0.25",
        "PING",
    ];
    let mut framer = LineFramer::new(MAX_REQUEST_LINE);
    let mut got = Vec::new();
    for line in &lines {
        for b in line.as_bytes() {
            framer.feed(std::slice::from_ref(b));
            assert_eq!(framer.next_line(), None, "yielded before the terminator");
        }
        framer.feed(b"\n");
        match framer.next_line() {
            Some(FramedLine::Line(l)) => got.push(l),
            other => panic!("expected a line, got {other:?}"),
        }
    }
    assert_eq!(got, lines);
    for l in &got {
        assert_request_fixed_point(l);
        assert_server_line_fixed_point(l);
    }
}

/// The documented overflow contract: when the push cap trips, the queued
/// backlog is dropped but a partially-written front line is finished (the
/// stream stays line-aligned), and the forced `RESYNC` still goes out.
#[test]
fn session_out_overflow_keeps_the_stream_line_aligned() {
    let out = SessionOut::new();
    assert!(out.try_push("DELTA q0 @1 +t1:0.5".into(), 2));
    assert!(out.try_push("DELTA q0 @2 +t2:0.5".into(), 2));
    // Four bytes of the front line are already on the wire.
    let mut scratch = Vec::new();
    let n = out.peek_coalesced(&mut scratch, 4);
    assert_eq!(n, 4);
    let mut collected = scratch[..n].to_vec();
    out.advance(n);
    // The cap trips: the backlog is dropped, the in-flight front stays.
    assert!(!out.try_push("DELTA q0 @3 +t3:0.5".into(), 2));
    assert_eq!(out.queued_pushes(), 1, "only the in-flight front survives");
    out.force_push("RESYNC 1".into());
    while let Some((bytes, cursor)) = out.next_chunk() {
        collected.extend_from_slice(&bytes[cursor..]);
        out.advance(bytes.len() - cursor);
    }
    assert_eq!(collected, b"DELTA q0 @1 +t1:0.5\nRESYNC 1\n");
    // A closed queue swallows pushes without demanding a resync.
    out.close();
    assert!(out.is_closed());
    assert!(out.try_push("DELTA q0 @4 +t4:0.5".into(), 2));
    assert!(out.is_drained());
}

/// Live-session fuzz: seeded junk lines over a raw socket each earn a
/// reply (never a hang, never a dropped session), split-across-write
/// UTF-8 reassembles, an absurd `k=` draws `ERR bad-arg`, and after all
/// of it the session still answers `PING` and serves a real register.
#[test]
fn junk_over_a_raw_socket_gets_errs_and_the_session_survives() {
    let cfg = ServiceConfig::new(ServerConfig::sma(2, 16));
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let sock = TcpStream::connect(service.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut sock = sock;

    let reply = |reader: &mut BufReader<TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        assert!(
            line.starts_with("OK") || line.starts_with("ERR"),
            "not a reply: {line:?}"
        );
        line
    };

    // 64 deterministic junk lines of non-whitespace byte soup (whitespace-
    // only lines are silently skipped by the reader, so every line here is
    // guaranteed a reply), pipelined, then drained.
    let mut state = 0xF00DF00Du64;
    let mut junk = Vec::new();
    let mut sent = 0usize;
    for _ in 0..64 {
        junk.clear();
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let len = 1 + (state >> 40) as usize % 48;
        for i in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mostly printable-and-beyond, occasional interior space —
            // never b'\n', and byte 0 is never whitespace.
            let b = 0x21 + ((state >> 33) % 0xDE) as u8;
            junk.push(if i > 0 && b.is_multiple_of(13) {
                b' '
            } else {
                b
            });
        }
        junk.push(b'\n');
        sock.write_all(&junk).expect("write junk");
        sent += 1;
    }
    sock.flush().expect("flush");
    for _ in 0..sent {
        reply(&mut reader);
    }

    // A multi-byte UTF-8 character split across two writes reassembles
    // into one (invalid) request — one clean parse error, no hang.
    sock.write_all("caf".as_bytes()).expect("split 1");
    sock.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    let e_acute = "é".as_bytes();
    sock.write_all(&e_acute[..1]).expect("split 2");
    sock.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    sock.write_all(&e_acute[1..]).expect("split 3");
    sock.write_all(b"\n").expect("split end");
    sock.flush().expect("flush");
    assert!(reply(&mut reader).starts_with("ERR parse "));

    // Same split trick on a *valid* verb must still succeed.
    sock.write_all(b"PI").expect("half verb");
    sock.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    sock.write_all(b"NG\n").expect("other half");
    sock.flush().expect("flush");
    assert_eq!(reply(&mut reader), "OK pong\n");

    // Oversized-but-parseable arguments are rejected cleanly, not obeyed.
    sock.write_all(b"REGISTER k=999999999999 weights=1,1\n")
        .expect("huge k");
    assert!(reply(&mut reader).starts_with("ERR bad-arg "));

    // The session is still fully functional: register, subscribe, tick,
    // and mirror the pushed delta.
    sock.write_all(b"REGISTER k=2 weights=1,1\nSUBSCRIBE q0\nTICK 0.5 0.5\n")
        .expect("real work");
    assert_eq!(reply(&mut reader), "OK q0\n");
    let mut mirror: BTreeMap<_, Vec<Scored>> = BTreeMap::new();
    let mut pushed = 0;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("line");
        match parse_server_line(line.trim_end()).expect("classify") {
            topk_monitor::service::ServerLine::Push(p) => {
                pushed += 1;
                apply_push(&mut mirror, &p);
                if pushed == 2 {
                    break; // baseline snapshot + the tick's delta
                }
            }
            topk_monitor::service::ServerLine::Reply(_) => {
                assert!(line.starts_with("OK"), "mid-stream failure: {line:?}")
            }
        }
    }
    let entries = &mirror[&mirror.keys().next().copied().expect("q")];
    assert_eq!(entries.len(), 1, "one tuple in the window: {entries:?}");
    assert_eq!(entries[0].score.get(), 1.0);

    sock.write_all(b"QUIT\n").expect("quit");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain");
    assert!(rest.contains("OK bye"), "no farewell in {rest:?}");
    service.shutdown();
}

/// A push stream interleaved with junk on the same socket: garbage lines
/// earn `ERR parse` replies while subscriptions keep flowing undisturbed.
#[test]
fn junk_between_requests_does_not_disturb_the_push_stream() {
    let cfg = ServiceConfig::new(ServerConfig::sma(1, 8));
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let sock = TcpStream::connect(service.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut sock = sock;

    sock.write_all(b"REGISTER k=1 weights=1\nSUBSCRIBE q0\n")
        .expect("setup");
    let mut mirror: BTreeMap<_, Vec<Scored>> = BTreeMap::new();
    let mut errs = 0;
    let mut deltas = 0;
    for round in 0..8u32 {
        // Strictly increasing, so every tick dethrones the top-1 and is
        // guaranteed to push a delta.
        let v = f64::from(round + 1) / 10.0;
        sock.write_all(format!("\x01garbage {round}\x02\nTICK {v}\n").as_bytes())
            .expect("round");
        sock.flush().expect("flush");
        while deltas <= round {
            let mut line = String::new();
            reader.read_line(&mut line).expect("line");
            if line.starts_with("ERR parse ") {
                errs += 1;
            } else if let Ok(topk_monitor::service::ServerLine::Push(p)) =
                parse_server_line(line.trim_end())
            {
                if matches!(p, Push::Delta { .. }) {
                    deltas += 1;
                }
                apply_push(&mut mirror, &p);
            }
        }
    }
    assert_eq!(errs, 8, "every junk line draws exactly one ERR parse");
    let q = mirror.keys().next().copied().expect("q");
    assert_eq!(mirror[&q].len(), 1, "top-1 mirror: {:?}", mirror[&q]);
    sock.write_all(b"QUIT\n").expect("quit");
    service.shutdown();
}
