//! Direct property tests of the top-k computation module: exactness,
//! minimal-cell processing and frontier structure on arbitrary inputs.

use proptest::prelude::*;
use topk_monitor::engines::compute::{compute_topk, InfluenceUpdate};
use topk_monitor::grid::{CellMode, Grid, InfluenceTable};
use topk_monitor::{ComputeScratch, QuerySlot, Rect, ScoreFn, Scored, TupleId};

struct Fixture {
    grid: Grid,
    scratch: ComputeScratch,
    influence: InfluenceTable,
}

/// No window backs this harness: the computation module reads every
/// coordinate from the grid's cell blocks (ids are assigned directly,
/// matching the dense arrival numbering a window would produce).
fn fixture(points: &[(f64, f64)], per_dim: usize) -> Fixture {
    let mut grid = Grid::new(2, per_dim, CellMode::Fifo).expect("grid");
    for (i, (x, y)) in points.iter().enumerate() {
        grid.insert_point(&[*x, *y], TupleId(i as u64));
    }
    let scratch = ComputeScratch::new(grid.num_cells());
    let influence = InfluenceTable::new(grid.num_cells());
    Fixture {
        grid,
        scratch,
        influence,
    }
}

fn naive(points: &[(f64, f64)], f: &ScoreFn, k: usize, r: Option<&Rect>) -> Vec<Scored> {
    let mut all: Vec<Scored> = points
        .iter()
        .enumerate()
        .filter(|(_, (x, y))| r.is_none_or(|r| r.contains(&[*x, *y])))
        .map(|(i, (x, y))| Scored::new(f.score(&[*x, *y]), TupleId(i as u64)))
        .collect();
    all.sort_by(|a, b| b.cmp(a));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exactness + structural guarantees on random lattice points (ties
    /// abound), random grid resolution and random monotone direction.
    #[test]
    fn compute_is_exact_and_minimal(
        raw in prop::collection::vec((0u32..24, 0u32..24), 1..80),
        per_dim in 1usize..12,
        k in 1usize..10,
        w1 in -2.0f64..2.0,
        w2 in -2.0f64..2.0,
    ) {
        let points: Vec<(f64, f64)> =
            raw.iter().map(|(a, b)| (*a as f64 / 23.0, *b as f64 / 23.0)).collect();
        let f = ScoreFn::linear(vec![w1, w2]).expect("dims");
        let mut fx = fixture(&points, per_dim);
        let out = compute_topk(
            &fx.grid,
            &mut fx.scratch,
            Some(InfluenceUpdate::fresh(&mut fx.influence, QuerySlot(0))),
            &f,
            k,
            None,
            true,
            None,
        );
        // 1. Exact result.
        prop_assert_eq!(out.top.as_slice(), &naive(&points, &f, k, None)[..]);

        if let Some(kth) = out.top.kth() {
            let threshold = kth.score.get();
            // 2. Coverage: every cell that could hold a qualifying tuple is
            //    registered in the influence list.
            for (cid, _) in fx.grid.cells() {
                if fx.grid.maxscore(cid, &f) >= threshold {
                    prop_assert!(
                        fx.influence.contains(cid, QuerySlot(0)),
                        "uncovered influential cell {cid:?}"
                    );
                }
            }
            // 3. Frontier cells are strictly below the threshold.
            for cell in &fx.scratch.frontier {
                prop_assert!(fx.grid.maxscore(*cell, &f) < threshold);
            }
            // 4. Boundary ties all tie the k-th score exactly and are not in
            //    the result.
            for tie in &out.boundary_ties {
                prop_assert_eq!(tie.score, kth.score);
                prop_assert!(!out.top.contains(tie.id));
            }
            // 5. Together, top + ties are exactly the tuples scoring ≥ kth.
            let mut got: Vec<TupleId> = out
                .top
                .as_slice()
                .iter()
                .chain(&out.boundary_ties)
                .map(|s| s.id)
                .collect();
            got.sort_unstable();
            let mut want: Vec<TupleId> = points
                .iter()
                .enumerate()
                .filter(|(_, (x, y))| f.score(&[*x, *y]) >= threshold)
                .map(|(i, _)| TupleId(i as u64))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        } else {
            // Deficient search floods everything and leaves no frontier.
            prop_assert!(fx.scratch.frontier.is_empty());
        }
    }

    /// Constrained searches with clipped bounds remain exact.
    #[test]
    fn constrained_compute_is_exact(
        raw in prop::collection::vec((0u32..20, 0u32..20), 1..60),
        per_dim in 1usize..10,
        k in 1usize..6,
        w1 in -1.5f64..1.5,
        w2 in -1.5f64..1.5,
        lo1 in 0.0f64..0.7,
        lo2 in 0.0f64..0.7,
        ext in 0.1f64..0.6,
    ) {
        let points: Vec<(f64, f64)> =
            raw.iter().map(|(a, b)| (*a as f64 / 19.0, *b as f64 / 19.0)).collect();
        let f = ScoreFn::linear(vec![w1, w2]).expect("dims");
        let rect = Rect::new(
            vec![lo1, lo2],
            vec![(lo1 + ext).min(1.0), (lo2 + ext).min(1.0)],
        ).expect("rect");
        let mut fx = fixture(&points, per_dim);
        let out = compute_topk(
            &fx.grid,
            &mut fx.scratch,
            Some(InfluenceUpdate::fresh(&mut fx.influence, QuerySlot(0))),
            &f,
            k,
            Some(&rect),
            false,
            None,
        );
        prop_assert_eq!(out.top.as_slice(), &naive(&points, &f, k, Some(&rect))[..]);
    }

    /// Snapshot mode (`qid = None`) produces the same result and leaves the
    /// grid untouched.
    #[test]
    fn snapshot_mode_is_pure(
        raw in prop::collection::vec((0u32..16, 0u32..16), 1..40),
        k in 1usize..5,
        w1 in -1.0f64..1.0,
        w2 in -1.0f64..1.0,
    ) {
        let points: Vec<(f64, f64)> =
            raw.iter().map(|(a, b)| (*a as f64 / 15.0, *b as f64 / 15.0)).collect();
        let f = ScoreFn::linear(vec![w1, w2]).expect("dims");
        let mut fx = fixture(&points, 6);
        let out = compute_topk(
            &fx.grid,
            &mut fx.scratch,
            None,
            &f,
            k,
            None,
            false,
            None,
        );
        prop_assert_eq!(out.top.as_slice(), &naive(&points, &f, k, None)[..]);
        prop_assert_eq!(
            fx.influence.total_entries(),
            0,
            "snapshot registered influence entries"
        );
    }
}

/// Non-proptest regression: the skyband seeded from compute (top + ties)
/// equals the k-skyband of all tuples scoring at least the threshold.
#[test]
fn skyband_seed_equivalence() {
    use topk_monitor::Skyband;
    let points: Vec<(f64, f64)> = (0..40)
        .map(|i| {
            let a = (i * 7) % 10;
            let b = (i * 3) % 10;
            (a as f64 / 9.0, b as f64 / 9.0)
        })
        .collect();
    let f = ScoreFn::linear(vec![1.0, 1.0]).expect("dims");
    let k = 5;
    let mut fx = fixture(&points, 5);
    let out = compute_topk(
        &fx.grid,
        &mut fx.scratch,
        Some(InfluenceUpdate::fresh(&mut fx.influence, QuerySlot(0))),
        &f,
        k,
        None,
        true,
        None,
    );
    let threshold = out.top.kth().expect("enough points").score;

    // Seeded rebuild (what SMA does).
    let mut seed: Vec<Scored> = out.top.as_slice().to_vec();
    seed.extend_from_slice(&out.boundary_ties);
    let mut seeded = Skyband::new(k).expect("k");
    seeded.rebuild(&seed);

    // Incremental construction over the full stream, then filtered to the
    // above-threshold population.
    let mut incremental = Skyband::new(k).expect("k");
    for (i, (x, y)) in points.iter().enumerate() {
        incremental.insert(Scored::new(f.score(&[*x, *y]), TupleId(i as u64)));
    }
    let want: Vec<Scored> = incremental
        .scored()
        .iter()
        .copied()
        .filter(|s| s.score >= threshold)
        .collect();
    let got: Vec<Scored> = seeded.scored().to_vec();
    assert_eq!(got, want);
}
