//! Update-stream TMA (§7, explicit deletions) against a brute-force scan,
//! on randomized insert/delete sequences.

use proptest::prelude::*;
use topk_monitor::engines::GridSpec;
use topk_monitor::{Query, QueryId, ScoreFn, Scored, TupleId, UpdateOp, UpdateStreamTma};

fn brute(m: &UpdateStreamTma, q: &Query) -> Vec<Scored> {
    let mut all: Vec<Scored> = m
        .store()
        .iter()
        .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
        .map(|(id, c)| Scored::new(q.f.score(c), id))
        .collect();
    all.sort_by(|a, b| b.cmp(a));
    all.truncate(q.k);
    all
}

#[test]
fn worst_case_delete_the_best_repeatedly() {
    let mut m = UpdateStreamTma::new(1, GridSpec::PerDim(8)).expect("config");
    let q = Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 2).unwrap();
    m.register_query(QueryId(0), q.clone()).expect("register");
    // Insert a descending staircase, then repeatedly delete the current
    // maximum — every cycle invalidates the result.
    let ids: Vec<TupleId> = (0..30)
        .map(|i| m.insert(&[1.0 - i as f64 / 40.0]).expect("insert"))
        .collect();
    m.end_cycle();
    for (round, id) in ids.iter().enumerate().take(28) {
        m.delete(*id).expect("delete");
        m.end_cycle();
        assert_eq!(
            m.result(QueryId(0)).expect("result"),
            &brute(&m, &q)[..],
            "round {round}"
        );
    }
    assert!(
        m.stats().recomputations() >= 28,
        "every deletion hit the top-2"
    );
}

#[test]
fn interleaved_queries_and_ops() {
    let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(5)).expect("config");
    let q0 = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 3).unwrap();
    m.register_query(QueryId(0), q0.clone()).expect("register");
    let mut state = 99u64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
    };
    let mut live = Vec::new();
    for _ in 0..20 {
        live.push(m.insert(&[rnd(), rnd()]).expect("insert"));
    }
    m.end_cycle();

    // Register a second query over a populated store.
    let q1 = Query::top_k(ScoreFn::linear(vec![-1.0, 2.0]).unwrap(), 5).unwrap();
    m.register_query(QueryId(1), q1.clone()).expect("register");

    for round in 0..30 {
        let mut ops = vec![
            UpdateOp::Insert(vec![rnd(), rnd()]),
            UpdateOp::Insert(vec![rnd(), rnd()]),
        ];
        if live.len() > 4 {
            let idx = (rnd() * live.len() as f64) as usize % live.len();
            ops.push(UpdateOp::Delete(live.swap_remove(idx)));
        }
        let new_ids = m.apply(&ops).expect("apply");
        live.extend(new_ids);
        assert_eq!(
            m.result(QueryId(0)).unwrap(),
            &brute(&m, &q0)[..],
            "q0 round {round}"
        );
        assert_eq!(
            m.result(QueryId(1)).unwrap(),
            &brute(&m, &q1)[..],
            "q1 round {round}"
        );
    }

    // Remove one query; the other keeps working.
    m.remove_query(QueryId(0)).expect("remove");
    m.apply(&[UpdateOp::Insert(vec![0.9, 0.9])]).expect("apply");
    assert!(m.result(QueryId(0)).is_err());
    assert_eq!(m.result(QueryId(1)).unwrap(), &brute(&m, &q1)[..]);
}

#[test]
fn empty_store_and_full_drain() {
    let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(4)).expect("config");
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 4).unwrap();
    m.register_query(QueryId(0), q.clone()).expect("register");
    assert!(m.result(QueryId(0)).unwrap().is_empty());
    let a = m.insert(&[0.5, 0.5]).expect("insert");
    let b = m.insert(&[0.7, 0.2]).expect("insert");
    m.end_cycle();
    assert_eq!(m.result(QueryId(0)).unwrap().len(), 2);
    // Drain to empty; the result must follow.
    m.apply(&[UpdateOp::Delete(a), UpdateOp::Delete(b)])
        .expect("apply");
    assert!(m.result(QueryId(0)).unwrap().is_empty());
    // And recover again.
    m.apply(&[UpdateOp::Insert(vec![0.1, 0.9])]).expect("apply");
    assert_eq!(m.result(QueryId(0)).unwrap().len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary op sequences with coarse coordinates (tie pressure).
    #[test]
    fn random_update_streams(
        k in 1usize..6,
        w1 in -1.5f64..1.5,
        w2 in -1.5f64..1.5,
        ops in prop::collection::vec((any::<bool>(), 0u32..16, 0u32..16), 1..120),
        batch in 1usize..6,
    ) {
        let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(4)).expect("config");
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        m.register_query(QueryId(0), q.clone()).expect("register");
        let mut live: Vec<TupleId> = Vec::new();
        for (i, (is_insert, a, b)) in ops.iter().enumerate() {
            if *is_insert || live.is_empty() {
                let coords = vec![*a as f64 / 15.0, *b as f64 / 15.0];
                live.push(m.insert(&coords).expect("insert"));
            } else {
                let idx = (*a as usize) % live.len();
                let victim = live.swap_remove(idx);
                m.delete(victim).expect("delete");
            }
            if i % batch == 0 {
                m.end_cycle();
                prop_assert_eq!(m.result(QueryId(0)).expect("result"), &brute(&m, &q)[..]);
            }
        }
        m.end_cycle();
        prop_assert_eq!(m.result(QueryId(0)).expect("result"), &brute(&m, &q)[..]);
    }
}
