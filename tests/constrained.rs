//! Constrained top-k queries (§7): TMA and SMA against the oracle, with
//! randomized constraint rectangles.

mod common;

use common::BatchGen;
use proptest::prelude::*;
use topk_monitor::engines::{GridSpec, SmaMonitor, TmaMonitor};
use topk_monitor::{
    DataDist, OracleMonitor, Query, QueryId, Rect, ScoreFn, Scored, Timestamp, WindowSpec,
};

fn run_constrained_stream(
    dims: usize,
    window: usize,
    per_dim: usize,
    queries: &[Query],
    seed: u64,
    ticks: u64,
    batch: usize,
) {
    let mut tma = TmaMonitor::new(dims, WindowSpec::Count(window), GridSpec::PerDim(per_dim))
        .expect("config");
    let mut sma = SmaMonitor::new(dims, WindowSpec::Count(window), GridSpec::PerDim(per_dim))
        .expect("config");
    let mut oracle = OracleMonitor::new(dims, WindowSpec::Count(window)).expect("config");
    for (i, q) in queries.iter().enumerate() {
        let id = QueryId(i as u64);
        tma.register_query(id, q.clone()).expect("tma register");
        sma.register_query(id, q.clone()).expect("sma register");
        oracle
            .register_query(id, q.clone())
            .expect("oracle register");
    }
    let mut stream = BatchGen::new(dims, DataDist::Ind, seed);
    for t in 0..ticks {
        let b = stream.batch(batch);
        tma.tick(Timestamp(t), &b).expect("tma tick");
        sma.tick(Timestamp(t), &b).expect("sma tick");
        oracle.tick(Timestamp(t), &b).expect("oracle tick");
        for i in 0..queries.len() {
            let id = QueryId(i as u64);
            let want: Vec<Scored> = oracle.result(id).expect("oracle").to_vec();
            assert_eq!(tma.result(id).expect("tma"), &want[..], "TMA {id} at {t}");
            assert_eq!(sma.result(id).expect("sma"), want, "SMA {id} at {t}");
        }
    }
}

#[test]
fn central_and_corner_regions() {
    let f = || ScoreFn::linear(vec![1.0, 2.0]).expect("dims");
    let queries = vec![
        Query::constrained(f(), 3, Rect::new(vec![0.3, 0.3], vec![0.7, 0.7]).unwrap()).unwrap(),
        Query::constrained(f(), 5, Rect::new(vec![0.0, 0.0], vec![0.2, 0.2]).unwrap()).unwrap(),
        Query::constrained(f(), 2, Rect::new(vec![0.8, 0.8], vec![1.0, 1.0]).unwrap()).unwrap(),
        // Degenerate sliver region.
        Query::constrained(
            f(),
            4,
            Rect::new(vec![0.5, 0.0], vec![0.5001, 1.0]).unwrap(),
        )
        .unwrap(),
    ];
    run_constrained_stream(2, 150, 7, &queries, 5, 50, 20);
}

#[test]
fn mixed_monotonicity_constrained() {
    let queries = vec![
        Query::constrained(
            ScoreFn::linear(vec![1.0, -1.0]).expect("dims"),
            3,
            Rect::new(vec![0.25, 0.25], vec![0.9, 0.6]).unwrap(),
        )
        .unwrap(),
        Query::constrained(
            ScoreFn::linear(vec![-0.7, -0.2]).expect("dims"),
            6,
            Rect::new(vec![0.1, 0.4], vec![0.5, 1.0]).unwrap(),
        )
        .unwrap(),
    ];
    run_constrained_stream(2, 120, 6, &queries, 29, 40, 15);
}

#[test]
fn three_dimensional_constrained() {
    let queries = vec![Query::constrained(
        ScoreFn::product(vec![0.2, 0.2, 0.2]).expect("dims"),
        4,
        Rect::new(vec![0.2, 0.0, 0.5], vec![0.9, 0.6, 1.0]).unwrap(),
    )
    .unwrap()];
    run_constrained_stream(3, 200, 5, &queries, 91, 40, 25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random constraint boxes, weights and result sizes.
    #[test]
    fn random_constraint_boxes(
        lo1 in 0.0f64..0.8, lo2 in 0.0f64..0.8,
        ext1 in 0.05f64..0.5, ext2 in 0.05f64..0.5,
        w1 in -2.0f64..2.0, w2 in -2.0f64..2.0,
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let rect = Rect::new(
            vec![lo1, lo2],
            vec![(lo1 + ext1).min(1.0), (lo2 + ext2).min(1.0)],
        ).expect("valid box");
        let q = Query::constrained(
            ScoreFn::linear(vec![w1, w2]).expect("dims"), k, rect,
        ).expect("query");
        run_constrained_stream(2, 60, 5, &[q], seed, 20, 10);
    }
}
