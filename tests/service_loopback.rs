//! End-to-end tests of the `tkm_service` TCP serving layer over loopback:
//! concurrent subscriber clients reconstruct oracle-identical top-k
//! results purely from the wire's delta stream, including across the
//! drop-to-snapshot backpressure resync, and the protocol's error grammar
//! behaves as documented.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use topk_monitor::service::{
    apply_push, ClientError, ErrCode, Family, Push, Service, ServiceClient, ServiceConfig,
    TickPolicy, WireWindow,
};
use topk_monitor::{
    EngineKind, MonitorServer, Query, QueryId, Rect, ScoreFn, Scored, ServerConfig, Timestamp,
};

fn lcg_batches(seed: u64, ticks: usize, rate: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Coarse 32-level coordinates for tie pressure.
        ((state >> 11) % 32) as f64 / 31.0
    };
    (0..ticks)
        .map(|_| (0..rate * dims).map(|_| rnd()).collect())
        .collect()
}

/// The acceptance scenario: 4 concurrent subscriber clients over loopback,
/// each following a different query (one constrained), all reconstructing
/// oracle-identical results from the delta stream alone.
#[test]
fn four_subscribers_reconstruct_oracle_results() {
    let dims = 2;
    let window = 300;
    let scfg = ServerConfig::sma(dims, window);
    let service = Service::bind("127.0.0.1:0", ServiceConfig::new(scfg)).expect("bind");
    let addr = service.local_addr();

    // Queries: three linear (different weights/k), one constrained.
    type Spec = (usize, Vec<f64>, Option<Vec<(f64, f64)>>);
    let specs: Vec<Spec> = vec![
        (3, vec![1.0, 2.0], None),
        (7, vec![1.0, -0.5], None),
        (1, vec![0.25, 0.25], None),
        (5, vec![2.0, 1.0], Some(vec![(0.0, 0.5), (0.25, 1.0)])),
    ];

    // Independent in-process oracle fed the same batches directly.
    let mut oracle = MonitorServer::new(scfg).expect("oracle");
    let mut oracle_ids = Vec::new();
    for (k, weights, range) in &specs {
        let f = ScoreFn::linear(weights.clone()).expect("weights");
        let q = match range {
            None => Query::top_k(f, *k).expect("query"),
            Some(spans) => {
                let (lo, hi): (Vec<f64>, Vec<f64>) = spans.iter().copied().unzip();
                Query::constrained(f, *k, Rect::new(lo, hi).expect("rect")).expect("query")
            }
        };
        oracle_ids.push(oracle.register(q).expect("oracle register"));
    }

    let subscribed = Arc::new(Barrier::new(specs.len() + 1));
    let ingested = Arc::new(Barrier::new(specs.len() + 1));
    let mut handles = Vec::new();
    for (k, weights, range) in specs.clone() {
        let subscribed = Arc::clone(&subscribed);
        let ingested = Arc::clone(&ingested);
        handles.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("connect");
            let q = client
                .register(
                    k,
                    &weights,
                    Family::Linear,
                    range,
                    Some(WireWindow::Count(300)),
                )
                .expect("register");
            let baseline = client.subscribe(q).expect("subscribe");
            let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
            subscribed.wait();
            ingested.wait(); // all ticks acknowledged; our pushes are queued
            let (_, wire_truth) = client.snapshot(q).expect("snapshot");
            // FIFO ordering: every delta enqueued before the snapshot reply
            // is now buffered. Apply them, then compare.
            let mut deltas_seen = 0usize;
            while let Some(push) = client.try_buffered_push() {
                if matches!(push, Push::Delta { .. }) {
                    deltas_seen += 1;
                }
                apply_push(&mut mirror, &push);
            }
            assert_eq!(
                mirror.get(&q).map(Vec::as_slice),
                Some(wire_truth.as_slice()),
                "reconstruction diverged from the server snapshot"
            );
            assert!(deltas_seen > 0, "subscriber saw no deltas at all");
            client.quit().expect("quit");
            (q, mirror.remove(&q).unwrap())
        }));
    }

    // Subscriptions exist before the first arrival: registration order on
    // the wire matches the oracle's registration order.
    subscribed.wait();
    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let batches = lcg_batches(7, 50, 12, dims);
    for batch in &batches {
        ingest.tick(batch).expect("tick");
        oracle.tick(batch).expect("oracle tick");
    }
    let stats = ingest.stats().expect("stats");
    assert_eq!(stats["ticks"], "50");
    assert_eq!(stats["arrivals"], "600");
    assert_eq!(stats["subscriptions"], "4");
    assert_eq!(stats["resyncs"], "0", "no backpressure at this scale");
    // The robustness counters exist and stay zero on a healthy run: no
    // idle reaping, no overload shedding, no fault injection.
    assert_eq!(stats["reaped"], "0", "nothing idle long enough to reap");
    assert_eq!(stats["shed"], "0", "inbox never stayed full");
    assert_eq!(stats["faults"], "0", "no fault schedule configured");
    ingested.wait();

    for handle in handles {
        let (q, mirror) = handle.join().expect("subscriber");
        // The four REGISTERs race, so wire ids don't map positionally onto
        // the oracle's; the distinct k values make matching by result
        // identity unambiguous instead.
        let matched = oracle_ids
            .iter()
            .any(|oid| oracle.result(*oid).expect("oracle result") == mirror);
        assert!(matched, "no oracle query matches reconstruction of {q}");
    }
    service.shutdown();
}

/// Subscriber-side identity check with deterministic ids: a single
/// subscriber's queries match the oracle one-to-one.
#[test]
fn single_session_matches_oracle_per_query() {
    let scfg = ServerConfig::sma(2, 120).with_engine(EngineKind::Tma);
    let service = Service::bind("127.0.0.1:0", ServiceConfig::new(scfg)).expect("bind");
    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
    let mut pairs = Vec::new();
    for (k, w) in [(2, [1.0, 0.5]), (5, [0.1, 1.0]), (4, [1.0, 1.0])] {
        let wire = client.register_linear(k, &w).expect("register");
        let f = ScoreFn::linear(w.to_vec()).expect("weights");
        let local = oracle
            .register(Query::top_k(f, k).expect("query"))
            .expect("oracle register");
        assert_eq!(wire, local, "sequential registration shares id order");
        let baseline = client.subscribe(wire).expect("subscribe");
        assert!(baseline.is_empty());
        pairs.push(wire);
    }

    let batches = lcg_batches(99, 40, 9, 2);
    for batch in &batches {
        let now = client.tick(batch).expect("tick");
        oracle.tick(batch).expect("oracle tick");
        assert_eq!(Timestamp(now.0), Timestamp(oracle.now().0));
    }

    let mut mirror: BTreeMap<_, Vec<Scored>> = pairs.iter().map(|q| (*q, Vec::new())).collect();
    for q in &pairs {
        let (_, truth) = client.snapshot(*q).expect("snapshot");
        assert_eq!(truth, oracle.result(*q).expect("oracle"), "wire vs oracle");
        mirror.insert(*q, truth);
    }
    while let Some(push) = client.try_buffered_push() {
        // Already reflected in the snapshots; applying must not corrupt.
        apply_push(&mut mirror, &push);
    }
    client.quit().expect("quit");
    service.shutdown();
}

/// The drop-to-snapshot backpressure path: a subscriber that stops reading
/// has its push backlog dropped, receives `RESYNC` + fresh snapshots when
/// it resumes, and still converges to the oracle-exact result.
#[test]
fn slow_subscriber_resyncs_and_reconverges() {
    let dims = 2;
    let scfg = ServerConfig::sma(dims, 128);
    let service =
        Service::bind("127.0.0.1:0", ServiceConfig::new(scfg).with_push_queue(2)).expect("bind");
    let addr = service.local_addr();
    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    let mut sub = ServiceClient::connect(addr).expect("subscriber");
    let q = sub.register_linear(50, &[1.0, 1.0]).expect("register");
    oracle
        .register(Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("w"), 50).expect("q"))
        .expect("oracle register");
    let baseline = sub.subscribe(q).expect("subscribe");
    let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();

    // Tick (without the subscriber reading) until the server records a
    // resync: the session queue cap is 2, so once the socket buffers fill,
    // the backlog is dropped. Bounded by the finite kernel buffers.
    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let mut state = 0xbeef_u64;
    let mut resyncs = 0u64;
    let mut fed = Vec::new();
    for round in 0..100_000u32 {
        let mut batch = Vec::with_capacity(64 * dims);
        for _ in 0..64 * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            batch.push(((state >> 11) % 1024) as f64 / 1023.0);
        }
        ingest.tick(&batch).expect("tick");
        fed.push(batch);
        if round % 64 == 0 {
            resyncs = ingest.stats().expect("stats")["resyncs"].parse().unwrap();
            if resyncs >= 1 {
                break;
            }
        }
    }
    assert!(
        resyncs >= 1,
        "no resync after 100k ticks against a cap-2 push queue"
    );
    for batch in &fed {
        oracle.tick(batch).expect("oracle tick");
    }

    // The subscriber wakes up and drains: it must observe the RESYNC
    // marker, re-baseline from the snapshots that follow, and then match
    // the server and oracle exactly.
    let (_, wire_truth) = sub.snapshot(q).expect("snapshot");
    let mut saw_resync = false;
    while let Some(push) = sub.try_buffered_push() {
        if let Push::Resync { count } = push {
            assert_eq!(count, 1, "one subscription to re-baseline");
            saw_resync = true;
        }
        apply_push(&mut mirror, &push);
    }
    assert!(saw_resync, "server recorded a resync the client never saw");
    assert_eq!(mirror[&q], wire_truth, "post-resync reconstruction");
    assert_eq!(
        mirror[&q],
        oracle.result(QueryId(0)).expect("oracle result"),
        "post-resync reconstruction vs oracle"
    );

    // Delta flow resumes after a resync: further ticks keep the mirror
    // exact when read promptly.
    for batch in lcg_batches(3, 5, 16, dims) {
        ingest.tick(&batch).expect("tick");
        oracle.tick(&batch).expect("oracle tick");
        let (_, truth) = sub.snapshot(q).expect("snapshot");
        while let Some(push) = sub.try_buffered_push() {
            apply_push(&mut mirror, &push);
        }
        assert_eq!(mirror[&q], truth);
    }
    assert_eq!(
        mirror[&q],
        oracle.result(QueryId(0)).expect("oracle result")
    );
    sub.quit().expect("quit");
    service.shutdown();
}

/// A second SUBSCRIBE on a connection that already has deltas buffered
/// must still find its baseline snapshot (regression: the client used to
/// pop the *oldest* buffered push and mistake an earlier delta for the
/// baseline).
#[test]
fn late_subscribe_with_buffered_deltas() {
    let scfg = ServerConfig::sma(2, 50);
    let service = Service::bind("127.0.0.1:0", ServiceConfig::new(scfg)).expect("bind");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");

    let q0 = client.register_linear(2, &[1.0, 1.0]).expect("register q0");
    let q1 = client.register_linear(3, &[0.5, 2.0]).expect("register q1");
    assert!(client.subscribe(q0).expect("subscribe q0").is_empty());

    // This tick produces a DELTA for q0 that sits unread in the buffer…
    client.tick(&[0.9, 0.1, 0.2, 0.8]).expect("tick");
    // …while the late subscribe must still return q1's (non-empty)
    // baseline, not trip over the buffered q0 delta.
    let baseline = client.subscribe(q1).expect("late subscribe q1");
    assert_eq!(baseline.len(), 2, "q1 baseline reflects the window");
    // The q0 delta is still there, in order.
    match client.next_push().expect("buffered q0 delta") {
        Push::Delta { delta, .. } => assert_eq!(delta.query, q0),
        other => panic!("expected the buffered q0 delta, got {other:?}"),
    }
    client.quit().expect("quit");
    service.shutdown();
}

/// The documented error grammar, end to end over a raw socket.
#[test]
fn protocol_error_grammar() {
    let scfg = ServerConfig::sma(2, 10);
    let service = Service::bind("127.0.0.1:0", ServiceConfig::new(scfg)).expect("bind");
    let addr = service.local_addr();

    // Raw socket: unparseable verbs answer ERR parse without killing the
    // connection.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    let mut lines = BufReader::new(raw.try_clone().expect("clone"));
    let ask = |raw: &mut TcpStream, lines: &mut BufReader<TcpStream>, req: &str| -> String {
        raw.write_all(format!("{req}\n").as_bytes()).expect("write");
        let mut line = String::new();
        lines.read_line(&mut line).expect("read");
        line.trim().to_string()
    };
    assert!(ask(&mut raw, &mut lines, "FROB 1 2").starts_with("ERR parse "));
    assert!(ask(&mut raw, &mut lines, "REGISTER k=0x3 weights=1,1").starts_with("ERR parse "));
    assert!(ask(&mut raw, &mut lines, "SNAPSHOT q99").starts_with("ERR unknown-query "));
    assert!(ask(&mut raw, &mut lines, "TICK 0.5").starts_with("ERR bad-arg "));
    assert!(ask(
        &mut raw,
        &mut lines,
        "REGISTER k=3 weights=1,1 window=count:11"
    )
    .starts_with("ERR window-mismatch "));
    assert_eq!(ask(&mut raw, &mut lines, "QUIT"), "OK bye");

    // Typed client: server errors surface as ClientError::Server with the
    // matching code.
    let mut client = ServiceClient::connect(addr).expect("connect");
    match client.subscribe(QueryId(42)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::UnknownQuery),
        other => panic!("expected unknown-query, got {other:?}"),
    }
    let q = client.register_linear(2, &[1.0, 1.0]).expect("register");
    client.tick(&[0.5, 0.5]).expect("tick");
    // TICKAT must be monotone.
    client.tick_at(Timestamp(5), &[0.5, 0.5]).expect("tickat");
    match client.tick_at(Timestamp(1), &[]) {
        Err(ClientError::Server { code, .. }) => {
            assert!(matches!(code, ErrCode::BadArg | ErrCode::Internal))
        }
        other => panic!("expected rejection of a decreasing TICKAT, got {other:?}"),
    }
    // Unsubscribe is idempotent; unregister then re-subscribe fails.
    client.unsubscribe(q).expect("unsubscribe");
    client.unregister(q).expect("unregister");
    match client.subscribe(q) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::UnknownQuery),
        other => panic!("expected unknown-query after unregister, got {other:?}"),
    }
    client.quit().expect("quit");
    service.shutdown();
}

/// Interval ticking batches every arrival queued during the interval into
/// one engine cycle and keeps serving correct results.
#[test]
fn interval_mode_batches_queued_arrivals() {
    let scfg = ServerConfig::sma(2, 100);
    let cfg = ServiceConfig::new(scfg)
        .with_tick(TickPolicy::Interval(std::time::Duration::from_millis(10)));
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");

    let q = client.register_linear(3, &[1.0, 1.0]).expect("register");
    // TICKAT is meaningless when the timer owns the clock.
    match client.tick_at(Timestamp(9), &[0.1, 0.1]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrCode::Unsupported),
        other => panic!("expected unsupported, got {other:?}"),
    }
    // Five TICKs land inside (at most a few) timer intervals.
    for v in [0.9, 0.7, 0.5, 0.3, 0.1] {
        client.tick(&[v, v, v * 0.5, v]).expect("tick");
    }
    // Wait until the timer has flushed everything.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats");
        if stats["pending"] == "0" && stats["arrivals"] == "10" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timer never flushed: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (_, result) = client.snapshot(q).expect("snapshot");
    assert_eq!(result.len(), 3);
    assert_eq!(result[0].score.get(), 0.9 + 0.9);
    client.quit().expect("quit");
    service.shutdown();
}
