//! Distributed-tier integration tests: a coordinator merging per-site
//! candidate deltas must track a single-node oracle bit-exactly, keep
//! serving (flagged `DEGRADED`) while a site is down, reap silent sites
//! through the lease, and reconverge across seeded uplink faults.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use topk_monitor::service::{
    apply_push, Family, FaultPlan, Push, Role, Service, ServiceClient, ServiceConfig, SiteRole,
};
use topk_monitor::{QueryId, Scored, ServerConfig, Timestamp, WindowSpec};

/// Deterministic per-(seed) batch of `tuples` points in `[0,1)^dims`.
fn batch(seed: u64, dims: usize, tuples: usize) -> Vec<f64> {
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    (0..dims * tuples)
        .map(|_| {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((s >> 33) as f64) / (u64::from(u32::MAX) as f64)
        })
        .collect()
}

fn bind_coordinator(cfg: &ServerConfig) -> Service {
    Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(*cfg).with_role(Role::Coordinator),
    )
    .expect("bind coordinator")
}

fn bind_site(cfg: &ServerConfig, role: SiteRole) -> (Service, ServiceClient) {
    let svc = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(*cfg).with_role(Role::Site(role)),
    )
    .expect("bind site");
    let driver = ServiceClient::connect(svc.local_addr()).expect("connect site driver");
    (svc, driver)
}

/// The single-node oracle is a *standalone* service fed the full global
/// stream — identical code paths (parser, query builder, engine) with no
/// distribution, so any mesh/oracle mismatch is the mesh's fault.
fn bind_oracle(cfg: &ServerConfig) -> (Service, ServiceClient) {
    let svc = Service::bind("127.0.0.1:0", ServiceConfig::new(*cfg)).expect("bind oracle");
    let client = ServiceClient::connect(svc.local_addr()).expect("connect oracle");
    (svc, client)
}

/// Drives empty catch-up cycles (advancing time in lockstep on the mesh
/// and the oracle) until the coordinator's published results match the
/// oracle's for every query. Extra cycles re-dial dropped uplinks, re-ship
/// baselines after heals, and advance the frontier past in-flight markers.
fn settle(
    control: &mut ServiceClient,
    oracle: &mut ServiceClient,
    drivers: &mut [&mut ServiceClient],
    ts: &mut u64,
    queries: &[QueryId],
) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        *ts += 1;
        for d in drivers.iter_mut() {
            let _ = d.site_ingest(Timestamp(*ts), 0, &[]);
        }
        oracle.tick_at(Timestamp(*ts), &[]).expect("oracle tick");
        let mut matched = true;
        for &q in queries {
            let got = control.snapshot(q).expect("coordinator snapshot").1;
            let want = oracle.snapshot(q).expect("oracle snapshot").1;
            if got != want {
                matched = false;
                break;
            }
        }
        if matched {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "mesh failed to reconverge with the oracle by t={ts}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Pumps the subscriber's socket (a `PING` reply is a read barrier) and
/// drains buffered pushes: result pushes into `mirror`, `DEGRADED` site
/// lists into `degradations`.
fn pump(
    subscriber: &mut ServiceClient,
    mirror: &mut BTreeMap<QueryId, Vec<Scored>>,
    degradations: &mut Vec<Vec<u64>>,
) {
    subscriber.ping().expect("subscriber ping");
    while let Some(push) = subscriber.try_buffered_push() {
        if let Push::Degraded { sites, .. } = &push {
            degradations.push(sites.clone());
        } else {
            apply_push(mirror, &push);
        }
    }
}

/// Two sites against the in-process oracle: 30 cycles of partitioned
/// ingest, a second (ranged, product-scored) query registered mid-run and
/// adopted by the sites on the fly, then bit-exact convergence on both
/// queries — through snapshots *and* through a subscriber's delta mirror.
#[test]
fn mesh_matches_single_node_oracle() {
    let cfg = ServerConfig::sma(2, 64).with_window(WindowSpec::Time(8));
    let coordinator = bind_coordinator(&cfg);
    let coord_addr = coordinator.local_addr().to_string();
    let mut control = ServiceClient::connect(coordinator.local_addr()).expect("connect control");
    let mut subscriber =
        ServiceClient::connect(coordinator.local_addr()).expect("connect subscriber");
    let (oracle_svc, mut oracle) = bind_oracle(&cfg);

    let q0 = control
        .register(3, &[1.0, 0.5], Family::Linear, None, None)
        .expect("register q0");
    assert_eq!(
        q0,
        oracle
            .register(3, &[1.0, 0.5], Family::Linear, None, None)
            .expect("oracle q0")
    );
    assert!(subscriber.subscribe(q0).expect("subscribe q0").is_empty());

    let (site0, mut d0) = bind_site(&cfg, SiteRole::new(0, coord_addr.clone()));
    let (site1, mut d1) = bind_site(&cfg, SiteRole::new(1, coord_addr));

    let mut queries = vec![q0];
    let mut base = 0u64;
    let mut ts = 0u64;
    const PER_SITE: usize = 3;
    for t in 1..=30u64 {
        ts = t;
        let c0 = batch(t * 2, 2, PER_SITE);
        let c1 = batch(t * 2 + 1, 2, PER_SITE);
        d0.site_ingest(Timestamp(t), base, &c0)
            .expect("site 0 ingest");
        d1.site_ingest(Timestamp(t), base + PER_SITE as u64, &c1)
            .expect("site 1 ingest");
        base += 2 * PER_SITE as u64;
        let mut full = c0;
        full.extend_from_slice(&c1);
        oracle.tick_at(Timestamp(t), &full).expect("oracle tick");

        if t == 10 {
            // Mid-run registration: the sites must adopt the new query and
            // ship its baseline without a re-enrollment.
            let range = Some(vec![(0.2, 0.9), (0.0, 0.8)]);
            let q1 = control
                .register(2, &[0.7, 0.3], Family::Product, range.clone(), None)
                .expect("register q1");
            assert_eq!(
                q1,
                oracle
                    .register(2, &[0.7, 0.3], Family::Product, range, None)
                    .expect("oracle q1")
            );
            queries.push(q1);
        }
    }

    settle(
        &mut control,
        &mut oracle,
        &mut [&mut d0, &mut d1],
        &mut ts,
        &queries,
    );

    // The subscriber's delta mirror converges to the same result.
    let want = oracle.snapshot(q0).expect("oracle q0").1;
    assert!(!want.is_empty(), "oracle top-k should not be empty");
    let mut mirror = BTreeMap::new();
    let mut degradations = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        pump(&mut subscriber, &mut mirror, &mut degradations);
        if mirror.get(&q0) == Some(&want) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "subscriber mirror never converged: {:?} vs {want:?}",
            mirror.get(&q0)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        degradations.is_empty(),
        "no site failed, so no DEGRADED pushes: {degradations:?}"
    );

    // Candidate shipping beats naive stream forwarding, and both sites
    // enrolled exactly once.
    for d in [&mut d0, &mut d1] {
        let stats = d.stats().expect("site stats");
        assert_eq!(stats["role"], "site");
        assert_eq!(stats["uplink"], "up");
        assert_eq!(stats["adopted"], "2");
        assert_eq!(stats["enrollments"], "1");
        assert_eq!(stats["translate_misses"], "0");
        let shipped: u64 = stats["bytes_shipped"].parse().unwrap();
        let naive: u64 = stats["bytes_naive"].parse().unwrap();
        assert!(
            shipped > 0 && naive > shipped,
            "shipped {shipped} vs naive {naive}"
        );
    }
    let stats = control.stats().expect("coordinator stats");
    assert_eq!(stats["role"], "coordinator");
    assert_eq!(stats["sites"], "2");
    assert_eq!(stats["sites_live"], "2");
    assert_eq!(stats["degraded_sites"], "");

    // Role guard: a site serves no client-plane verbs, a coordinator no
    // raw ingest.
    assert!(d0.register_linear(3, &[1.0, 0.5]).is_err());
    assert!(control.tick_at(Timestamp(ts + 1), &[0.1, 0.2]).is_err());

    site0.shutdown();
    site1.shutdown();
    oracle_svc.shutdown();
    coordinator.shutdown();
}

/// A killed site degrades the mesh but never stops it: the coordinator
/// keeps serving (flagged `DEGRADED s2`), the restarted site re-enrolls,
/// heals the flag, and the mesh reconverges with the oracle bit-exactly.
#[test]
fn coordinator_serves_through_site_kill_and_heals() {
    let cfg = ServerConfig::sma(2, 64).with_window(WindowSpec::Time(6));
    let coordinator = bind_coordinator(&cfg);
    let coord_addr = coordinator.local_addr().to_string();
    let mut control = ServiceClient::connect(coordinator.local_addr()).expect("connect control");
    let mut subscriber =
        ServiceClient::connect(coordinator.local_addr()).expect("connect subscriber");
    let (oracle_svc, mut oracle) = bind_oracle(&cfg);

    let q0 = control
        .register_linear(3, &[0.8, 0.6])
        .expect("register q0");
    oracle.register_linear(3, &[0.8, 0.6]).expect("oracle q0");
    subscriber.subscribe(q0).expect("subscribe q0");

    let (site0, mut d0) = bind_site(&cfg, SiteRole::new(0, coord_addr.clone()));
    let (site1, mut d1) = bind_site(&cfg, SiteRole::new(1, coord_addr.clone()));
    let (site2, mut d2) = bind_site(&cfg, SiteRole::new(2, coord_addr.clone()));

    let mut mirror = BTreeMap::new();
    let mut degradations = Vec::new();
    let mut base = 0u64;
    let mut ts = 0u64;
    const PER_SITE: usize = 2;

    let feed = |d: &mut ServiceClient, t: u64, seed: u64, base: &mut u64| -> Vec<f64> {
        let c = batch(seed, 2, PER_SITE);
        d.site_ingest(Timestamp(t), *base, &c).expect("site ingest");
        *base += PER_SITE as u64;
        c
    };

    for t in 1..=10u64 {
        ts = t;
        let mut full = feed(&mut d0, t, t * 3, &mut base);
        full.extend(feed(&mut d1, t, t * 3 + 1, &mut base));
        full.extend(feed(&mut d2, t, t * 3 + 2, &mut base));
        oracle.tick_at(Timestamp(t), &full).expect("oracle tick");
    }

    // Kill site 2 outright. The coordinator sees the uplink EOF, degrades
    // the merge, and tells the subscriber.
    drop(d2);
    site2.shutdown();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !degradations.iter().any(|s| s == &vec![2]) {
        assert!(
            Instant::now() < deadline,
            "DEGRADED s2 never reached the subscriber: {degradations:?}"
        );
        pump(&mut subscriber, &mut mirror, &mut degradations);
        std::thread::sleep(Duration::from_millis(10));
    }

    // A subscriber arriving mid-outage is warned immediately.
    let mut late = ServiceClient::connect(coordinator.local_addr()).expect("connect late");
    late.subscribe(q0).expect("late subscribe");
    let mut late_mirror = BTreeMap::new();
    let mut late_degr = Vec::new();
    pump(&mut late, &mut late_mirror, &mut late_degr);
    assert!(
        late_degr.iter().any(|s| s == &vec![2]),
        "new subscriber was not told about the outage: {late_degr:?}"
    );

    // Two sites carry the stream; the coordinator keeps serving.
    for t in 11..=19u64 {
        ts = t;
        let mut full = feed(&mut d0, t, t * 3, &mut base);
        full.extend(feed(&mut d1, t, t * 3 + 1, &mut base));
        oracle.tick_at(Timestamp(t), &full).expect("oracle tick");
        control.snapshot(q0).expect("snapshot while degraded");
    }
    let stats = control.stats().expect("coordinator stats");
    assert_eq!(stats["degraded_sites"], "2");
    assert_eq!(stats["sites_live"], "2");

    // Restart site 2 under the same identity (a fresh port is fine — the
    // coordinator keys liveness on the site id, not the socket).
    let (site2b, mut d2) = bind_site(&cfg, SiteRole::new(2, coord_addr));
    for t in 20..=30u64 {
        ts = t;
        let mut full = feed(&mut d0, t, t * 3, &mut base);
        full.extend(feed(&mut d1, t, t * 3 + 1, &mut base));
        full.extend(feed(&mut d2, t, t * 3 + 2, &mut base));
        oracle.tick_at(Timestamp(t), &full).expect("oracle tick");
    }

    settle(
        &mut control,
        &mut oracle,
        &mut [&mut d0, &mut d1, &mut d2],
        &mut ts,
        &[q0],
    );

    // The heal was announced: an empty DEGRADED site list after the s2 one.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !degradations.iter().any(|s| s.is_empty()) {
        assert!(
            Instant::now() < deadline,
            "heal was never announced: {degradations:?}"
        );
        pump(&mut subscriber, &mut mirror, &mut degradations);
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = control.stats().expect("coordinator stats");
    assert_eq!(stats["degraded_sites"], "");
    assert_eq!(stats["sites_live"], "3");
    let stats = d2.stats().expect("restarted site stats");
    assert_eq!(stats["enrollments"], "1");

    site0.shutdown();
    site1.shutdown();
    site2b.shutdown();
    oracle_svc.shutdown();
    coordinator.shutdown();
}

/// A site that enrolls and then goes silent misses its lease: the idle
/// reaper tears the session down, the coordinator degrades the merge and
/// keeps answering snapshots.
#[test]
fn silent_site_misses_its_lease_and_is_reaped() {
    let cfg = ServerConfig::sma(2, 16);
    let coordinator = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(cfg)
            .with_role(Role::Coordinator)
            .with_idle_timeout(Duration::from_millis(150)),
    )
    .expect("bind coordinator");
    let mut control = ServiceClient::connect(coordinator.local_addr()).expect("connect control");
    let q0 = control
        .register_linear(2, &[1.0, 1.0])
        .expect("register q0");

    let mut silent = ServiceClient::connect(coordinator.local_addr()).expect("connect site");
    assert_eq!(silent.enroll_site(7, 2).expect("enroll"), 7);
    let stats = control.stats().expect("stats");
    assert_eq!(stats["sites"], "1");
    assert_eq!(stats["sites_live"], "1");

    // No heartbeat markers: the lease lapses and the reaper fires. The
    // control client's own polling keeps *it* alive.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = control.stats().expect("stats");
        if stats["degraded_sites"] == "7" {
            assert_eq!(stats["sites_live"], "0");
            assert!(
                stats["reaped"].parse::<u64>().unwrap() >= 1,
                "reaped: {stats:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "silent site was never reaped: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }

    // Degraded, not down: snapshots still answer.
    let (_, entries) = control.snapshot(q0).expect("snapshot while degraded");
    assert!(entries.is_empty());
    drop(silent);
    coordinator.shutdown();
}

/// Seeded connection resets on one site's uplink force repeated redials
/// and re-enrollments; every heal re-ships the site's baseline and the
/// mesh still lands bit-exact on the oracle.
#[test]
fn uplink_resets_redial_and_reconverge() {
    let cfg = ServerConfig::sma(2, 64).with_window(WindowSpec::Time(8));
    let coordinator = bind_coordinator(&cfg);
    let coord_addr = coordinator.local_addr().to_string();
    let mut control = ServiceClient::connect(coordinator.local_addr()).expect("connect control");
    let (oracle_svc, mut oracle) = bind_oracle(&cfg);

    let q0 = control
        .register_linear(3, &[0.4, 0.9])
        .expect("register q0");
    oracle.register_linear(3, &[0.4, 0.9]).expect("oracle q0");

    let (site0, mut d0) = bind_site(&cfg, SiteRole::new(0, coord_addr.clone()));
    let faulty = SiteRole::new(1, coord_addr)
        .with_uplink_faults(FaultPlan::parse("reset@25").expect("plan"), 42);
    let (site1, mut d1) = bind_site(&cfg, faulty);

    let mut base = 0u64;
    let mut ts = 0u64;
    const PER_SITE: usize = 2;
    for t in 1..=40u64 {
        ts = t;
        let c0 = batch(t * 5, 2, PER_SITE);
        let c1 = batch(t * 5 + 1, 2, PER_SITE);
        d0.site_ingest(Timestamp(t), base, &c0)
            .expect("site 0 ingest");
        d1.site_ingest(Timestamp(t), base + PER_SITE as u64, &c1)
            .expect("site 1 ingest");
        base += 2 * PER_SITE as u64;
        let mut full = c0;
        full.extend_from_slice(&c1);
        oracle.tick_at(Timestamp(t), &full).expect("oracle tick");
    }

    settle(
        &mut control,
        &mut oracle,
        &mut [&mut d0, &mut d1],
        &mut ts,
        &[q0],
    );

    let stats = d1.stats().expect("faulty site stats");
    let enrollments: u64 = stats["enrollments"].parse().unwrap();
    let errors: u64 = stats["uplink_errors"].parse().unwrap();
    assert!(
        enrollments >= 2,
        "resets should force re-enrollment: {stats:?}"
    );
    assert!(errors >= 1, "resets should be counted: {stats:?}");

    site0.shutdown();
    site1.shutdown();
    oracle_svc.shutdown();
    coordinator.shutdown();
}
