//! Property-based end-to-end test: for *arbitrary* streams, window sizes,
//! ks and monotone linear functions (any weight signs), TMA, SMA and TSL
//! report exactly the oracle's results on every cycle.

mod common;

use common::{build_all, register_all, tick_and_compare};
use proptest::prelude::*;
use topk_monitor::engines::GridSpec;
use topk_monitor::{Query, QueryId, ScoreFn, Timestamp, WindowSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary 2-d streams with coarse coordinates (tie pressure),
    /// arbitrary window capacity, k and weights.
    #[test]
    fn engines_agree_on_arbitrary_streams(
        capacity in 5usize..60,
        k in 1usize..12,
        per_dim in 2usize..9,
        w1 in -2.0f64..2.0,
        w2 in -2.0f64..2.0,
        levels in 2usize..12,
        ticks in prop::collection::vec(prop::collection::vec((0u32..100, 0u32..100), 0..12), 1..25),
    ) {
        let dims = 2;
        let mut engines = build_all(dims, WindowSpec::Count(capacity), GridSpec::PerDim(per_dim));
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        let held = register_all(&mut engines, QueryId(0), &q);
        let queries = vec![(QueryId(0), held)];
        for (t, batch_spec) in ticks.iter().enumerate() {
            let mut batch = Vec::with_capacity(batch_spec.len() * dims);
            for (a, b) in batch_spec {
                batch.push((*a as f64 % levels as f64) / (levels - 1).max(1) as f64);
                batch.push((*b as f64 % levels as f64) / (levels - 1).max(1) as f64);
            }
            tick_and_compare(&mut engines, Timestamp(t as u64), &batch, &queries);
        }
    }

    /// Time windows with arbitrary durations and burst patterns.
    #[test]
    fn engines_agree_on_time_windows(
        duration in 1u64..10,
        k in 1usize..8,
        bursts in prop::collection::vec(0usize..15, 1..30),
        w1 in 0.1f64..2.0,
        w2 in -2.0f64..2.0,
    ) {
        let dims = 2;
        let mut engines = build_all(dims, WindowSpec::Time(duration), GridSpec::PerDim(5));
        let q = Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k");
        let held = register_all(&mut engines, QueryId(0), &q);
        let queries = vec![(QueryId(0), held)];
        let mut state = 0x5eed_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
        };
        for (t, n) in bursts.iter().enumerate() {
            let mut batch = Vec::with_capacity(n * dims);
            for _ in 0..*n {
                batch.push(rnd());
                batch.push(rnd());
            }
            tick_and_compare(&mut engines, Timestamp(t as u64), &batch, &queries);
        }
    }

    /// Product/quadratic functions keep the agreement too.
    #[test]
    fn engines_agree_on_nonlinear(
        k in 1usize..6,
        a1 in 0.0f64..1.0,
        a2 in 0.0f64..1.0,
        quad in any::<bool>(),
        points in prop::collection::vec((0u32..50, 0u32..50), 1..80),
    ) {
        let dims = 2;
        let mut engines = build_all(dims, WindowSpec::Count(25), GridSpec::PerDim(6));
        let f = if quad {
            ScoreFn::quadratic(vec![a1, a2]).expect("dims")
        } else {
            ScoreFn::product(vec![a1, a2]).expect("dims")
        };
        let q = Query::top_k(f, k).expect("k");
        let held = register_all(&mut engines, QueryId(0), &q);
        let queries = vec![(QueryId(0), held)];
        for (t, chunk) in points.chunks(5).enumerate() {
            let mut batch = Vec::with_capacity(chunk.len() * dims);
            for (a, b) in chunk {
                batch.push(*a as f64 / 49.0);
                batch.push(*b as f64 / 49.0);
            }
            tick_and_compare(&mut engines, Timestamp(t as u64), &batch, &queries);
        }
    }
}
