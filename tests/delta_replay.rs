//! Property-based test of the delta-stream semantics: a client that
//! mirrors a query's result from a registration-time snapshot and replays
//! every subsequent [`ResultDelta`] reconstructs `result()` **exactly** —
//! across arbitrary arrival churn, query registration/termination, both
//! grid engines, and interleaved drop-to-snapshot resyncs (a mirror that
//! misses a tick's deltas and re-baselines from a fresh snapshot stays
//! exact from then on). This is the contract the `tkm_service` wire
//! protocol (`DELTA` / `SNAPSHOT` / `RESYNC`) is built on.

use std::collections::BTreeMap;

use proptest::prelude::*;
use topk_monitor::service::{apply_push, parse_server_line, Push, ServerLine};
use topk_monitor::{
    EngineKind, MonitorServer, Query, QueryId, ResultDelta, ScoreFn, Scored, ServerConfig,
};

/// One generated step of the churn sequence.
///
/// `action % 5`: 0–1 = stream only, 2 = register a fresh query,
/// 3 = unregister the oldest live query, 4 = simulate a dropped-delta
/// resync on the oldest live query (skip its deltas this tick and
/// re-baseline its mirror from a snapshot — the service's backpressure
/// path). [`run_wire_churn`] reinterprets the same steps as `action % 6`,
/// where 5 opens/closes a multi-tick reconnect gap.
type Step = (Vec<(u32, u32)>, u8, u8, i8, i8);

fn apply_tick_deltas(
    deltas: &[ResultDelta],
    mirrors: &mut BTreeMap<QueryId, Vec<Scored>>,
    skip: Option<QueryId>,
) {
    for delta in deltas {
        if Some(delta.query) == skip {
            continue;
        }
        if let Some(mirror) = mirrors.get_mut(&delta.query) {
            delta.apply(mirror);
        }
    }
}

fn run_churn(engine: EngineKind, capacity: usize, steps: &[Step]) {
    let cfg = ServerConfig::sma(2, capacity)
        .with_engine(engine)
        .with_delta_tracking(true);
    let mut server = MonitorServer::new(cfg).expect("server");
    let mut mirrors: BTreeMap<QueryId, Vec<Scored>> = BTreeMap::new();

    for (batch_spec, action, k, w1, w2) in steps {
        match action % 5 {
            2 => {
                let k = 1 + (*k as usize % 8);
                let weights = vec![*w1 as f64 / 4.0, *w2 as f64 / 4.0];
                let q = Query::top_k(ScoreFn::linear(weights).expect("weights"), k).expect("k");
                let id = server.register(q).expect("register");
                // The subscriber's baseline: the result at subscription
                // time (what SUBSCRIBE pushes as its first SNAPSHOT).
                mirrors.insert(id, server.result(id).expect("baseline"));
            }
            3 => {
                if let Some((&id, _)) = mirrors.iter().next() {
                    server.unregister(id).expect("unregister");
                    mirrors.remove(&id);
                }
            }
            _ => {}
        }

        let mut batch = Vec::with_capacity(batch_spec.len() * 2);
        for (a, b) in batch_spec {
            batch.push((a % 16) as f64 / 15.0);
            batch.push((b % 16) as f64 / 15.0);
        }
        server.tick(&batch).expect("tick");

        let deltas = server.take_deltas();
        let dropped = if action % 5 == 4 {
            mirrors.keys().next().copied()
        } else {
            None
        };
        apply_tick_deltas(&deltas, &mut mirrors, dropped);
        if let Some(q) = dropped {
            // Drop-to-snapshot: the slow consumer lost this tick's deltas
            // and is re-baselined from the post-tick result.
            let snapshot = server.result(q).expect("resync snapshot");
            mirrors.insert(q, snapshot);
        }

        for (id, mirror) in &mirrors {
            let truth = server.result(*id).expect("result");
            assert_eq!(
                mirror, &truth,
                "{engine:?}: mirror of {id} diverged from result()"
            );
        }
    }
}

/// Wire-level churn: every delta/snapshot travels through the actual line
/// encoding (`Push` → text → [`parse_server_line`] → [`apply_push`]), and
/// `action % 6 == 5` toggles a *reconnect gap* on the oldest live query —
/// its mirror misses every delta for one or more whole ticks (the client
/// is gone), then is re-baselined exactly the way a resumed
/// `ServiceClient` is: a synthetic `RESYNC` marker followed by a fresh
/// `SNAPSHOT`, both through the wire. Mirrors must equal `result()`
/// bit-exactly whenever they are online.
fn run_wire_churn(engine: EngineKind, capacity: usize, steps: &[Step]) {
    let cfg = ServerConfig::sma(2, capacity)
        .with_engine(engine)
        .with_delta_tracking(true);
    let mut server = MonitorServer::new(cfg).expect("server");
    let mut mirrors: BTreeMap<QueryId, Vec<Scored>> = BTreeMap::new();
    // The one query currently in a reconnect gap (its consumer is away).
    let mut offline: Option<QueryId> = None;

    let via_wire = |push: Push| -> Push {
        let line = push.to_string();
        match parse_server_line(&line).expect("wire round-trip") {
            ServerLine::Push(p) => p,
            ServerLine::Reply(r) => panic!("push parsed as reply: {r}"),
        }
    };
    let rebaseline =
        |server: &MonitorServer, mirrors: &mut BTreeMap<QueryId, Vec<Scored>>, q: QueryId| {
            apply_push(mirrors, &via_wire(Push::Resync { count: 1 }));
            let snapshot = Push::Snapshot {
                query: q,
                at: server.now(),
                entries: server.result(q).expect("resync snapshot"),
            };
            apply_push(mirrors, &via_wire(snapshot));
        };

    for (batch_spec, action, k, w1, w2) in steps {
        let mut reconnected = None;
        match action % 6 {
            2 => {
                let k = 1 + (*k as usize % 8);
                let weights = vec![*w1 as f64 / 4.0, *w2 as f64 / 4.0];
                let q = Query::top_k(ScoreFn::linear(weights).expect("weights"), k).expect("k");
                let id = server.register(q).expect("register");
                mirrors.insert(id, server.result(id).expect("baseline"));
            }
            3 => {
                if let Some((&id, _)) = mirrors.iter().next() {
                    server.unregister(id).expect("unregister");
                    mirrors.remove(&id);
                    if offline == Some(id) {
                        offline = None; // the vanished client's query died too
                    }
                }
            }
            5 => match offline.take() {
                // A gap was open: this step ends it (after the tick below,
                // like a real resume racing the live stream).
                Some(q) => reconnected = Some(q),
                None => offline = mirrors.keys().next().copied(),
            },
            _ => {}
        }

        let mut batch = Vec::with_capacity(batch_spec.len() * 2);
        for (a, b) in batch_spec {
            batch.push((a % 16) as f64 / 15.0);
            batch.push((b % 16) as f64 / 15.0);
        }
        server.tick(&batch).expect("tick");

        let now = server.now();
        for delta in server.take_deltas() {
            let q = delta.query;
            if Some(q) == offline || Some(q) == reconnected || !mirrors.contains_key(&q) {
                continue; // nobody is listening for this query right now
            }
            apply_push(&mut mirrors, &via_wire(Push::Delta { at: now, delta }));
        }
        if let Some(q) = reconnected {
            rebaseline(&server, &mut mirrors, q);
        }

        for (id, mirror) in &mirrors {
            if Some(*id) == offline {
                continue; // divergence is expected while the client is away
            }
            let truth = server.result(*id).expect("result");
            assert_eq!(
                mirror, &truth,
                "{engine:?}: wire mirror of {id} diverged from result()"
            );
        }
    }

    // A gap still open at the end must close exactly, however many ticks
    // it spanned.
    if let Some(q) = offline {
        rebaseline(&server, &mut mirrors, q);
        let truth = server.result(q).expect("result");
        assert_eq!(mirrors[&q], truth, "{engine:?}: final re-baseline diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SMA delta streams replay exactly under churn and resyncs.
    #[test]
    fn sma_delta_replay_reconstructs_results(
        capacity in 4usize..48,
        steps in prop::collection::vec(
            (prop::collection::vec((0u32..64, 0u32..64), 0..10),
             any::<u8>(), any::<u8>(), -8i8..8, -8i8..8),
            1..30,
        ),
    ) {
        run_churn(EngineKind::Sma, capacity, &steps);
    }

    /// TMA delta streams replay exactly under churn and resyncs.
    #[test]
    fn tma_delta_replay_reconstructs_results(
        capacity in 4usize..48,
        steps in prop::collection::vec(
            (prop::collection::vec((0u32..64, 0u32..64), 0..10),
             any::<u8>(), any::<u8>(), -8i8..8, -8i8..8),
            1..30,
        ),
    ) {
        run_churn(EngineKind::Tma, capacity, &steps);
    }

    /// SMA streams stay exact through the wire encoding under churn with
    /// multi-tick reconnect gaps repaired by RESYNC/SNAPSHOT re-baselines.
    #[test]
    fn sma_wire_replay_survives_reconnect_gaps(
        capacity in 4usize..48,
        steps in prop::collection::vec(
            (prop::collection::vec((0u32..64, 0u32..64), 0..10),
             any::<u8>(), any::<u8>(), -8i8..8, -8i8..8),
            1..30,
        ),
    ) {
        run_wire_churn(EngineKind::Sma, capacity, &steps);
    }

    /// TMA streams stay exact through the wire encoding under churn with
    /// multi-tick reconnect gaps repaired by RESYNC/SNAPSHOT re-baselines.
    #[test]
    fn tma_wire_replay_survives_reconnect_gaps(
        capacity in 4usize..48,
        steps in prop::collection::vec(
            (prop::collection::vec((0u32..64, 0u32..64), 0..10),
             any::<u8>(), any::<u8>(), -8i8..8, -8i8..8),
            1..30,
        ),
    ) {
        run_wire_churn(EngineKind::Tma, capacity, &steps);
    }
}

/// Deterministic pin of the exact-tie edge: a delta that swaps one tuple
/// for an equal-scoring one must replay to the same list, not a superset.
#[test]
fn tie_swap_replays_exactly() {
    let cfg = ServerConfig::sma(1, 2).with_delta_tracking(true);
    let mut server = MonitorServer::new(cfg).expect("server");
    let q = server
        .register(Query::top_k(ScoreFn::linear(vec![1.0]).expect("w"), 1).expect("k"))
        .expect("register");
    let mut mirror = server.result(q).expect("baseline");
    // Two equal-score tuples; the window (capacity 2) then expires the
    // older while the newer keeps the same score: the top-1 changes id
    // at identical score.
    for batch in [&[0.5][..], &[0.5][..], &[0.5][..], &[0.5][..]] {
        server.tick(batch).expect("tick");
        for delta in server.take_deltas() {
            delta.apply(&mut mirror);
        }
        assert_eq!(mirror, server.result(q).expect("truth"));
    }
}
