//! Shared helpers for the integration tests.
//!
//! Each test binary compiles this module independently, so helpers used
//! by one suite look dead to another.
#![allow(dead_code)]

use topk_monitor::engines::{build_engine, ContinuousTopK, EngineKind, GridSpec};
use topk_monitor::{DataDist, KmaxPolicy, PointGen, Query, QueryId, Timestamp, WindowSpec};

/// The engines under test (oracle last, as the reference).
pub const KINDS: [EngineKind; 4] = [
    EngineKind::Tma,
    EngineKind::Sma,
    EngineKind::Tsl,
    EngineKind::Oracle,
];

/// Builds one engine of each kind with a common configuration.
pub fn build_all(dims: usize, window: WindowSpec, grid: GridSpec) -> Vec<Box<dyn ContinuousTopK>> {
    KINDS
        .iter()
        .map(|k| build_engine(*k, dims, window, grid, KmaxPolicy::Tuned).expect("engine builds"))
        .collect()
}

/// Registers the same queries everywhere. Skips engines that reject a
/// query (e.g. TSL with constraints) and returns which engines hold it.
pub fn register_all(
    engines: &mut [Box<dyn ContinuousTopK>],
    id: QueryId,
    query: &Query,
) -> Vec<bool> {
    engines
        .iter_mut()
        .map(|e| e.register_query(id, query.clone()).is_ok())
        .collect()
}

/// Ticks every engine with the same batch and asserts identical results
/// for every registered query.
pub fn tick_and_compare(
    engines: &mut [Box<dyn ContinuousTopK>],
    now: Timestamp,
    arrivals: &[f64],
    queries: &[(QueryId, Vec<bool>)],
) {
    for e in engines.iter_mut() {
        e.tick(now, arrivals).expect("tick succeeds");
    }
    let oracle_idx = engines.len() - 1;
    for (qid, held) in queries {
        assert!(held[oracle_idx], "oracle must hold every query");
        let reference = engines[oracle_idx].result(*qid).expect("oracle result");
        for (i, e) in engines.iter().enumerate().take(oracle_idx) {
            if !held[i] {
                continue;
            }
            let got = e.result(*qid).expect("engine result");
            assert_eq!(
                got,
                reference,
                "{} diverged from oracle on {qid} at {now}",
                e.name()
            );
        }
    }
}

/// A deterministic arrival batch generator.
pub struct BatchGen {
    gen: PointGen,
}

impl BatchGen {
    pub fn new(dims: usize, dist: DataDist, seed: u64) -> BatchGen {
        BatchGen {
            gen: PointGen::new(dims, dist, seed).expect("valid dims"),
        }
    }

    pub fn batch(&mut self, n: usize) -> Vec<f64> {
        self.gen.batch(n)
    }

    /// Batch with coordinates snapped to a coarse lattice — forces score
    /// ties through every tie-break path.
    pub fn coarse_batch(&mut self, n: usize, levels: usize) -> Vec<f64> {
        let mut b = self.gen.batch(n);
        for x in &mut b {
            *x = (*x * levels as f64).round() / levels as f64;
        }
        b
    }
}
