//! Differential suite for the shared-ingest sharded monitors: for
//! arbitrary streams, [`SharedTmaMonitor`] and [`SharedSmaMonitor`] at
//! S ∈ {1, 3} must report exactly the brute-force oracle's results on
//! every cycle — under query churn (register/remove mid-stream),
//! time-based windows, and duplicate-score ties.

use proptest::prelude::*;
use topk_monitor::engines::GridSpec;
use topk_monitor::{
    OracleMonitor, Query, QueryId, ScoreFn, SharedSmaMonitor, SharedTmaMonitor, Timestamp,
    WindowSpec,
};

/// One harness instance: the four sharded monitors plus the oracle, kept
/// in lockstep through registration, removal and ticks.
struct Fleet {
    tma: Vec<SharedTmaMonitor>,
    sma: Vec<SharedSmaMonitor>,
    oracle: OracleMonitor,
    live: Vec<QueryId>,
    next_query: u64,
}

const SHARD_COUNTS: [usize; 2] = [1, 3];

impl Fleet {
    fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Fleet {
        Fleet {
            tma: SHARD_COUNTS
                .iter()
                .map(|s| SharedTmaMonitor::new(dims, window, grid, *s).expect("config"))
                .collect(),
            sma: SHARD_COUNTS
                .iter()
                .map(|s| SharedSmaMonitor::new(dims, window, grid, *s).expect("config"))
                .collect(),
            oracle: OracleMonitor::new(dims, window).expect("config"),
            live: Vec::new(),
            next_query: 0,
        }
    }

    fn register(&mut self, q: &Query) {
        let id = QueryId(self.next_query);
        self.next_query += 1;
        for m in &mut self.tma {
            m.register_query(id, q.clone()).expect("register");
        }
        for m in &mut self.sma {
            m.register_query(id, q.clone()).expect("register");
        }
        self.oracle.register_query(id, q.clone()).expect("register");
        self.live.push(id);
    }

    fn remove_oldest(&mut self) {
        if self.live.is_empty() {
            return;
        }
        let id = self.live.remove(0);
        for m in &mut self.tma {
            m.remove_query(id).expect("remove");
        }
        for m in &mut self.sma {
            m.remove_query(id).expect("remove");
        }
        self.oracle.remove_query(id).expect("remove");
    }

    fn tick_and_compare(&mut self, now: Timestamp, batch: &[f64]) -> Result<(), TestCaseError> {
        for m in &mut self.tma {
            m.tick(now, batch).expect("tick");
        }
        for m in &mut self.sma {
            m.tick(now, batch).expect("tick");
        }
        self.oracle.tick(now, batch).expect("tick");
        for id in &self.live {
            let want = self.oracle.result(*id).expect("oracle result");
            for (m, s) in self.tma.iter().zip(SHARD_COUNTS) {
                prop_assert_eq!(
                    &m.result(*id).expect("result"),
                    &want,
                    "TMA S={} diverged on {} at {}",
                    s,
                    id,
                    now
                );
            }
            for (m, s) in self.sma.iter().zip(SHARD_COUNTS) {
                prop_assert_eq!(
                    &m.result(*id).expect("result"),
                    &want,
                    "SMA S={} diverged on {} at {}",
                    s,
                    id,
                    now
                );
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Count windows with query churn: queries register and terminate
    /// mid-stream while coarse lattice coordinates force score ties.
    #[test]
    fn shared_monitors_match_oracle_under_churn(
        capacity in 5usize..40,
        per_dim in 2usize..8,
        k in 1usize..8,
        levels in 2usize..10,
        weights in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 2..6),
        ticks in prop::collection::vec(
            (prop::collection::vec((0u32..100, 0u32..100), 0..10), 0u8..5),
            1..18,
        ),
    ) {
        let dims = 2;
        let mut fleet = Fleet::new(dims, WindowSpec::Count(capacity), GridSpec::PerDim(per_dim));
        let query = |i: usize| {
            let (w1, w2) = weights[i % weights.len()];
            Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k")
        };
        fleet.register(&query(0));
        for (t, (batch_spec, churn)) in ticks.iter().enumerate() {
            // Churn before the cycle: 3 = register another query,
            // 4 = terminate the oldest (keeping at least one live).
            match churn {
                3 => fleet.register(&query(fleet.next_query as usize)),
                4 if fleet.live.len() > 1 => fleet.remove_oldest(),
                _ => {}
            }
            let mut batch = Vec::with_capacity(batch_spec.len() * dims);
            for (a, b) in batch_spec {
                batch.push((*a as f64 % levels as f64) / (levels - 1).max(1) as f64);
                batch.push((*b as f64 % levels as f64) / (levels - 1).max(1) as f64);
            }
            fleet.tick_and_compare(Timestamp(t as u64), &batch)?;
        }
    }

    /// Time windows with bursty arrival rates (the window population
    /// fluctuates, including whole-window expiry).
    #[test]
    fn shared_monitors_match_oracle_on_time_windows(
        duration in 1u64..8,
        k in 1usize..6,
        w1 in -2.0f64..2.0,
        w2 in 0.1f64..2.0,
        bursts in prop::collection::vec(0usize..12, 1..25),
    ) {
        let dims = 2;
        let mut fleet = Fleet::new(
            dims,
            WindowSpec::TimeSized { duration, capacity: 128 },
            GridSpec::PerDim(5),
        );
        fleet.register(
            &Query::top_k(ScoreFn::linear(vec![w1, w2]).expect("dims"), k).expect("k"),
        );
        let mut state = 0xcafe_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
        };
        for (t, n) in bursts.iter().enumerate() {
            let mut batch = Vec::with_capacity(n * dims);
            for _ in 0..*n {
                batch.push(rnd());
                batch.push(rnd());
            }
            fleet.tick_and_compare(Timestamp(t as u64), &batch)?;
        }
    }

    /// Heavy query churn: every tick may terminate queries *and* register
    /// new ones, so the engines' dense registries recycle slots
    /// constantly. A recycled slot inherits the freed index that dead
    /// influence-list entries carried — if termination ever left a stale
    /// entry behind, the new query would receive another query's events
    /// (or a swept-too-late cell would panic the registry). Divergent
    /// weight vectors per generation make any aliasing show up as a wrong
    /// result immediately.
    #[test]
    fn dense_slot_recycling_never_aliases(
        capacity in 8usize..48,
        per_dim in 2usize..8,
        k in 1usize..6,
        churn_ops in prop::collection::vec(
            // Per tick: (how many to remove 0..=2, how many to add 0..=2,
            // arrival batch spec).
            (0u8..3, 0u8..3, prop::collection::vec((0u32..64, 0u32..64), 0..8)),
            4..20,
        ),
    ) {
        let dims = 2;
        let mut fleet = Fleet::new(dims, WindowSpec::Count(capacity), GridSpec::PerDim(per_dim));
        // Weights vary with the registration counter, so a query that
        // reuses a dead query's slot ranks tuples differently than its
        // predecessor did.
        let query = |gen: u64| {
            let w1 = ((gen * 7 + 1) % 9) as f64 - 4.0;
            let w2 = ((gen * 5 + 3) % 9) as f64 - 4.0;
            Query::top_k(
                ScoreFn::linear(vec![w1, w2.max(0.5)]).expect("dims"),
                k,
            )
            .expect("k")
        };
        fleet.register(&query(0));
        fleet.register(&query(1));
        for (t, (removals, additions, batch_spec)) in churn_ops.iter().enumerate() {
            for _ in 0..*removals {
                if fleet.live.len() > 1 {
                    fleet.remove_oldest();
                }
            }
            for _ in 0..*additions {
                let gen = fleet.next_query;
                fleet.register(&query(gen));
            }
            let mut batch = Vec::with_capacity(batch_spec.len() * dims);
            for (a, b) in batch_spec {
                batch.push(*a as f64 / 63.0);
                batch.push(*b as f64 / 63.0);
            }
            fleet.tick_and_compare(Timestamp(t as u64), &batch)?;
        }
    }

    /// Extreme tie pressure: every coordinate drawn from a 2-3 level
    /// lattice, so most tuples tie most others; ordering must still match
    /// the oracle exactly (older tuple wins equal scores).
    #[test]
    fn shared_monitors_match_oracle_under_ties(
        levels in 2usize..4,
        k in 1usize..6,
        capacity in 4usize..20,
        points in prop::collection::vec((0u32..12, 0u32..12), 1..60),
    ) {
        let dims = 2;
        let mut fleet = Fleet::new(dims, WindowSpec::Count(capacity), GridSpec::PerDim(4));
        fleet.register(
            &Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).expect("dims"), k).expect("k"),
        );
        // A second query with opposed weights doubles the tie surfaces.
        fleet.register(
            &Query::top_k(ScoreFn::linear(vec![1.0, -1.0]).expect("dims"), k).expect("k"),
        );
        for (t, chunk) in points.chunks(4).enumerate() {
            let mut batch = Vec::with_capacity(chunk.len() * dims);
            for (a, b) in chunk {
                batch.push((*a as usize % levels) as f64 / (levels - 1) as f64);
                batch.push((*b as usize % levels) as f64 / (levels - 1) as f64);
            }
            fleet.tick_and_compare(Timestamp(t as u64), &batch)?;
        }
    }
}
