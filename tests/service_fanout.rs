//! Reactor fan-out soak (PR 10): the epoll serving path under a mixed
//! fleet — steady readers, a mid-soak joiner, an early leaver, one
//! faulted-and-reconnecting session, and one deliberately slow reader
//! forced through the drop-to-snapshot resync — every survivor's
//! `apply_push` mirror bit-exact against an in-process oracle, with the
//! encode-once counter (`STATS encodes=`) pinned to the engine's delta
//! count and strictly below the number of deliveries it amortised.
//!
//! Also here: the O(shards)-threads / no-fd-leak regression (hundreds of
//! connect/disconnect cycles against `/proc/self` baselines) and the
//! per-session backpressure determinism check (a slow reader resyncs at
//! the configured cap while a fast subscriber of the *same* query sees a
//! gapless delta stream).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use topk_monitor::service::{
    apply_push, FaultSchedule, Push, ReconnectPolicy, Service, ServiceClient, ServiceConfig,
};
use topk_monitor::{MonitorServer, Query, QueryId, ScoreFn, Scored, ServerConfig, Timestamp};

/// Data coordinates stay strictly below 1.0 (max 30/32), so the sentinel
/// tick of k tuples at exactly (1.0, ..) scores exactly `Σ wᵢ` — beyond
/// anything the data stream can reach.
fn lcg_batch(state: &mut u64, rate: usize, dims: usize) -> Vec<f64> {
    (0..rate * dims)
        .map(|_| {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*state >> 11) % 31) as f64 / 32.0
        })
        .collect()
}

fn saw_sentinel(mirror: &BTreeMap<QueryId, Vec<Scored>>, q: QueryId, threshold: f64) -> bool {
    mirror
        .get(&q)
        .is_some_and(|entries| entries.iter().any(|s| s.score.get() >= threshold))
}

/// Reads pushes until the sentinel lands in the mirror, counting applied
/// deltas and observed `RESYNC` markers.
fn follow(
    client: &mut ServiceClient,
    mirror: &mut BTreeMap<QueryId, Vec<Scored>>,
    q: QueryId,
    threshold: f64,
) -> (u64, u64) {
    let (mut deltas, mut resyncs) = (0u64, 0u64);
    while !saw_sentinel(mirror, q, threshold) {
        let push = client.next_push().expect("push stream");
        match &push {
            Push::Delta { .. } => deltas += 1,
            Push::Resync { .. } => resyncs += 1,
            _ => {}
        }
        apply_push(mirror, &push);
    }
    (deltas, resyncs)
}

/// The tentpole soak: ~300 ticks of mixed-fleet traffic over the reactor,
/// then pressure ticks until the non-reading subscriber is forced through
/// a resync, then one sentinel tick. Survivors must reconstruct the
/// oracle exactly, the per-tick encoding must have happened once per
/// routed delta (`encodes == deltas`), and the shared payloads must have
/// been delivered more times than they were encoded.
#[test]
fn fanout_soak_mixed_fleet_matches_oracle_and_encodes_once() {
    let dims = 2;
    let k = 8;
    let soak_ticks = 300u64;
    let scfg = ServerConfig::sma(dims, 200);

    // Sessions are numbered in accept order: control/ingest dials first
    // (session 0), then the six initial fleet members. Session 4 — the
    // second q2 subscriber — gets its socket reset mid-soak and must
    // self-heal through its reconnect policy.
    let schedule = FaultSchedule::parse("4=reset@40", 0xFA0007).expect("schedule dsl");
    let cfg = ServiceConfig::new(scfg)
        .with_push_queue(16)
        .with_faults(schedule);
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    // One registering connection keeps wire query ids positional with the
    // oracle's registration order.
    let weights: Vec<Vec<f64>> = vec![
        vec![1.0, 2.0],
        vec![2.0, 1.0],
        vec![1.0, 1.0],
        vec![3.0, 1.0],
    ];
    let thresholds: Vec<f64> = weights.iter().map(|w| w.iter().sum()).collect();
    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let mut qids = Vec::new();
    for w in &weights {
        qids.push(ingest.register_linear(k, w).expect("register"));
    }
    let mut oracle = MonitorServer::new(scfg).expect("oracle");
    for w in &weights {
        let f = ScoreFn::linear(w.clone()).expect("weights");
        let oid = oracle
            .register(Query::top_k(f, k).expect("query"))
            .expect("oracle register");
        assert!(qids.contains(&oid), "wire and oracle ids diverged");
    }

    // The fleet connects serially so session ids (and the fault plan's
    // target) are deterministic; consumption is concurrent.
    let connect_sub = |q: QueryId, seed: u64| {
        let mut client = ServiceClient::connect(addr)
            .expect("subscriber connect")
            .with_reconnect(ReconnectPolicy {
                base: Duration::from_millis(5),
                max: Duration::from_millis(100),
                retries: 40,
                seed,
                ..ReconnectPolicy::default()
            });
        let baseline = client.subscribe(q).expect("subscribe");
        let mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
        (client, mirror)
    };
    // Sessions 1..=3: one steady reader per query q0..q2.
    let steady: Vec<_> = (0..3)
        .map(|i| connect_sub(qids[i], 0x57EAD0 + i as u64))
        .collect();
    // Session 4: the faulted second q2 subscriber.
    let faulted = connect_sub(qids[2], 0xFA17ED);
    // Session 5: the leaver — unsubscribes q1 and quits mid-soak.
    let leaver = connect_sub(qids[1], 0x1EAFE5);
    // Session 6: the slow reader — subscribes q3 and reads nothing until
    // the soak is over.
    let (mut slow, mut slow_mirror) = connect_sub(qids[3], 0x510000);

    let mut handles = Vec::new();
    for (i, (mut client, mut mirror)) in steady.into_iter().enumerate() {
        let (q, threshold) = (qids[i], thresholds[i]);
        handles.push(std::thread::spawn(move || {
            let (deltas, _) = follow(&mut client, &mut mirror, q, threshold);
            (client, mirror, q, deltas)
        }));
    }
    {
        let (mut client, mut mirror) = faulted;
        let (q, threshold) = (qids[2], thresholds[2]);
        handles.push(std::thread::spawn(move || {
            let (deltas, _) = follow(&mut client, &mut mirror, q, threshold);
            (client, mirror, q, deltas)
        }));
    }
    let leaver_handle = {
        let (mut client, mut mirror) = leaver;
        let (q, threshold) = (qids[1], thresholds[1]);
        std::thread::spawn(move || {
            // Apply up to 60 deltas, then leave the fleet for good — the
            // unsubscribe/quit races live fan-out on the same shard.
            let mut deltas = 0u64;
            while deltas < 60 && !saw_sentinel(&mirror, q, threshold) {
                let push = client.next_push().expect("leaver push");
                if matches!(push, Push::Delta { .. }) {
                    deltas += 1;
                }
                apply_push(&mut mirror, &push);
            }
            client.unsubscribe(q).expect("unsubscribe");
            client.quit().expect("leaver quit");
            deltas
        })
    };

    // The soak: 300 ticks into both the service and the oracle, with a
    // new q0 subscriber joining the live stream halfway through.
    let mut rng = 0xD15EA5Eu64;
    let mut joiner_handle = None;
    for t in 0..soak_ticks {
        if t == soak_ticks / 2 {
            let (q, threshold) = (qids[0], thresholds[0]);
            joiner_handle = Some(std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("joiner connect");
                let baseline = client.subscribe(q).expect("joiner subscribe");
                let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
                let (deltas, _) = follow(&mut client, &mut mirror, q, threshold);
                (client, mirror, q, deltas)
            }));
        }
        let batch = lcg_batch(&mut rng, 12, dims);
        ingest.tick(&batch).expect("tick");
        oracle.tick(&batch).expect("oracle tick");
    }

    // Pressure phase: keep ticking until the slow reader's session queue
    // overflows the 16-push cap and the server re-baselines it (the
    // kernel's socket buffers absorb a while first; the bound is a
    // liveness backstop, not the expectation).
    let mut forced = false;
    for extra in 0..100_000u64 {
        let batch = lcg_batch(&mut rng, 12, dims);
        ingest.tick(&batch).expect("pressure tick");
        oracle.tick(&batch).expect("oracle pressure tick");
        if extra.is_multiple_of(32) {
            let resyncs: u64 = ingest.stats().expect("stats")["resyncs"]
                .parse()
                .expect("resyncs");
            if resyncs >= 1 {
                forced = true;
                break;
            }
        }
    }
    assert!(forced, "the slow reader was never forced through a resync");

    // One unmistakable sentinel tick that outranks all data, ending every
    // follower loop.
    let sentinel: Vec<f64> = vec![1.0; k * dims];
    ingest.tick(&sentinel).expect("sentinel tick");
    oracle.tick(&sentinel).expect("oracle sentinel");

    // Harvest the fleet: steady 0..2, the faulted session, the joiner.
    let mut applied_deltas = 0u64;
    let mut faulted_reconnects = 0u64;
    for (idx, handle) in handles.into_iter().enumerate() {
        let (client, mirror, q, deltas) = handle.join().expect("subscriber thread");
        applied_deltas += deltas;
        if idx == 3 {
            faulted_reconnects = client.reconnects();
        }
        let truth = oracle.result(q).expect("oracle result");
        assert_eq!(
            mirror.get(&q).map(Vec::as_slice),
            Some(truth.as_slice()),
            "subscriber {idx} diverged from the oracle"
        );
    }
    let (_, joiner_mirror, jq, joiner_deltas) = joiner_handle
        .expect("joiner spawned")
        .join()
        .expect("joiner thread");
    applied_deltas += joiner_deltas;
    assert!(joiner_deltas >= 1, "the joiner never saw a live delta");
    assert_eq!(
        joiner_mirror.get(&jq),
        Some(&oracle.result(jq).expect("oracle result")),
        "the mid-soak joiner diverged from the oracle"
    );
    let left_after = leaver_handle.join().expect("leaver thread");
    applied_deltas += left_after;
    assert!(
        left_after >= 1,
        "the leaver never saw a delta before leaving"
    );
    assert!(
        faulted_reconnects >= 1,
        "the faulted session never reconnected"
    );

    // Drain the slow reader: its dropped backlog must have been replaced
    // by a RESYNC + fresh snapshot, after which it reconverges exactly.
    let (slow_deltas, slow_resyncs) = follow(&mut slow, &mut slow_mirror, qids[3], thresholds[3]);
    applied_deltas += slow_deltas;
    assert!(
        slow_resyncs >= 1,
        "the slow reader never saw its RESYNC marker"
    );
    assert_eq!(
        slow_mirror.get(&qids[3]),
        Some(&oracle.result(qids[3]).expect("oracle result")),
        "the resynced slow reader diverged from the oracle"
    );

    // Server-side truth and the encode-once accounting. Every query kept
    // at least one subscriber for the whole run, so every engine delta
    // was routed — and must have been encoded exactly once (`encodes ==
    // deltas`), while the fan-out delivered those shared payloads to
    // more sessions than that (`applied > encodes`).
    let mut verifier = ServiceClient::connect(addr).expect("verifier");
    for (q, w) in qids.iter().zip(&weights) {
        let (_, wire) = verifier.snapshot(*q).expect("snapshot");
        let truth = oracle.result(*q).expect("oracle result");
        assert_eq!(wire, truth, "server snapshot diverged for weights {w:?}");
    }
    let stats = verifier.stats().expect("stats");
    let encodes: u64 = stats["encodes"].parse().expect("encodes");
    let deltas: u64 = stats["deltas"].parse().expect("deltas");
    let faults: u64 = stats["faults"].parse().expect("faults");
    assert!(encodes > 0, "no deltas were ever encoded: {stats:?}");
    assert_eq!(
        encodes, deltas,
        "each routed delta must be encoded exactly once: {stats:?}"
    );
    assert!(
        applied_deltas > encodes,
        "fan-out amortisation: {applied_deltas} deliveries should exceed \
         {encodes} encodings"
    );
    assert!(faults >= 1, "the reset plan never fired: {stats:?}");
    verifier.quit().expect("verifier quit");
    let _ = ingest.quit();
    service.shutdown();
}

fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn fd_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

/// 500 connect/subscribe/disconnect cycles — half clean `QUIT`s, half
/// abrupt drops — must return the process to its baseline fd and thread
/// counts: the reactor owns all sockets on O(shards) threads, so churn
/// may not leak either resource. (Both sides of every connection live in
/// this process, so `/proc/self` sees server-side leaks too.)
#[test]
fn connection_churn_leaks_no_fds_or_threads() {
    if thread_count().is_none() || fd_count().is_none() {
        return; // no /proc — nothing to measure on this platform
    }
    let service =
        Service::bind("127.0.0.1:0", ServiceConfig::new(ServerConfig::sma(2, 50))).expect("bind");
    let addr = service.local_addr();
    let mut control = ServiceClient::connect(addr).expect("control");
    let q = control.register_linear(4, &[1.0, 1.0]).expect("register");

    // Warm-up cycle so lazily-created resources are in the baseline.
    let warm = ServiceClient::connect(addr).expect("warmup");
    drop(warm);
    let settled = |control: &mut ServiceClient| -> bool {
        control.stats().expect("stats")["sessions"] == "1"
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !settled(&mut control) {
        assert!(Instant::now() < deadline, "warm-up session never reaped");
        std::thread::sleep(Duration::from_millis(5));
    }
    let base_threads = thread_count().expect("baseline threads");
    let base_fds = fd_count().expect("baseline fds");

    for cycle in 0..500 {
        let mut client = ServiceClient::connect(addr).expect("cycle connect");
        let baseline = client.subscribe(q).expect("cycle subscribe");
        assert!(baseline.is_empty(), "no data was ever ingested");
        if cycle % 2 == 0 {
            client.quit().expect("cycle quit");
        } else {
            drop(client); // abrupt: the reactor sees EOF and reaps
        }
    }

    // Teardown is asynchronous: wait for the session table to drain, then
    // for the closed fds to disappear from /proc.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if settled(&mut control)
            && fd_count().expect("fds") <= base_fds
            && thread_count().expect("threads") <= base_threads
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leak after churn: {} sessions, {} fds (baseline {base_fds}), \
             {} threads (baseline {base_threads})",
            control.stats().expect("stats")["sessions"],
            fd_count().expect("fds"),
            thread_count().expect("threads"),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = control.quit();
    service.shutdown();
}

/// Backpressure is strictly per-session: a subscriber that stops reading
/// is re-baselined at the configured cap, while a fast subscriber of the
/// *same query* (same shard, same shared payloads) observes every single
/// delta with no gap and never sees a `RESYNC`.
#[test]
fn backpressure_is_per_session_and_fast_readers_see_no_gaps() {
    let dims = 2;
    let k = 4;
    let scfg = ServerConfig::sma(dims, 200);
    let cfg = ServiceConfig::new(scfg).with_push_queue(8);
    let service = Service::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = service.local_addr();

    let mut ingest = ServiceClient::connect(addr).expect("ingest");
    let q = ingest.register_linear(k, &[1.0, 1.0]).expect("register");
    let mut oracle = MonitorServer::new(scfg).expect("oracle");
    let f = ScoreFn::linear(vec![1.0, 1.0]).expect("weights");
    oracle
        .register(Query::top_k(f, k).expect("query"))
        .expect("oracle register");

    let mut fast = ServiceClient::connect(addr).expect("fast");
    let fast_baseline = fast.subscribe(q).expect("fast subscribe");
    let mut slow = ServiceClient::connect(addr).expect("slow");
    let slow_baseline = slow.subscribe(q).expect("slow subscribe");
    let mut slow_mirror: BTreeMap<_, _> = [(q, slow_baseline)].into_iter().collect();

    // Data tuples score at most ~1.2; the sentinel (1.0, 1.0) scores 2.0.
    let sentinel_score = 2.0;
    let fast_handle = std::thread::spawn(move || {
        let mut mirror: BTreeMap<_, _> = [(q, fast_baseline)].into_iter().collect();
        let mut ats: Vec<Timestamp> = Vec::new();
        let mut resyncs = 0u64;
        while !saw_sentinel(&mirror, q, sentinel_score) {
            let push = fast.next_push().expect("fast push");
            match &push {
                Push::Delta { at, .. } => ats.push(*at),
                Push::Resync { .. } => resyncs += 1,
                _ => {}
            }
            apply_push(&mut mirror, &push);
        }
        (mirror, ats, resyncs)
    });

    // One strictly-increasing tuple per tick: every tick dethrones the
    // top-1, so every tick is guaranteed exactly one DELTA per query —
    // which makes "gapless" checkable as a contiguous timestamp run.
    let mut ticks = 0u64;
    let mut forced = false;
    while ticks < 100_000 {
        ticks += 1;
        let batch = vec![0.5 + ticks as f64 * 1e-6; dims];
        ingest.tick(&batch).expect("tick");
        oracle.tick(&batch).expect("oracle tick");
        if ticks.is_multiple_of(64) {
            let resyncs: u64 = ingest.stats().expect("stats")["resyncs"]
                .parse()
                .expect("resyncs");
            if resyncs >= 1 {
                forced = true;
                break;
            }
        }
    }
    assert!(forced, "the slow reader never hit the push cap");
    let sentinel = vec![1.0; k * dims];
    ingest.tick(&sentinel).expect("sentinel");
    oracle.tick(&sentinel).expect("oracle sentinel");

    let (fast_mirror, ats, fast_resyncs) = fast_handle.join().expect("fast thread");
    assert_eq!(fast_resyncs, 0, "the fast reader must never be resynced");
    let expected: Vec<Timestamp> = (1..=ticks + 1).map(Timestamp).collect();
    assert_eq!(
        ats,
        expected,
        "the fast reader's delta stream has a gap (got {} of {} ticks)",
        ats.len(),
        expected.len()
    );
    assert_eq!(
        fast_mirror.get(&q),
        Some(&oracle.result(q).expect("oracle result")),
        "the fast reader diverged from the oracle"
    );

    // The slow reader drains its (resynced) stream and reconverges.
    let mut slow_resyncs = 0u64;
    while !saw_sentinel(&slow_mirror, q, sentinel_score) {
        let push = slow.next_push().expect("slow push");
        if matches!(push, Push::Resync { .. }) {
            slow_resyncs += 1;
        }
        apply_push(&mut slow_mirror, &push);
    }
    assert!(slow_resyncs >= 1, "the slow reader never saw its RESYNC");
    assert_eq!(
        slow_mirror.get(&q),
        Some(&oracle.result(q).expect("oracle result")),
        "the resynced slow reader diverged from the oracle"
    );

    let _ = ingest.quit();
    service.shutdown();
}
