//! Quickstart: continuous top-k monitoring in ~40 lines.
//!
//! Build a monitoring server, register a query, stream a few processing
//! cycles, read the result after each.
//!
//! Run with: `cargo run --release --example quickstart`

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use topk_monitor::{MonitorServer, Query, ScoreFn, ServerConfig};

fn main() -> topk_monitor::Result<()> {
    // An SMA server (the paper's recommended engine) over a count-based
    // window holding the 1000 most recent 2-attribute tuples.
    let mut server = MonitorServer::new(ServerConfig::sma(2, 1000))?;
    println!("engine: {}", server.engine_name());

    // Continuous query: top-3 under f(x) = x1 + 2·x2 (the running example
    // of the paper's Figure 1).
    let query = server.register(Query::top_k(ScoreFn::linear(vec![1.0, 2.0])?, 3)?)?;

    // Stream three processing cycles. Arrivals are flat coordinate
    // buffers: [x1, x2, x1, x2, ...], values inside the unit workspace.
    let cycles: [&[f64]; 3] = [
        &[0.9, 0.2, 0.3, 0.8, 0.5, 0.5, 0.1, 0.1],
        &[0.7, 0.9, 0.2, 0.3],
        &[0.95, 0.95, 0.05, 0.6],
    ];

    for (i, arrivals) in cycles.iter().enumerate() {
        server.tick(arrivals)?;
        println!("\nafter cycle {i}:");
        for (rank, hit) in server.result(query)?.iter().enumerate() {
            println!(
                "  #{rank} tuple {:>4}  score {:.3}",
                hit.id.to_string(),
                hit.score.get()
            );
        }
    }

    // Queries can be torn down at any time; their book-keeping is swept.
    server.unregister(query)?;
    println!("\nquery unregistered, server keeps streaming");
    server.tick(&[0.4, 0.4])?;
    Ok(())
}
