//! Network-flow monitoring — the paper's motivating scenario (§1).
//!
//! An ISP collects NetFlow-style per-flow records at a central server and
//! continuously watches two views over the most recent flows:
//!
//! * **top-k by throughput** — if many of the heaviest flows share a
//!   destination, that node may be under a DDoS attack;
//! * **top-k by *fewest* packets** — if many of the smallest flows share a
//!   source, it may be a scanning worm probing the address space.
//!
//! Flow records are normalised into the unit workspace; "fewest packets"
//! becomes a decreasing-monotone dimension, handled by a negative weight —
//! no separate machinery needed.
//!
//! Run with: `cargo run --release --example network_flows`

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use topk_monitor::{DataDist, EngineKind, MonitorServer, PointGen, Query, ScoreFn, ServerConfig};

/// Synthetic flow: (normalised throughput, normalised packet count) plus
/// the endpoint metadata the application keeps on the side.
struct FlowMeta {
    src: u16,
    dst: u16,
}

fn main() -> topk_monitor::Result<()> {
    const WINDOW: usize = 20_000;
    const RATE: usize = 1_000;
    const K: usize = 50;

    let mut server = MonitorServer::new(ServerConfig::sma(2, WINDOW).with_engine(EngineKind::Sma))?;

    // Throughput is attribute 0; packet count is attribute 1.
    let q_heavy = server.register(Query::top_k(ScoreFn::linear(vec![1.0, 0.0])?, K)?)?;
    let q_tiny = server.register(Query::top_k(ScoreFn::linear(vec![0.0, -1.0])?, K)?)?;

    let mut gen = PointGen::new(2, DataDist::Ind, 4242)?;
    let mut metas: Vec<FlowMeta> = Vec::new();
    let mut buf = Vec::with_capacity(RATE * 2);
    let mut rng_state = 1u64;
    let mut rng = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) as u32
    };

    println!(
        "monitoring top-{K} heavy flows and top-{K} tiny flows over the last {WINDOW} flows\n"
    );

    for cycle in 0..30u32 {
        buf.clear();
        let attack = (12..18).contains(&cycle);
        for _ in 0..RATE {
            let mut p = gen.point();
            let meta = if attack && rng() % 3 == 0 {
                // DDoS burst: many high-throughput flows to one victim.
                p[0] = 0.9 + 0.1 * p[0];
                FlowMeta {
                    src: (rng() % 50_000) as u16,
                    dst: 80, // the victim
                }
            } else {
                FlowMeta {
                    src: (rng() % 50_000) as u16,
                    dst: (rng() % 50_000) as u16,
                }
            };
            buf.extend_from_slice(&p);
            metas.push(meta);
        }
        server.tick(&buf)?;

        // Application-side analysis: does one destination dominate the
        // heavy-hitter result? (This is the DDoS heuristic of the paper's
        // introduction.)
        let heavy = server.result(q_heavy)?;
        let mut dst_counts = std::collections::HashMap::new();
        for hit in &heavy {
            let meta = &metas[hit.id.0 as usize];
            *dst_counts.entry(meta.dst).or_insert(0usize) += 1;
        }
        if let Some((dst, count)) = dst_counts.iter().max_by_key(|(_, c)| **c) {
            if *count > K / 2 {
                println!(
                    "cycle {cycle:>2}: ALERT — {count}/{K} heaviest flows target dst {dst} (possible DDoS)"
                );
            } else if cycle % 5 == 0 {
                println!(
                    "cycle {cycle:>2}: normal — heaviest flow scores {:.3}, no dominant destination",
                    heavy[0].score.get()
                );
            }
        }

        // The tiny-flows view (worm detection): many tiny flows from one
        // source would indicate address-space scanning.
        let tiny = server.result(q_tiny)?;
        assert_eq!(tiny.len(), K.min(metas.len()));
        let mut src_counts = std::collections::HashMap::new();
        for hit in &tiny {
            *src_counts
                .entry(metas[hit.id.0 as usize].src)
                .or_insert(0usize) += 1;
        }
        if let Some((src, count)) = src_counts.iter().max_by_key(|(_, c)| **c) {
            if *count > K / 2 {
                println!(
                    "cycle {cycle:>2}: ALERT — {count}/{K} tiniest flows from src {src} (possible worm)"
                );
            }
        }
    }

    println!("\ndone: {} flows processed", metas.len());
    Ok(())
}
