//! Batch-replay tool: monitor top-k queries over a CSV tuple stream.
//!
//! Reads comma-separated rows of `d` numeric attributes (values in [0, 1]),
//! feeds them through a sliding-window monitor in fixed-size processing
//! cycles and prints result changes as they happen — the library as a
//! command-line tool.
//!
//! Usage:
//!   cargo run --release --example csv_monitor -- [FILE] [--engine tma|sma|tsl]
//!
//! Without FILE a small synthetic stream is generated and replayed, so the
//! example is runnable stand-alone.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::io::BufRead;

use topk_monitor::engines::GridSpec;
use topk_monitor::{
    DataDist, EngineKind, MonitorServer, PointGen, Query, ScoreFn, ServerConfig, WindowSpec,
};

const WINDOW: usize = 2_000;
const CYCLE: usize = 100;
const K: usize = 5;

fn parse_engine(args: &[String]) -> EngineKind {
    match args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("tma") => EngineKind::Tma,
        Some("tsl") => EngineKind::Tsl,
        _ => EngineKind::Sma,
    }
}

fn load_rows(args: &[String]) -> Result<Vec<Vec<f64>>, Box<dyn std::error::Error>> {
    let file = args.iter().skip(1).find(|a| !a.starts_with("--"));
    if let Some(path) = file {
        let reader = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut rows = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let row: Result<Vec<f64>, _> = trimmed
                .split(',')
                .map(|c| c.trim().parse::<f64>())
                .collect();
            match row {
                Ok(r) => rows.push(r),
                Err(e) => return Err(format!("line {}: {e}", lineno + 1).into()),
            }
        }
        Ok(rows)
    } else {
        // Stand-alone mode: synthesise a demo stream.
        let mut gen = PointGen::new(3, DataDist::Ant, 2718)?;
        Ok((0..5_000).map(|_| gen.point()).collect())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let rows = load_rows(&args)?;
    let Some(first) = rows.first() else {
        println!("empty input");
        return Ok(());
    };
    let dims = first.len();
    println!("{} rows of {dims} attributes", rows.len());

    let engine = parse_engine(&args);
    let mut server = MonitorServer::new(
        ServerConfig::sma(dims, WINDOW)
            .with_engine(engine)
            .with_window(WindowSpec::Count(WINDOW))
            .with_grid(GridSpec::default()),
    )?;
    println!(
        "engine: {}, window: {WINDOW}, cycle: {CYCLE} rows",
        server.engine_name()
    );

    // One "sum of attributes" ranking plus one per-attribute ranking.
    let mut queries = vec![(
        "sum".to_string(),
        server.register(Query::top_k(ScoreFn::linear(vec![1.0; dims])?, K)?)?,
    )];
    for dim in 0..dims {
        let mut w = vec![0.0; dims];
        w[dim] = 1.0;
        queries.push((
            format!("attr{dim}"),
            server.register(Query::top_k(ScoreFn::linear(w)?, K)?)?,
        ));
    }
    server.enable_delta_tracking()?;

    let mut batch = Vec::with_capacity(CYCLE * dims);
    let mut cycle = 0u64;
    let mut changes = 0usize;
    for row in &rows {
        if row.len() != dims {
            return Err(format!("ragged row: expected {dims} values, got {}", row.len()).into());
        }
        batch.extend(row.iter().map(|v| v.clamp(0.0, 1.0)));
        if batch.len() == CYCLE * dims {
            server.tick(&batch)?;
            batch.clear();
            cycle += 1;
            for delta in server.take_deltas() {
                changes += 1;
                if cycle.is_multiple_of(10) {
                    let name = &queries
                        .iter()
                        .find(|(_, id)| *id == delta.query)
                        .expect("registered")
                        .0;
                    println!(
                        "cycle {cycle:>4}: [{name}] +{} -{} (best now {:.4})",
                        delta.added.len(),
                        delta.removed.len(),
                        server.result(delta.query)?[0].score.get(),
                    );
                }
            }
        }
    }
    if !batch.is_empty() {
        server.tick(&batch)?;
    }

    println!("\nfinal standings after {cycle} cycles ({changes} result changes):");
    for (name, id) in &queries {
        let top = server.result(*id)?;
        println!(
            "  {name:>6}: {}",
            top.iter()
                .map(|s| format!("{}={:.4}", s.id, s.score.get()))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }
    Ok(())
}
