//! A sensor dashboard mixing the §7 query-type extensions:
//!
//! * **constrained top-k** — each dashboard panel ranks only the sensors
//!   inside its geographic pane (an axis-parallel rectangle over the
//!   normalised coordinates);
//! * **update streams** — sensors report *corrections*: a reading can be
//!   explicitly retracted (explicit deletion) rather than aging out, so
//!   the panel uses the hash-cell TMA variant.
//!
//! Run with: `cargo run --release --example constrained_dashboard`

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use topk_monitor::engines::{GridSpec, TmaMonitor, UpdateStreamTma};
use topk_monitor::{
    DataDist, PointGen, Query, QueryId, Rect, ScoreFn, Timestamp, TkmError, TupleId, WindowSpec,
};

fn main() -> Result<(), TkmError> {
    const WINDOW: usize = 5_000;
    const RATE: usize = 250;
    const K: usize = 3;
    // Attributes: (signal strength, battery level) — rank panels by
    // f = 0.8·signal + 0.2·battery.
    let dims = 2;
    let f = ScoreFn::linear(vec![0.8, 0.2])?;

    // --- Sliding-window dashboard with four constrained panels ---
    let mut dash = TmaMonitor::new(dims, WindowSpec::Count(WINDOW), GridSpec::default())?;
    let panes = [
        ("north-west", Rect::new(vec![0.0, 0.5], vec![0.5, 1.0])?),
        ("north-east", Rect::new(vec![0.5, 0.5], vec![1.0, 1.0])?),
        ("south-west", Rect::new(vec![0.0, 0.0], vec![0.5, 0.5])?),
        ("south-east", Rect::new(vec![0.5, 0.0], vec![1.0, 0.5])?),
    ];
    for (i, (_, pane)) in panes.iter().enumerate() {
        dash.register_query(
            QueryId(i as u64),
            Query::constrained(f.clone(), K, pane.clone())?,
        )?;
    }

    let mut gen = PointGen::new(dims, DataDist::Ind, 7)?;
    for tick in 0..20u64 {
        let mut batch = Vec::with_capacity(RATE * dims);
        for _ in 0..RATE {
            batch.extend_from_slice(&gen.point());
        }
        dash.tick(Timestamp(tick), &batch)?;
    }
    println!("constrained panels after 20 cycles:");
    for (i, (name, pane)) in panes.iter().enumerate() {
        let top = dash.result(QueryId(i as u64))?;
        println!(
            "  {name:>10} {:?}..{:?}: best score {:.3} ({} results)",
            pane.lo(),
            pane.hi(),
            top.first().map_or(0.0, |s| s.score.get()),
            top.len()
        );
        // Every reported tuple really lies inside the pane.
        for hit in top {
            let coords = dash.window().coords(hit.id).expect("valid result");
            assert!(pane.contains(coords));
        }
    }

    // --- Update-stream panel: corrections retract readings ---
    let mut live = UpdateStreamTma::new(dims, GridSpec::default())?;
    live.register_query(QueryId(0), Query::top_k(f, K)?)?;
    let mut ids: Vec<TupleId> = Vec::new();
    for _ in 0..500 {
        ids.push(live.insert(&gen.point())?);
    }
    live.end_cycle();
    let before = live.result(QueryId(0))?.to_vec();
    println!("\nupdate-stream panel, top-{K} before corrections:");
    for hit in &before {
        println!("  {} score {:.3}", hit.id, hit.score.get());
    }
    // Retract the current best reading (a faulty sensor) — not the oldest!
    let faulty = before[0].id;
    live.delete(faulty)?;
    live.end_cycle();
    let after = live.result(QueryId(0))?;
    println!("after retracting {faulty}:");
    for hit in after {
        println!("  {} score {:.3}", hit.id, hit.score.get());
    }
    assert_ne!(after[0].id, faulty);
    assert_eq!(after[0].id, before[1].id, "the runner-up takes over");
    println!(
        "\nrecomputations triggered by corrections: {}",
        live.stats().recomputations() - 1
    );
    Ok(())
}
