//! Stock-market monitoring over a **time-based** window.
//!
//! Trades arrive at a variable rate; a time-based window keeps everything
//! from the last `WINDOW_TICKS` time units (so bursty periods hold more
//! tuples — the defining difference from count-based windows). Two
//! continuous views run side by side:
//!
//! * a top-k ranking of "hot" trades under a *non-linear* preference
//!   combining momentum and volume, `f = (0.2 + momentum)·(0.2 + volume)`
//!   (the product family of the paper's Figure 21);
//! * a threshold alert stream reporting every trade whose score clears a
//!   fixed bar (§7 threshold queries) — with exact per-cycle deltas.
//!
//! Run with: `cargo run --release --example stock_ticker`

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use topk_monitor::engines::{GridSpec, SmaMonitor, ThresholdMonitor};
use topk_monitor::{DataDist, PointGen, Query, QueryId, ScoreFn, Timestamp, TkmError, WindowSpec};

fn main() -> Result<(), TkmError> {
    const WINDOW_TICKS: u64 = 8;
    const K: usize = 5;
    let dims = 2; // (momentum, volume), both normalised to [0, 1]

    let mut ranking = SmaMonitor::new(dims, WindowSpec::Time(WINDOW_TICKS), GridSpec::default())?;
    let mut alerts =
        ThresholdMonitor::new(dims, WindowSpec::Time(WINDOW_TICKS), GridSpec::default())?;

    let hot = ScoreFn::product(vec![0.2, 0.2])?;
    ranking.register_query(QueryId(0), Query::top_k(hot.clone(), K)?)?;
    // Alert when (0.2+m)(0.2+v) > 1.25 — roughly "both attributes ≥ 0.9".
    alerts.register_query(QueryId(0), hot, 1.25)?;

    let mut gen = PointGen::new(dims, DataDist::Ind, 99)?;
    let mut total = 0usize;

    println!("time-based window: trades from the last {WINDOW_TICKS} ticks stay ranked\n");
    for tick in 0..40u64 {
        // Bursty market: rate oscillates 20..120 trades per tick.
        let rate = 20 + 100 * usize::from(tick % 7 == 0 || tick % 11 == 0);
        let mut batch = Vec::with_capacity(rate * dims);
        for _ in 0..rate {
            let mut p = gen.point();
            // Market-wide momentum wave so leaders change over time.
            p[0] = (p[0] * 0.7 + 0.3 * ((tick as f64) / 6.0).sin().abs()).clamp(0.0, 1.0);
            batch.extend_from_slice(&p);
        }
        total += rate;

        let now = Timestamp(tick);
        ranking.tick(now, &batch)?;
        alerts.tick(now, &batch)?;

        let fresh_alerts = alerts.added(QueryId(0))?;
        if !fresh_alerts.is_empty() {
            println!(
                "tick {tick:>2}: {} alert(s), strongest score {:.3}",
                fresh_alerts.len(),
                fresh_alerts[0].score.get()
            );
        }
        if tick % 8 == 0 {
            let top = ranking.result(QueryId(0))?;
            let window_size = ranking.window().len();
            println!(
                "tick {tick:>2}: window holds {window_size} trades; top-{} scores: {}",
                top.len(),
                top.iter()
                    .map(|s| format!("{:.3}", s.score.get()))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    println!(
        "\ndone: {total} trades, {} skyband recomputations (SMA pre-computes future leaders)",
        ranking.stats().recomputations()
    );
    Ok(())
}
