//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the API subset the `tkm_bench` criterion
//! benches use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `black_box`,
//! `BenchmarkId`, `BatchSize` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally lightweight (a short warm-up, then a
//! fixed time budget per benchmark, mean wall-clock per iteration
//! printed to stdout) — enough to compare orders of magnitude and to
//! keep every bench target compiling and runnable, not a statistics
//! engine. Swap in real criterion when crates.io access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. Accepted for API
/// compatibility; the stub re-runs setup for every batch regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// Accumulated (total duration, iterations) of the measured runs.
    measured: Option<(Duration, u64)>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            measured: None,
            budget,
        }
    }

    /// Times `routine` repeatedly until the time budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one timed call decides the batch size.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (self.budget.as_nanos() / 20 / probe.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += per_batch;
        }
        self.measured = Some((total, iters));
    }

    /// Like [`Bencher::iter`] but with a fresh `setup()` input per call,
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Budget covers measured time only; setup time is excluded.
        while total < self.budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.measured = Some((total, iters));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Group-scoped so one group's measurement_time cannot leak into the
    // next (matches real criterion's scoping).
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub is time-budgeted, not
    /// sample-count driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets this group's time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.budget = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        self.criterion.report(&self.name, &id.id, b.measured);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        self.criterion.report(&self.name, &id.id, b.measured);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_STUB_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        self.report("", &id.id, b.measured);
        self
    }

    fn report(&self, group: &str, id: &str, measured: Option<(Duration, u64)>) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match measured {
            Some((total, iters)) if iters > 0 => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                println!("{label:<50} {per_iter:>14.1} ns/iter ({iters} iters)");
            }
            _ => println!("{label:<50} <no measurement>"),
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
