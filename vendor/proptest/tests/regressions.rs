//! End-to-end check that committed `cc <hex>` seeds are actually loaded
//! and replayed first — nothing else would catch a silent load failure,
//! because properties that hold for all inputs pass with or without the
//! extra cases.

use proptest::test_runner::{Config, TestRng, TestRunner};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn committed_seeds_replay_first() {
    let dir = std::env::temp_dir().join("tkm-proptest-regression-test");
    std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
    let seed: u64 = 0x0123_4567_89ab_cdef;
    std::fs::write(
        dir.join("proptest-regressions/some_source.txt"),
        format!("# comment line\ncc {seed:016x}\nnot a seed line\n"),
    )
    .unwrap();

    // The runner resolves the file relative to CARGO_MANIFEST_DIR.
    std::env::set_var("CARGO_MANIFEST_DIR", &dir);
    std::env::remove_var("PROPTEST_CASES");

    let first_draw = AtomicU64::new(0);
    let calls = AtomicU64::new(0);
    let runner = TestRunner::new(
        Config::with_cases(3),
        "mod::seed_probe",
        "tests/some_source.rs",
    );
    runner.run(|rng| {
        if calls.fetch_add(1, Ordering::SeqCst) == 0 {
            first_draw.store(rng.next_u64(), Ordering::SeqCst);
        }
        (Ok(()), String::new())
    });

    // 1 committed seed + 3 generated cases ran.
    assert_eq!(calls.load(Ordering::SeqCst), 4);
    // The very first case used exactly the committed seed.
    let mut expected = TestRng::seed_from_u64(seed);
    assert_eq!(first_draw.load(Ordering::SeqCst), expected.next_u64());
}
