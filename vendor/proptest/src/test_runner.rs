//! Deterministic case runner and RNG.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A failed test case (carries the failure message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias kept for upstream-API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test (plus committed regressions).
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// xoshiro256++, seeded via SplitMix64. Deterministic per seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next pseudo-random word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, 1]`.
    #[inline]
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Runs the cases of one property test.
pub struct TestRunner {
    config: Config,
    test_name: &'static str,
    source_file: &'static str,
}

impl TestRunner {
    /// Creates a runner for `test_name` defined in `source_file`.
    pub fn new(config: Config, test_name: &'static str, source_file: &'static str) -> Self {
        TestRunner {
            config,
            test_name,
            source_file,
        }
    }

    fn regression_path(&self) -> Option<PathBuf> {
        let manifest = std::env::var_os("CARGO_MANIFEST_DIR")?;
        let stem = Path::new(self.source_file).file_stem()?;
        let mut p = PathBuf::from(manifest);
        p.push("proptest-regressions");
        p.push(stem);
        p.set_extension("txt");
        Some(p)
    }

    /// Seeds committed in `proptest-regressions/<file>.txt` (`cc <hex>` lines).
    fn regression_seeds(&self) -> Vec<u64> {
        let Some(path) = self.regression_path() else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                u64::from_str_radix(rest.trim(), 16).ok()
            })
            .collect()
    }

    fn case_count(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.config.cases),
            Err(_) => self.config.cases,
        }
    }

    /// Runs regression cases then `config.cases` deterministic fresh cases.
    ///
    /// The closure generates inputs from the provided RNG and returns the
    /// case outcome plus a rendering of the generated inputs for failure
    /// reports.
    pub fn run<F>(&self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
    {
        let base = fnv1a(self.test_name.as_bytes()) ^ 0x70d0_5eed_c0ff_ee01;
        let mut seeds: Vec<(u64, bool)> = self
            .regression_seeds()
            .into_iter()
            .map(|s| (s, true))
            .collect();
        for i in 0..self.case_count() {
            seeds.push((
                base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                false,
            ));
        }
        for (idx, (seed, from_regression)) in seeds.into_iter().enumerate() {
            let mut rng = TestRng::seed_from_u64(seed);
            let caught = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            let (outcome, rendered) = match caught {
                Ok(pair) => pair,
                Err(panic) => {
                    let msg = panic_message(&panic);
                    self.report_failure(
                        idx,
                        seed,
                        from_regression,
                        "<inputs unavailable: body panicked before capture>",
                        &msg,
                    );
                }
            };
            if let Err(e) = outcome {
                self.report_failure(idx, seed, from_regression, &rendered, &e.0);
            }
        }
    }

    fn report_failure(
        &self,
        idx: usize,
        seed: u64,
        from_regression: bool,
        rendered: &str,
        msg: &str,
    ) -> ! {
        let origin = if from_regression {
            "committed regression"
        } else {
            "generated"
        };
        panic!(
            "proptest case failed: {name}\n\
             case #{idx} ({origin}), seed cc {seed:016x}\n\
             inputs:\n{rendered}\
             failure: {msg}\n\
             To replay just this case first on every run, add the line\n\
             `cc {seed:016x}` to proptest-regressions/{file}.txt.",
            name = self.test_name,
            idx = idx,
            origin = origin,
            seed = seed,
            rendered = rendered,
            msg = msg,
            file = Path::new(self.source_file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("test"),
        )
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
