//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate re-implements the subset of proptest this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range / tuple / `prop::collection::vec` / [`any`] strategies, and the
//! `prop_assert!` family.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case is
//! reported with its generated inputs and its deterministic seed, which
//! can be committed to `proptest-regressions/<file>.txt` as a `cc <hex>`
//! line so the exact case replays first on every future run. Case
//! generation is fully deterministic: the seed of case *i* of a test is
//! derived from the test's module path and *i* only, so CI runs are
//! reproducible by construction. `PROPTEST_CASES` in the environment
//! overrides the configured case count (useful for quick local runs).

pub mod test_runner;

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;
        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    // i128/u128 span arithmetic: wide signed ranges must
                    // not overflow (debug panic) or wrap (out-of-range).
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128 * span) >> 64;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64_inclusive() * (hi - lo)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                let span = (self.len.end - self.len.start) as u64;
                self.len.start + (((rng.next_u64() as u128 * span as u128) >> 64) as usize)
            } else {
                self.len.start
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Returns the canonical strategy for `T` (`Any<T>`).
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Generates `Vec`s of `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prop {
    //! Namespace mirror (`prop::collection::vec`, ...).
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::strategy::{Just, Strategy};
    /// Configuration for a `proptest!` block.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current test case with a message (without panicking, so the
/// runner can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            lhs,
            rhs
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = &$lhs;
        let rhs = &$rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0u32..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    // Bare function items with no config line.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::Config::default());
            $(#[$meta])* fn $($rest)*
        }
    };
    // Closure-style immediate invocation inside an ordinary #[test]:
    // `proptest!(config, |(a in strat, ...)| { body });`
    ($cfg:expr, |($($arg:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let config: $crate::test_runner::Config = $cfg;
        let runner = $crate::test_runner::TestRunner::new(
            config,
            concat!(module_path!(), ":", line!()),
            file!(),
        );
        runner.run(|rng: &mut $crate::test_runner::TestRng| {
            $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
            let rendered = format!(
                concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                $(&$arg,)+
            );
            let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
            (outcome, rendered)
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
            );
            runner.run(|rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                let rendered = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg,)+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                (outcome, rendered)
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
