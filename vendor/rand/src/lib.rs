//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random` / `random_range`, mirroring the rand 0.9
//! naming. The generator is xoshiro256++ seeded via SplitMix64 — fully
//! deterministic for a given seed, which is exactly what the data
//! generators and tests rely on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Span arithmetic in i128/u128 so wide signed ranges
                // (e.g. i64::MIN..i64::MAX) neither overflow nor wrap.
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is negligible
                // for the span sizes used here and determinism is preserved.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// Extension methods for random value generation (rand 0.9 naming).
pub trait RngExt: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias matching rand's historical `Rng` trait name.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn wide_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            // Signed ranges wider than the type's positive half.
            let a = r.random_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&a));
            let b = r.random_range(i64::MIN..i64::MAX);
            assert!(b < i64::MAX);
            // Full-width inclusive range.
            let _ = r.random_range(0u64..=u64::MAX);
            let c = r.random_range(i64::MIN..=i64::MAX);
            let _ = c;
        }
    }
}
