#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Workload generation for the experiments (paper §8).
//!
//! * [`dist`] — the two standard preference-query benchmarks: **IND**
//!   (independent/uniform attributes) and **ANT** (anti-correlated
//!   attributes, generated in the manner of Börzsönyi et al.'s skyline
//!   benchmark: points concentrate around the hyperplane `Σxᵢ = d/2`, so
//!   tuples good in one dimension are bad in the others).
//! * [`queries`] — random query workloads: linear `f(p) = Σ aᵢ·pᵢ`,
//!   product `f(p) = Π (aᵢ + pᵢ)` and quadratic `f(p) = Σ aᵢ·pᵢ²`
//!   functions with coefficients drawn uniformly from `[0, 1]`.
//! * [`stream`] — the deterministic stream simulator: warm-up fill of `N`
//!   tuples followed by ticks of `r` arrivals each.

pub mod dist;
pub mod queries;
pub mod stream;

pub use dist::{DataDist, PointGen};
pub use queries::{FnFamily, QueryGen};
pub use stream::StreamSim;
