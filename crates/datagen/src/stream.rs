//! Stream simulator: the experimental protocol of §8.
//!
//! Every experiment first fills the window with `N` tuples (warm-up), then
//! runs `ticks` processing cycles of `r` arrivals each (with a count-based
//! window of size `N`, each cycle also expires `r` tuples — the paper's
//! "during each timestamp, r new points arrive" with `r = N/100` meaning 1%
//! turnover per cycle).

use crate::dist::{DataDist, PointGen};
use tkm_common::{Result, Timestamp};

/// Deterministic arrival-batch stream.
#[derive(Debug)]
pub struct StreamSim {
    gen: PointGen,
    rate: usize,
    tick: u64,
    buf: Vec<f64>,
}

impl StreamSim {
    /// Creates a simulator producing `rate` arrivals per tick.
    pub fn new(dims: usize, dist: DataDist, rate: usize, seed: u64) -> Result<StreamSim> {
        Ok(StreamSim {
            gen: PointGen::new(dims, dist, seed)?,
            rate,
            tick: 0,
            buf: Vec::new(),
        })
    }

    /// Arrivals per tick `r`.
    #[inline]
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Current tick number (= the timestamp of the next batch).
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.tick)
    }

    /// Produces one warm-up batch of `n` arrivals (timestamped like a
    /// regular batch, advancing the clock).
    pub fn warmup_batch(&mut self, n: usize) -> (Timestamp, &[f64]) {
        self.buf.clear();
        self.gen.fill_batch(n, &mut self.buf);
        let ts = Timestamp(self.tick);
        self.tick += 1;
        (ts, &self.buf)
    }

    /// Produces the next processing cycle's arrival batch.
    pub fn next_batch(&mut self) -> (Timestamp, &[f64]) {
        let rate = self.rate;
        self.warmup_batch(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_advance_time() {
        let mut s = StreamSim::new(2, DataDist::Ind, 5, 1).unwrap();
        let (t0, b0) = s.warmup_batch(20);
        assert_eq!(t0, Timestamp(0));
        assert_eq!(b0.len(), 40);
        let (t1, b1) = s.next_batch();
        assert_eq!(t1, Timestamp(1));
        assert_eq!(b1.len(), 10);
        assert_eq!(s.now(), Timestamp(2));
    }

    #[test]
    fn deterministic() {
        let collect = || {
            let mut s = StreamSim::new(3, DataDist::Ant, 4, 99).unwrap();
            let mut all = Vec::new();
            for _ in 0..5 {
                all.extend_from_slice(s.next_batch().1);
            }
            all
        };
        assert_eq!(collect(), collect());
    }
}
