//! Random query workloads (paper §8: "queries with scoring functions of
//! the form f(p) = Σ aᵢ·p.xᵢ where the aᵢ coefficients are randomly chosen
//! between 0 and 1", plus the non-linear families of Figure 21).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tkm_common::{Result, ScoreFn, TkmError, MAX_DIMS};

/// Scoring-function family of a generated workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FnFamily {
    /// `f(p) = Σ aᵢ·pᵢ` (the default workload).
    Linear,
    /// `f(p) = Π (aᵢ + pᵢ)` (Figure 21 a/b).
    Product,
    /// `f(p) = Σ aᵢ·pᵢ²` (Figure 21 c/d).
    Quadratic,
}

impl FnFamily {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            FnFamily::Linear => "linear",
            FnFamily::Product => "product",
            FnFamily::Quadratic => "quadratic",
        }
    }
}

/// Deterministic generator of random preference functions.
#[derive(Debug)]
pub struct QueryGen {
    dims: usize,
    family: FnFamily,
    rng: StdRng,
}

impl QueryGen {
    /// Creates a generator with a fixed seed.
    pub fn new(dims: usize, family: FnFamily, seed: u64) -> Result<QueryGen> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "QueryGen: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        Ok(QueryGen {
            dims,
            family,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Generates the next random preference function.
    pub fn next_fn(&mut self) -> ScoreFn {
        let coeffs: Vec<f64> = (0..self.dims).map(|_| self.rng.random::<f64>()).collect();
        match self.family {
            FnFamily::Linear => ScoreFn::linear(coeffs),
            FnFamily::Product => ScoreFn::product(coeffs),
            FnFamily::Quadratic => ScoreFn::quadratic(coeffs),
        }
        // lint: allow(panic, reason=generated coefficients are drawn from [0,1), which every family accepts)
        .expect("coefficients in [0,1] are always valid")
    }

    /// Generates a workload of `n` functions.
    pub fn workload(&mut self, n: usize) -> Vec<ScoreFn> {
        (0..n).map(|_| self.next_fn()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(QueryGen::new(0, FnFamily::Linear, 1).is_err());
    }

    #[test]
    fn deterministic_and_family_correct() {
        let mut a = QueryGen::new(3, FnFamily::Linear, 9).unwrap();
        let mut b = QueryGen::new(3, FnFamily::Linear, 9).unwrap();
        let fa = a.next_fn();
        let fb = b.next_fn();
        let p = [0.3, 0.5, 0.7];
        assert_eq!(fa.score(&p), fb.score(&p));
        assert!(matches!(fa, ScoreFn::Linear(_)));

        let mut c = QueryGen::new(2, FnFamily::Product, 9).unwrap();
        assert!(matches!(c.next_fn(), ScoreFn::Product(_)));
        let mut d = QueryGen::new(2, FnFamily::Quadratic, 9).unwrap();
        assert!(matches!(d.next_fn(), ScoreFn::Quadratic(_)));
    }

    #[test]
    fn workload_size() {
        let mut g = QueryGen::new(2, FnFamily::Linear, 1).unwrap();
        assert_eq!(g.workload(10).len(), 10);
    }
}
