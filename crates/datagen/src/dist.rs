//! IND and ANT point distributions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tkm_common::{Result, TkmError, MAX_DIMS};

/// Data distribution of the synthetic streams (paper §8, Figure 13).
///
/// IND and ANT are the paper's two workloads; COR completes the standard
/// skyline-benchmark triple (Börzsönyi et al.) for downstream use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataDist {
    /// Independent: every attribute uniform in `[0, 1]`.
    Ind,
    /// Anti-correlated: points cluster around the hyperplane `Σxᵢ = d/2`;
    /// a large value in one dimension implies small values elsewhere.
    Ant,
    /// Correlated: attributes move together — points cluster around the
    /// main diagonal, so a tuple good in one dimension tends to be good in
    /// all (the easiest case for top-k processing: tiny skybands).
    Cor,
}

impl DataDist {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            DataDist::Ind => "IND",
            DataDist::Ant => "ANT",
            DataDist::Cor => "COR",
        }
    }
}

/// Deterministic generator of points in the unit workspace.
#[derive(Debug)]
pub struct PointGen {
    dims: usize,
    dist: DataDist,
    rng: StdRng,
}

impl PointGen {
    /// Creates a generator with a fixed seed (streams are reproducible).
    pub fn new(dims: usize, dist: DataDist, seed: u64) -> Result<PointGen> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "PointGen: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        Ok(PointGen {
            dims,
            dist,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Writes one point into `out` (length ≥ dims).
    pub fn fill(&mut self, out: &mut [f64]) {
        match self.dist {
            DataDist::Ind => {
                for slot in out.iter_mut().take(self.dims) {
                    *slot = self.rng.random::<f64>();
                }
            }
            DataDist::Ant => self.fill_anticorrelated(out),
            DataDist::Cor => self.fill_correlated(out),
        }
    }

    /// Generates one point as a fresh vector.
    pub fn point(&mut self) -> Vec<f64> {
        let mut out = vec![0.0; self.dims];
        self.fill(&mut out);
        out
    }

    /// Appends `n` points to a flat buffer (the engines' tick format).
    pub fn fill_batch(&mut self, n: usize, out: &mut Vec<f64>) {
        let mut buf = [0.0f64; MAX_DIMS];
        out.reserve(n * self.dims);
        for _ in 0..n {
            self.fill(&mut buf);
            out.extend_from_slice(&buf[..self.dims]);
        }
    }

    /// Generates a flat batch of `n` points.
    pub fn batch(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.fill_batch(n, &mut out);
        out
    }

    /// Anti-correlated generation following the skyline-benchmark recipe
    /// (Börzsönyi et al.): draw the plane offset `s = Σxᵢ` from a normal
    /// distribution centred at `d/2`, spread it over the dimensions, then
    /// repeatedly shift mass between random dimension pairs to mix within
    /// the hyperplane, clamping to the unit cube.
    fn fill_anticorrelated(&mut self, out: &mut [f64]) {
        let d = self.dims;
        if d == 1 {
            // Anti-correlation is undefined in 1-d; fall back to uniform.
            out[0] = self.rng.random::<f64>();
            return;
        }
        // Plane offset: N(d/2, (0.05·d)²) clamped into (0, d) — tight
        // concentration around the anti-correlation hyperplane, as in the
        // original skyline benchmark generator.
        let sigma = 0.05 * d as f64;
        let mut s;
        loop {
            s = d as f64 / 2.0 + sigma * self.box_muller();
            if s > 0.0 && s < d as f64 {
                break;
            }
        }
        let start = s / d as f64;
        for slot in out.iter_mut().take(d) {
            *slot = start;
        }
        // Pairwise transfers preserve the sum while spreading points across
        // the hyperplane ∩ unit cube.
        for _ in 0..2 * d {
            let i = self.rng.random_range(0..d);
            let mut j = self.rng.random_range(0..d - 1);
            if j >= i {
                j += 1;
            }
            // Max transferable mass keeping both coordinates in [0, 1].
            let room = (out[i].min(1.0 - out[j])).max(0.0);
            let delta = self.rng.random::<f64>() * room;
            out[i] -= delta;
            out[j] += delta;
        }
        for slot in out.iter_mut().take(d) {
            *slot = slot.clamp(0.0, 1.0);
        }
    }

    /// Correlated generation: a uniform diagonal position plus small
    /// per-dimension Gaussian jitter, clamped to the unit cube.
    fn fill_correlated(&mut self, out: &mut [f64]) {
        let base: f64 = self.rng.random();
        for slot in out.iter_mut().take(self.dims) {
            *slot = (base + 0.05 * self.box_muller()).clamp(0.0, 1.0);
        }
    }

    /// Standard normal via Box–Muller (avoids a `rand_distr` dependency).
    fn box_muller(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PointGen::new(0, DataDist::Ind, 1).is_err());
        assert!(PointGen::new(MAX_DIMS + 1, DataDist::Ant, 1).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = PointGen::new(3, DataDist::Ant, 42).unwrap();
        let mut b = PointGen::new(3, DataDist::Ant, 42).unwrap();
        assert_eq!(a.batch(10), b.batch(10));
        let mut c = PointGen::new(3, DataDist::Ant, 43).unwrap();
        assert_ne!(a.batch(10), c.batch(10));
    }

    #[test]
    fn points_stay_in_unit_cube() {
        for dist in [DataDist::Ind, DataDist::Ant, DataDist::Cor] {
            for dims in [1, 2, 4, 6] {
                let mut g = PointGen::new(dims, dist, 7).unwrap();
                for _ in 0..500 {
                    let p = g.point();
                    assert!(p.iter().all(|x| (0.0..=1.0).contains(x)), "{dist:?} {p:?}");
                }
            }
        }
    }

    #[test]
    fn ind_is_roughly_uniform() {
        let mut g = PointGen::new(2, DataDist::Ind, 11).unwrap();
        let n = 4000;
        let mean: f64 = (0..n).map(|_| g.point()[0]).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    /// The defining property of ANT data: attribute sums concentrate near
    /// d/2, i.e. the sum variance is far below that of independent data.
    #[test]
    fn ant_sums_concentrate() {
        let dims = 4;
        let n = 2000;
        let sum_stats = |dist: DataDist| {
            let mut g = PointGen::new(dims, dist, 3).unwrap();
            let sums: Vec<f64> = (0..n).map(|_| g.point().iter().sum()).collect();
            let mean = sums.iter().sum::<f64>() / n as f64;
            let var = sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
            (mean, var)
        };
        let (ind_mean, ind_var) = sum_stats(DataDist::Ind);
        let (ant_mean, ant_var) = sum_stats(DataDist::Ant);
        assert!((ind_mean - 2.0).abs() < 0.1);
        assert!((ant_mean - 2.0).abs() < 0.1);
        assert!(
            ant_var < ind_var / 2.0,
            "ANT variance {ant_var} not below IND variance {ind_var}"
        );
    }

    /// And anti-correlation proper: pairwise attribute correlation < 0.
    #[test]
    fn ant_attributes_anticorrelated() {
        let mut g = PointGen::new(2, DataDist::Ant, 5).unwrap();
        let n = 3000;
        let pts: Vec<Vec<f64>> = (0..n).map(|_| g.point()).collect();
        let mx = pts.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        let my = pts.iter().map(|p| p[1]).sum::<f64>() / n as f64;
        let cov = pts.iter().map(|p| (p[0] - mx) * (p[1] - my)).sum::<f64>() / n as f64;
        assert!(cov < -0.01, "covariance {cov} is not negative");
    }

    /// COR attributes move together: strongly positive covariance, in
    /// contrast to ANT's negative one.
    #[test]
    fn cor_attributes_correlated() {
        let mut g = PointGen::new(2, DataDist::Cor, 5).unwrap();
        let n = 3000;
        let pts: Vec<Vec<f64>> = (0..n).map(|_| g.point()).collect();
        let mx = pts.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        let my = pts.iter().map(|p| p[1]).sum::<f64>() / n as f64;
        let cov = pts.iter().map(|p| (p[0] - mx) * (p[1] - my)).sum::<f64>() / n as f64;
        assert!(cov > 0.03, "covariance {cov} is not strongly positive");
    }

    #[test]
    fn batch_is_flat_and_sized() {
        let mut g = PointGen::new(3, DataDist::Ind, 1).unwrap();
        let b = g.batch(5);
        assert_eq!(b.len(), 15);
    }
}
