//! Per-dimension sorted lists (Figure 3 of the paper).
//!
//! One ordered index per attribute, each holding `(value, id)` pairs for
//! every valid tuple. TA walks a list from its preferred end (direction
//! chosen per query monotonicity); arrivals/expiries update all `d` lists —
//! the `O(r·d·log N)` per-cycle maintenance cost the paper attributes to
//! TSL.

use std::collections::BTreeSet;

use tkm_common::{Monotonicity, OrderedF64, Result, TkmError, TupleId, MAX_DIMS};

/// `d` sorted lists over the valid tuples, one per dimension.
#[derive(Debug)]
pub struct SortedLists {
    lists: Vec<BTreeSet<(OrderedF64, TupleId)>>,
}

impl SortedLists {
    /// Creates empty lists for `dims` dimensions.
    pub fn new(dims: usize) -> Result<SortedLists> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "SortedLists: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        Ok(SortedLists {
            lists: (0..dims).map(|_| BTreeSet::new()).collect(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lists.len()
    }

    /// Number of tuples indexed (same in every list).
    #[inline]
    pub fn len(&self) -> usize {
        self.lists[0].len()
    }

    /// Whether the lists are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lists[0].is_empty()
    }

    /// Indexes a tuple in all `d` lists.
    pub fn insert(&mut self, id: TupleId, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dims());
        for (list, &x) in self.lists.iter_mut().zip(coords) {
            let fresh = list.insert((OrderedF64::new(x), id));
            debug_assert!(fresh, "tuple {id} already indexed");
        }
    }

    /// Removes a tuple from all `d` lists.
    pub fn remove(&mut self, id: TupleId, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dims());
        for (list, &x) in self.lists.iter_mut().zip(coords) {
            let existed = list.remove(&(OrderedF64::new(x), id));
            debug_assert!(existed, "tuple {id} missing from sorted list");
        }
    }

    /// Iterates one dimension's list starting from the end preferred under
    /// `mono` (sorted access of TA): descending values for increasing
    /// dimensions, ascending for decreasing ones.
    pub fn sorted_access(
        &self,
        dim: usize,
        mono: Monotonicity,
    ) -> Box<dyn Iterator<Item = (f64, TupleId)> + '_> {
        let list = &self.lists[dim];
        match mono {
            Monotonicity::Increasing => Box::new(list.iter().rev().map(|(v, id)| (v.get(), *id))),
            Monotonicity::Decreasing => Box::new(list.iter().map(|(v, id)| (v.get(), *id))),
        }
    }

    /// Deep size estimate in bytes. B-tree nodes cost roughly the entry
    /// size plus per-entry tree overhead.
    pub fn space_bytes(&self) -> usize {
        const BTREE_PER_ENTRY_OVERHEAD: usize = 16;
        let entry = std::mem::size_of::<(OrderedF64, TupleId)>() + BTREE_PER_ENTRY_OVERHEAD;
        std::mem::size_of::<Self>() + self.lists.iter().map(|l| l.len() * entry).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dims() {
        assert!(SortedLists::new(0).is_err());
        assert!(SortedLists::new(MAX_DIMS + 1).is_err());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut l = SortedLists::new(2).unwrap();
        l.insert(TupleId(0), &[0.3, 0.9]);
        l.insert(TupleId(1), &[0.7, 0.1]);
        assert_eq!(l.len(), 2);
        l.remove(TupleId(0), &[0.3, 0.9]);
        assert_eq!(l.len(), 1);
        let remaining: Vec<(f64, TupleId)> = l.sorted_access(0, Monotonicity::Increasing).collect();
        assert_eq!(remaining, vec![(0.7, TupleId(1))]);
    }

    #[test]
    fn sorted_access_directions() {
        let mut l = SortedLists::new(1).unwrap();
        l.insert(TupleId(0), &[0.5]);
        l.insert(TupleId(1), &[0.2]);
        l.insert(TupleId(2), &[0.8]);
        let desc: Vec<f64> = l
            .sorted_access(0, Monotonicity::Increasing)
            .map(|(v, _)| v)
            .collect();
        assert_eq!(desc, vec![0.8, 0.5, 0.2]);
        let asc: Vec<f64> = l
            .sorted_access(0, Monotonicity::Decreasing)
            .map(|(v, _)| v)
            .collect();
        assert_eq!(asc, vec![0.2, 0.5, 0.8]);
    }

    #[test]
    fn duplicate_values_disambiguated_by_id() {
        let mut l = SortedLists::new(1).unwrap();
        l.insert(TupleId(0), &[0.5]);
        l.insert(TupleId(1), &[0.5]);
        assert_eq!(l.len(), 2);
        l.remove(TupleId(0), &[0.5]);
        let rest: Vec<TupleId> = l
            .sorted_access(0, Monotonicity::Increasing)
            .map(|(_, id)| id)
            .collect();
        assert_eq!(rest, vec![TupleId(1)]);
    }
}
