//! The complete TSL monitoring engine (paper Figure 3).
//!
//! Combines the valid-tuple window, the `d` per-dimension sorted lists, one
//! [`TopView`] per query, TA-based (re)computation and a `kmax` selection
//! policy into a continuous top-k monitor with the same tick interface as
//! TMA/SMA.

use std::collections::BTreeMap;

use crate::lists::SortedLists;
use crate::ta::ta_search;
use crate::view::TopView;
use tkm_common::{QueryId, Result, ScoreFn, Scored, Timestamp, TkmError};
use tkm_window::{Window, WindowSpec};

/// How `kmax` is chosen for a query with result size `k` (paper §8: the
/// authors fine-tune static values and report that this beats the dynamic
/// adjustment of the original Yi et al. paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KmaxPolicy {
    /// The paper's fine-tuned table: k ∈ {1, 5, 10, 20, 50, 100} →
    /// kmax ∈ {4, 10, 20, 30, 70, 120}; other `k` interpolate as
    /// `k + max(3, k/2)`.
    Tuned,
    /// The same `kmax` for every query (clamped to ≥ k).
    Fixed(usize),
    /// Yi-et-al-style dynamic adjustment: grow `kmax` while refills come
    /// frequently, shrink it when they are rare.
    Dynamic,
}

impl KmaxPolicy {
    /// Initial `kmax` for a query with result size `k`.
    pub fn initial_kmax(self, k: usize) -> usize {
        match self {
            KmaxPolicy::Tuned | KmaxPolicy::Dynamic => tuned_kmax(k),
            KmaxPolicy::Fixed(m) => m.max(k),
        }
    }
}

/// The paper's fine-tuned `kmax` values — shared with the skyband crate so
/// TMA's refill band and the TSL views agree on the table.
pub use tkm_skyband::tuned_kmax;

/// Cumulative counters of a [`TslMonitor`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TslStats {
    /// Processing cycles executed.
    pub ticks: u64,
    /// TA invocations (initial computations + refills).
    pub ta_calls: u64,
    /// View refills triggered by `k′ < k`.
    pub refills: u64,
    /// Sorted-list entries consumed by TA.
    pub sorted_accesses: u64,
    /// Random accesses performed by TA.
    pub random_accesses: u64,
    /// Arrival-score evaluations (`r · Q` per cycle).
    pub score_evaluations: u64,
    /// Arrivals that entered some view.
    pub view_insertions: u64,
}

#[derive(Debug)]
struct QState {
    f: ScoreFn,
    view: TopView,
    last_refill_tick: u64,
}

/// Continuous top-k monitor using the Threshold Sorted List approach.
#[derive(Debug)]
pub struct TslMonitor {
    window: Window,
    lists: SortedLists,
    queries: BTreeMap<QueryId, QState>,
    policy: KmaxPolicy,
    stats: TslStats,
    tick_count: u64,
}

impl TslMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, spec: WindowSpec, policy: KmaxPolicy) -> Result<TslMonitor> {
        Ok(TslMonitor {
            window: Window::new(dims, spec)?,
            lists: SortedLists::new(dims)?,
            queries: BTreeMap::new(),
            policy,
            stats: TslStats::default(),
            tick_count: 0,
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Registers a continuous top-k query. The initial result is computed
    /// immediately with TA over the current window contents.
    pub fn register_query(&mut self, id: QueryId, f: ScoreFn, k: usize) -> Result<()> {
        if f.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: f.dims(),
            });
        }
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "register_query: k must be positive".into(),
            ));
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let kmax = self.policy.initial_kmax(k);
        let mut view = TopView::new(k, kmax)?;
        let (initial, ta) = ta_search(&self.lists, &self.window, &f, kmax);
        self.stats.ta_calls += 1;
        self.stats.sorted_accesses += ta.sorted_accesses;
        self.stats.random_accesses += ta.random_accesses;
        view.refill(&initial);
        self.queries.insert(
            id,
            QState {
                f,
                view,
                last_refill_tick: self.tick_count,
            },
        );
        Ok(())
    }

    /// Removes a query.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        self.queries
            .remove(&id)
            .map(|_| ())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// The current top-k result of a query (best first; shorter than `k`
    /// only when fewer than `k` tuples are valid).
    pub fn result(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(&id)
            .map(|q| q.view.result())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Current view size `k′` of a query (Table 2 reports its average).
    pub fn view_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(&id)
            .map(|q| q.view.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// One-shot (snapshot) top-k over the current window contents via a
    /// fresh TA run (no view is materialised).
    pub fn snapshot(&self, f: &ScoreFn, k: usize) -> Result<Vec<Scored>> {
        if f.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: f.dims(),
            });
        }
        let (res, _) = ta_search(&self.lists, &self.window, f, k);
        Ok(res)
    }

    /// Mean view size across queries.
    pub fn avg_view_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.values().map(|q| q.view.len()).sum::<usize>() as f64
            / self.queries.len() as f64
    }

    /// Executes one processing cycle: `arrivals` is a flat coordinate
    /// buffer (`len` a multiple of `dims`, one tuple per `dims` chunk),
    /// `now` drives time-based expiry.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        if !arrivals.len().is_multiple_of(dims) {
            return Err(TkmError::InvalidParameter(format!(
                "tick: arrival buffer length {} is not a multiple of dims {dims}",
                arrivals.len()
            )));
        }
        self.tick_count += 1;
        self.stats.ticks += 1;

        // Pins: index each arrival and probe every view (the r·Q cost).
        for coords in arrivals.chunks_exact(dims) {
            if let Some(bad) = coords.iter().find(|x| !(0.0..=1.0).contains(*x)) {
                return Err(TkmError::InvalidParameter(format!(
                    "tick: coordinate {bad} outside the unit workspace"
                )));
            }
            let id = self.window.insert(coords, now)?;
            self.lists.insert(id, coords);
            for q in self.queries.values_mut() {
                self.stats.score_evaluations += 1;
                let cand = Scored::new(q.f.score(coords), id);
                if q.view.on_arrival(cand) {
                    self.stats.view_insertions += 1;
                }
            }
        }

        // Pdel: unindex expiries and shrink affected views.
        let Self {
            window,
            lists,
            queries,
            ..
        } = self;
        window.drain_expired(now, |id, coords| {
            lists.remove(id, coords);
            for q in queries.values_mut() {
                q.view.on_expiry(id);
            }
        });

        // Refill views that dropped below k entries.
        let tick = self.tick_count;
        for q in self.queries.values_mut() {
            if !q.view.needs_refill() {
                continue;
            }
            if self.policy == KmaxPolicy::Dynamic {
                let gap = tick - q.last_refill_tick;
                let kmax = q.view.kmax();
                if gap < 5 {
                    q.view
                        .set_kmax((kmax + kmax / 2 + 1).min(10 * q.view.k() + 20));
                } else if gap > 50 {
                    q.view.set_kmax((kmax * 3 / 4).max(q.view.k() + 1));
                }
            }
            let (fresh, ta) = ta_search(&self.lists, &self.window, &q.f, q.view.kmax());
            self.stats.ta_calls += 1;
            self.stats.refills += 1;
            self.stats.sorted_accesses += ta.sorted_accesses;
            self.stats.random_accesses += ta.random_accesses;
            q.view.refill(&fresh);
            q.last_refill_tick = tick;
        }
        Ok(())
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> TslStats {
        self.stats
    }

    /// Deep size estimate in bytes: window + d sorted lists + views.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.lists.space_bytes()
            + self
                .queries
                .values()
                .map(|q| q.view.space_bytes() + std::mem::size_of::<QState>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_topk(window: &Window, f: &ScoreFn, k: usize) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .map(|(id, c)| Scored::new(f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    /// Deterministic pseudo-random coordinate stream (no rand dependency in
    /// unit tests; integration tests use tkm-datagen).
    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    #[test]
    fn registration_validation() {
        let mut m = TslMonitor::new(2, WindowSpec::Count(10), KmaxPolicy::Tuned).unwrap();
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        assert!(m
            .register_query(QueryId(0), ScoreFn::linear(vec![1.0]).unwrap(), 2)
            .is_err());
        assert!(m.register_query(QueryId(0), f.clone(), 0).is_err());
        m.register_query(QueryId(0), f.clone(), 2).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), f, 2),
            Err(TkmError::DuplicateQuery(_))
        ));
        assert!(m.remove_query(QueryId(1)).is_err());
        m.remove_query(QueryId(0)).unwrap();
    }

    #[test]
    fn tracks_brute_force_over_stream() {
        let mut m = TslMonitor::new(2, WindowSpec::Count(60), KmaxPolicy::Tuned).unwrap();
        let f1 = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let f2 = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        m.register_query(QueryId(1), f1.clone(), 3).unwrap();
        m.register_query(QueryId(2), f2.clone(), 5).unwrap();
        for tick in 0..40u64 {
            let arrivals = lcg_stream(tick + 1, 10, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(
                m.result(QueryId(1)).unwrap(),
                &brute_topk(m.window(), &f1, 3)[..]
            );
            assert_eq!(
                m.result(QueryId(2)).unwrap(),
                &brute_topk(m.window(), &f2, 5)[..]
            );
        }
        assert!(m.stats().ticks == 40);
        assert!(m.stats().score_evaluations == 40 * 10 * 2);
    }

    #[test]
    fn time_window_variant() {
        let mut m = TslMonitor::new(2, WindowSpec::Time(4), KmaxPolicy::Fixed(8)).unwrap();
        let f = ScoreFn::product(vec![0.2, 0.2]).unwrap();
        m.register_query(QueryId(7), f.clone(), 2).unwrap();
        for tick in 0..20u64 {
            let arrivals = lcg_stream(tick + 99, 6, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(
                m.result(QueryId(7)).unwrap(),
                &brute_topk(m.window(), &f, 2)[..]
            );
        }
    }

    #[test]
    fn dynamic_policy_still_exact() {
        let mut m = TslMonitor::new(2, WindowSpec::Count(30), KmaxPolicy::Dynamic).unwrap();
        let f = ScoreFn::quadratic(vec![1.0, 0.5]).unwrap();
        m.register_query(QueryId(3), f.clone(), 4).unwrap();
        for tick in 0..60u64 {
            let arrivals = lcg_stream(tick + 7, 5, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(
                m.result(QueryId(3)).unwrap(),
                &brute_topk(m.window(), &f, 4)[..]
            );
        }
        assert!(m.stats().refills > 0, "dynamic policy exercised refills");
    }

    #[test]
    fn rejects_out_of_workspace_coordinates() {
        let mut m = TslMonitor::new(2, WindowSpec::Count(10), KmaxPolicy::Tuned).unwrap();
        assert!(m.tick(Timestamp(0), &[0.5, 1.5]).is_err());
        assert!(m.tick(Timestamp(0), &[0.5]).is_err(), "ragged buffer");
    }

    #[test]
    fn window_smaller_than_k() {
        let mut m = TslMonitor::new(1, WindowSpec::Count(100), KmaxPolicy::Tuned).unwrap();
        let f = ScoreFn::linear(vec![1.0]).unwrap();
        m.register_query(QueryId(0), f, 5).unwrap();
        m.tick(Timestamp(0), &[0.3, 0.9]).unwrap();
        let res = m.result(QueryId(0)).unwrap();
        assert_eq!(res.len(), 2, "reports what exists");
        assert_eq!(res[0].score.get(), 0.9);
    }

    #[test]
    fn tuned_table_matches_paper() {
        for (k, m) in [(1, 4), (5, 10), (10, 20), (20, 30), (50, 70), (100, 120)] {
            assert_eq!(tuned_kmax(k), m);
        }
        assert!(tuned_kmax(7) > 7);
    }
}
