#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! The **Threshold Sorted List** (TSL) baseline of the paper (§3.2).
//!
//! TSL is the benchmark competitor assembled from prior work: the initial
//! result of a query is computed with Fagin's **Threshold Algorithm** (TA)
//! over `d` per-dimension sorted lists, and maintained with the
//! materialised-view technique of Yi et al. — each query keeps a *top-k′*
//! view with `k ≤ k′ ≤ kmax` entries; arrivals that beat the view's worst
//! member enter it (evicting the worst when `k′ = kmax`), expiries shrink
//! it, and when `k′` drops below `k` the view is refilled to `kmax` entries
//! by running TA again.
//!
//! Per processing cycle TSL therefore pays: `2·r·d` sorted-list updates plus
//! `r·Q` score evaluations (every arrival is scored against every view) —
//! the costs that the paper's grid-based TMA/SMA avoid.

pub mod lists;
pub mod monitor;
pub mod ta;
pub mod view;

pub use lists::SortedLists;
pub use monitor::{tuned_kmax, KmaxPolicy, TslMonitor, TslStats};
pub use ta::ta_search;
pub use view::TopView;
