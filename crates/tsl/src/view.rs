//! Materialised top-k′ views (Yi et al., used by TSL maintenance).
//!
//! Instead of exactly `k` results, a view holds `k′` entries with
//! `k ≤ k′ ≤ kmax`. Arrivals better than the current worst member are
//! inserted (the worst one leaves when the view is full at `kmax`);
//! expiries of members shrink the view; once `k′` drops below `k` the
//! maintenance layer refills it to `kmax` entries with a fresh TA run.
//! The slack `kmax − k` is what spaces the expensive refills apart.

use tkm_common::{Result, Scored, TkmError, TupleId};

/// One query's materialised view of its best `k′` tuples.
#[derive(Debug)]
pub struct TopView {
    k: usize,
    kmax: usize,
    /// Entries in descending order, `len() = k′`.
    entries: Vec<Scored>,
}

impl TopView {
    /// Creates an empty view; requires `1 ≤ k ≤ kmax`.
    pub fn new(k: usize, kmax: usize) -> Result<TopView> {
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "TopView: k must be positive".into(),
            ));
        }
        if kmax < k {
            return Err(TkmError::InvalidParameter(format!(
                "TopView: kmax {kmax} < k {k}"
            )));
        }
        Ok(TopView {
            k,
            kmax,
            entries: Vec::with_capacity(kmax + 1),
        })
    }

    /// Result size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// View capacity `kmax`.
    #[inline]
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// Adjusts `kmax` (dynamic policy); never below `k`. Trims the view if
    /// it shrinks.
    pub fn set_kmax(&mut self, kmax: usize) {
        self.kmax = kmax.max(self.k);
        if self.entries.len() > self.kmax {
            self.entries.truncate(self.kmax);
        }
    }

    /// Current number of entries `k′`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All `k′` entries, best first.
    #[inline]
    pub fn entries(&self) -> &[Scored] {
        &self.entries
    }

    /// The reported result: the first `min(k, k′)` entries.
    #[inline]
    pub fn result(&self) -> &[Scored] {
        &self.entries[..self.k.min(self.entries.len())]
    }

    /// Whether the view must be refilled (`k′ < k`).
    #[inline]
    pub fn needs_refill(&self) -> bool {
        self.entries.len() < self.k
    }

    /// Handles an arriving tuple: inserted iff it outranks the current
    /// worst view member (or the view is not yet full at `kmax`); when full,
    /// the worst member is displaced. Returns `true` when the view changed.
    pub fn on_arrival(&mut self, s: Scored) -> bool {
        if self.entries.len() >= self.kmax {
            // Full view (kmax >= 1, so `last` exists): displace the worst.
            let Some(&worst) = self.entries.last() else {
                self.entries.push(s);
                return true;
            };
            if s <= worst {
                return false;
            }
            let pos = self.entries.partition_point(|e| *e > s);
            self.entries.insert(pos, s);
            self.entries.pop();
            true
        } else {
            // Below capacity the view can only have shrunk through
            // deletions from a full top-k′ state (or be freshly refilled to
            // kmax). In both cases it is exactly the top-k′ of the window,
            // so an arrival below the worst member still belongs to the new
            // top-(k′+1)… but Yi et al. deliberately do NOT grow the view
            // in that case: growing would re-admit arbitrary low scores and
            // the view would degenerate to the whole window. Matching [30],
            // only arrivals beating the k′-th member enter. The exception
            // is a view below `k` entries, which is refilled from scratch
            // by the caller anyway.
            let worst = match self.entries.last() {
                Some(w) => *w,
                None => {
                    self.entries.push(s);
                    return true;
                }
            };
            if s <= worst {
                return false;
            }
            let pos = self.entries.partition_point(|e| *e > s);
            self.entries.insert(pos, s);
            true
        }
    }

    /// Handles an expiring tuple: removed iff it is a view member.
    pub fn on_expiry(&mut self, id: TupleId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Replaces the contents with a fresh TA result (best first, at most
    /// `kmax` entries).
    pub fn refill(&mut self, entries: &[Scored]) {
        debug_assert!(entries.len() <= self.kmax);
        debug_assert!(entries.windows(2).all(|w| w[0] > w[1]));
        self.entries.clear();
        self.entries.extend_from_slice(entries);
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<Scored>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    /// Reference semantics (Yi et al.): as long as no refill is pending,
    /// the view is exactly the top-k′ of the valid tuples, where k′ only
    /// changes through arrivals above the worst member (+1, capped at
    /// kmax) and member expiries (−1).
    #[test]
    fn view_is_exact_topk_prime() {
        proptest!(ProptestConfig::with_cases(128), |(
            k in 1usize..5,
            slack in 0usize..6,
            scores in prop::collection::vec(0u32..40, 1..80),
            window in 3usize..25,
        )| {
            let kmax = k + slack;
            let mut view = TopView::new(k, kmax).unwrap();
            let mut valid: Vec<Scored> = Vec::new();
            // Initial refill over an empty window.
            view.refill(&[]);
            for (i, sc) in scores.iter().enumerate() {
                let cand = Scored::new(*sc as f64 / 40.0, TupleId(i as u64));
                valid.push(cand);
                view.on_arrival(cand);
                if valid.len() > window {
                    let victim = valid.remove(0);
                    view.on_expiry(victim.id);
                }
                if view.needs_refill() {
                    // Maintenance layer: refill with the true top-kmax.
                    let mut all = valid.clone();
                    all.sort_by(|a, b| b.cmp(a));
                    all.truncate(kmax);
                    view.refill(&all);
                }
                // Invariant: the view is the exact top-k′ of the window.
                let kp = view.len();
                let mut want = valid.clone();
                want.sort_by(|a, b| b.cmp(a));
                want.truncate(kp);
                prop_assert_eq!(view.entries(), &want[..]);
                // And k′ stays within bounds after maintenance.
                prop_assert!(kp >= k.min(valid.len()));
                prop_assert!(kp <= kmax);
            }
        });
    }

    #[test]
    fn constructor_validation() {
        assert!(TopView::new(0, 5).is_err());
        assert!(TopView::new(5, 4).is_err());
        assert!(TopView::new(5, 5).is_ok());
    }

    #[test]
    fn arrival_displaces_worst_when_full() {
        let mut v = TopView::new(2, 3).unwrap();
        v.refill(&[s(0.9, 0), s(0.8, 1), s(0.7, 2)]);
        // Below the worst: ignored.
        assert!(!v.on_arrival(s(0.5, 3)));
        assert_eq!(v.len(), 3);
        // Beats the worst: inserted, worst leaves, k′ stays at kmax.
        assert!(v.on_arrival(s(0.85, 4)));
        let ids: Vec<u64> = v.entries().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![0, 4, 1]);
        assert_eq!(v.result().len(), 2);
    }

    #[test]
    fn expiry_shrinks_until_refill_needed() {
        let mut v = TopView::new(2, 4).unwrap();
        v.refill(&[s(0.9, 0), s(0.8, 1), s(0.7, 2), s(0.6, 3)]);
        assert!(!v.on_expiry(TupleId(9)), "non-member expiry ignored");
        assert!(v.on_expiry(TupleId(0)));
        assert!(v.on_expiry(TupleId(1)));
        assert!(!v.needs_refill(), "k′ = 2 = k still suffices");
        assert!(v.on_expiry(TupleId(2)));
        assert!(v.needs_refill(), "k′ = 1 < k = 2");
        v.refill(&[s(0.5, 4), s(0.4, 5), s(0.3, 6)]);
        assert_eq!(v.len(), 3);
        assert!(!v.needs_refill());
    }

    #[test]
    fn arrivals_after_shrink_only_enter_above_worst() {
        let mut v = TopView::new(1, 3).unwrap();
        v.refill(&[s(0.9, 0), s(0.8, 1), s(0.7, 2)]);
        v.on_expiry(TupleId(2)); // k′ = 2
                                 // Arrival below the (new) worst does not regrow the view.
        assert!(!v.on_arrival(s(0.1, 3)));
        assert_eq!(v.len(), 2);
        // Arrival above the worst enters and k′ grows back toward kmax.
        assert!(v.on_arrival(s(0.85, 4)));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn tie_arrival_is_not_inserted() {
        // An arrival tying the worst member is *older-loses*: the newer
        // tuple ranks below the equal-score member, so it stays out.
        let mut v = TopView::new(1, 2).unwrap();
        v.refill(&[s(0.9, 0), s(0.5, 1)]);
        assert!(!v.on_arrival(s(0.5, 2)));
    }

    #[test]
    fn dynamic_kmax_adjustment() {
        let mut v = TopView::new(2, 6).unwrap();
        v.refill(&[s(0.9, 0), s(0.8, 1), s(0.7, 2), s(0.6, 3), s(0.5, 4)]);
        v.set_kmax(3);
        assert_eq!(v.len(), 3, "shrinking kmax trims the view");
        v.set_kmax(1);
        assert_eq!(v.kmax(), 2, "kmax never drops below k");
    }
}
