//! Fagin's Threshold Algorithm (TA) over the per-dimension sorted lists.
//!
//! TA performs *sorted accesses* on the `d` lists in round-robin order; for
//! every newly encountered tuple it performs a *random access* (here: an
//! O(1) window lookup) to fetch the remaining attributes and compute the
//! full score. After each round the threshold `τ` — the score of the
//! hypothetical tuple assembled from the last value seen in every list — is
//! an upper bound on the score of every unseen tuple, so the search stops
//! once the current `kmax`-th best score is at least `τ`.
//!
//! To stay exact under score ties (which the workspace comparator breaks by
//! age), termination requires the `kmax`-th best score to *strictly* exceed
//! `τ`, or the lists to be exhausted; an unseen tuple tying `τ` could
//! otherwise outrank a tied result member by age.

use std::collections::BTreeSet;

use crate::lists::SortedLists;
use tkm_common::{FxHashSet, ScoreFn, Scored, TupleId, MAX_DIMS};
use tkm_window::Window;

/// Cumulative access counters of one TA invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaAccessStats {
    /// Entries consumed from the sorted lists.
    pub sorted_accesses: u64,
    /// Random (by-id) lookups for full score computation.
    pub random_accesses: u64,
}

/// Runs TA, returning the best `kmax` tuples (best first) together with the
/// access counts.
///
/// `window` provides random access by tuple id; `lists` must index exactly
/// the window's valid tuples.
///
/// ```
/// use tkm_common::{ScoreFn, Timestamp};
/// use tkm_tsl::{ta_search, SortedLists};
/// use tkm_window::{Window, WindowSpec};
///
/// let mut window = Window::new(2, WindowSpec::Count(8)).unwrap();
/// let mut lists = SortedLists::new(2).unwrap();
/// for p in [[0.9, 0.1], [0.3, 0.8], [0.7, 0.7]] {
///     let id = window.insert(&p, Timestamp(0)).unwrap();
///     lists.insert(id, &p);
/// }
/// let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
/// let (top, stats) = ta_search(&lists, &window, &f, 1);
/// assert_eq!(top[0].score.get(), 1.4);
/// assert!(stats.random_accesses <= 3);
/// ```
pub fn ta_search(
    lists: &SortedLists,
    window: &Window,
    f: &ScoreFn,
    kmax: usize,
) -> (Vec<Scored>, TaAccessStats) {
    debug_assert_eq!(lists.dims(), f.dims());
    let dims = lists.dims();
    let mut stats = TaAccessStats::default();
    if kmax == 0 || lists.is_empty() {
        return (Vec::new(), stats);
    }

    let mut cursors: Vec<_> = (0..dims)
        .map(|dim| lists.sorted_access(dim, f.monotonicity(dim)))
        .collect();
    let mut seen: FxHashSet<TupleId> = FxHashSet::default();
    // Result accumulator: ascending BTreeSet, worst candidate first.
    let mut best: BTreeSet<Scored> = BTreeSet::new();
    let mut last = [0.0f64; MAX_DIMS];

    'rounds: loop {
        for (dim, cursor) in cursors.iter_mut().enumerate() {
            let Some((value, id)) = cursor.next() else {
                // Lists all have equal length, so one ending means every
                // tuple has been seen through some list.
                break 'rounds;
            };
            stats.sorted_accesses += 1;
            last[dim] = value;
            if seen.insert(id) {
                stats.random_accesses += 1;
                let Some(coords) = window.coords(id) else {
                    // Sorted lists only index valid tuples; a miss here
                    // means a stale list, which debug builds surface.
                    debug_assert!(false, "sorted list entry {id:?} not in window");
                    continue;
                };
                let cand = Scored::new(f.score(coords), id);
                if best.len() < kmax {
                    best.insert(cand);
                } else if best.first().is_some_and(|worst| cand > *worst) {
                    best.insert(cand);
                    best.pop_first();
                }
            }
        }
        // End of a round: check the stopping condition.
        if best.len() >= kmax {
            let threshold = f.score(&last[..dims]);
            if let Some(worst) = best.first() {
                if worst.score.get() > threshold {
                    break;
                }
            }
        }
    }
    let mut out: Vec<Scored> = best.into_iter().collect();
    out.reverse(); // best first
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::Timestamp;
    use tkm_window::WindowSpec;

    /// Builds a window + lists over the given points.
    fn setup(points: &[[f64; 2]]) -> (Window, SortedLists) {
        let mut w = Window::new(2, WindowSpec::Count(points.len().max(1))).unwrap();
        let mut l = SortedLists::new(2).unwrap();
        for p in points {
            let id = w.insert(p, Timestamp(0)).unwrap();
            l.insert(id, p);
        }
        (w, l)
    }

    fn naive_topk(points: &[[f64; 2]], f: &ScoreFn, k: usize) -> Vec<Scored> {
        let mut all: Vec<Scored> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Scored::new(f.score(p), TupleId(i as u64)))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    #[test]
    fn empty_inputs() {
        let (w, l) = setup(&[]);
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (res, stats) = ta_search(&l, &w, &f, 5);
        assert!(res.is_empty());
        assert_eq!(stats.sorted_accesses, 0);
        let (w, l) = setup(&[[0.5, 0.5]]);
        let (res, _) = ta_search(&l, &w, &f, 0);
        assert!(res.is_empty());
    }

    #[test]
    fn finds_exact_topk() {
        let points = [[0.9, 0.1], [0.2, 0.8], [0.5, 0.5], [0.95, 0.9], [0.1, 0.2]];
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let (w, l) = setup(&points);
        let (res, stats) = ta_search(&l, &w, &f, 3);
        assert_eq!(res, naive_topk(&points, &f, 3));
        assert!(stats.random_accesses <= points.len() as u64);
    }

    #[test]
    fn early_termination_on_skewed_data() {
        // One dominant point and many poor ones: TA must stop well before
        // scanning everything.
        let mut points = vec![[0.99, 0.99]];
        for i in 0..200 {
            let v = 0.3 * (i as f64 / 200.0);
            points.push([v, v]);
        }
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (w, l) = setup(&points);
        let (res, stats) = ta_search(&l, &w, &f, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, TupleId(0));
        assert!(
            stats.sorted_accesses < 50,
            "TA scanned {} entries on trivially skewed data",
            stats.sorted_accesses
        );
    }

    #[test]
    fn mixed_monotonicity() {
        // f = x1 - x2: best tuples have large x1, small x2.
        let points = [[0.9, 0.8], [0.6, 0.1], [0.3, 0.05], [0.99, 0.95]];
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        let (w, l) = setup(&points);
        let (res, _) = ta_search(&l, &w, &f, 2);
        assert_eq!(res, naive_topk(&points, &f, 2));
        assert_eq!(res[0].id, TupleId(1), "0.6 - 0.1 = 0.5 is the maximum");
    }

    #[test]
    fn kmax_larger_than_population() {
        let points = [[0.1, 0.2], [0.3, 0.4]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (w, l) = setup(&points);
        let (res, _) = ta_search(&l, &w, &f, 10);
        assert_eq!(res.len(), 2, "returns every tuple when kmax > N");
        assert_eq!(res, naive_topk(&points, &f, 2));
    }

    #[test]
    fn ties_resolved_by_age() {
        // Three tuples with identical scores: the two oldest win top-2.
        let points = [[0.5, 0.5], [0.6, 0.4], [0.4, 0.6], [0.1, 0.1]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (w, l) = setup(&points);
        let (res, _) = ta_search(&l, &w, &f, 2);
        assert_eq!(res, naive_topk(&points, &f, 2));
        assert_eq!(res[0].id, TupleId(0));
        assert_eq!(res[1].id, TupleId(1));
    }

    #[test]
    fn product_function() {
        let points = [[0.9, 0.2], [0.5, 0.5], [0.3, 0.9], [0.7, 0.6]];
        let f = ScoreFn::product(vec![0.1, 0.4]).unwrap();
        let (w, l) = setup(&points);
        let (res, _) = ta_search(&l, &w, &f, 2);
        assert_eq!(res, naive_topk(&points, &f, 2));
    }
}
