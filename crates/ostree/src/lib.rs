#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Order-statistic balanced tree.
//!
//! The SMA algorithm (paper §5) initialises the dominance counters of a
//! fresh skyband by inserting arrival times into "a balanced tree BT sorted
//! in descending order" whose internal nodes store subtree cardinalities, so
//! that the number of already-inserted elements preceding a key — i.e. the
//! dominance counter — is answered in `O(log k)`. This crate provides that
//! structure: an AVL tree augmented with subtree sizes, supporting insert,
//! delete, rank queries (`count_greater` / `count_less`) and selection of
//! the i-th order statistic.
//!
//! Keys must be unique (tuple ids are); inserting a duplicate is a no-op
//! reported through the return value.

use std::cmp::Ordering;

struct Node<K> {
    key: K,
    left: Option<Box<Node<K>>>,
    right: Option<Box<Node<K>>>,
    /// Height of the subtree rooted here (leaf = 1).
    height: u32,
    /// Number of keys in the subtree rooted here (including self).
    size: usize,
}

impl<K> Node<K> {
    fn new(key: K) -> Box<Node<K>> {
        Box::new(Node {
            key,
            left: None,
            right: None,
            height: 1,
            size: 1,
        })
    }
}

#[inline]
fn height<K>(n: &Option<Box<Node<K>>>) -> u32 {
    n.as_ref().map_or(0, |n| n.height)
}

#[inline]
fn size<K>(n: &Option<Box<Node<K>>>) -> usize {
    n.as_ref().map_or(0, |n| n.size)
}

#[inline]
fn update<K>(n: &mut Box<Node<K>>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
    n.size = 1 + size(&n.left) + size(&n.right);
}

#[inline]
fn balance_factor<K>(n: &Node<K>) -> i32 {
    height(&n.left) as i32 - height(&n.right) as i32
}

fn rotate_right<K>(mut n: Box<Node<K>>) -> Box<Node<K>> {
    // lint: allow(panic, reason=AVL rotation precondition; callers check the balance factor first)
    let mut left = n.left.take().expect("rotate_right requires a left child");
    n.left = left.right.take();
    update(&mut n);
    left.right = Some(n);
    update(&mut left);
    left
}

fn rotate_left<K>(mut n: Box<Node<K>>) -> Box<Node<K>> {
    // lint: allow(panic, reason=AVL rotation precondition; callers check the balance factor first)
    let mut right = n.right.take().expect("rotate_left requires a right child");
    n.right = right.left.take();
    update(&mut n);
    right.left = Some(n);
    update(&mut right);
    right
}

fn rebalance<K>(mut n: Box<Node<K>>) -> Box<Node<K>> {
    update(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        // lint: allow(panic, reason=AVL rotation precondition follows from the balance-factor arithmetic)
        if balance_factor(n.left.as_ref().expect("bf > 1 implies left child")) < 0 {
            // lint: allow(panic, reason=AVL rotation precondition checked two lines above)
            n.left = Some(rotate_left(n.left.take().expect("checked above")));
        }
        rotate_right(n)
    } else if bf < -1 {
        // lint: allow(panic, reason=AVL rotation precondition follows from the balance-factor arithmetic)
        if balance_factor(n.right.as_ref().expect("bf < -1 implies right child")) > 0 {
            // lint: allow(panic, reason=AVL rotation precondition checked two lines above)
            n.right = Some(rotate_right(n.right.take().expect("checked above")));
        }
        rotate_left(n)
    } else {
        n
    }
}

fn insert_node<K: Ord>(node: Option<Box<Node<K>>>, key: K, inserted: &mut bool) -> Box<Node<K>> {
    let Some(mut n) = node else {
        *inserted = true;
        return Node::new(key);
    };
    match key.cmp(&n.key) {
        Ordering::Less => n.left = Some(insert_node(n.left.take(), key, inserted)),
        Ordering::Greater => n.right = Some(insert_node(n.right.take(), key, inserted)),
        Ordering::Equal => {
            *inserted = false;
            return n;
        }
    }
    rebalance(n)
}

/// Detaches the minimum node of the subtree, returning (rest, min).
fn take_min<K>(mut n: Box<Node<K>>) -> (Option<Box<Node<K>>>, Box<Node<K>>) {
    if let Some(left) = n.left.take() {
        let (rest, min) = take_min(left);
        n.left = rest;
        (Some(rebalance(n)), min)
    } else {
        let right = n.right.take();
        (right, n)
    }
}

fn remove_node<K: Ord>(
    node: Option<Box<Node<K>>>,
    key: &K,
    removed: &mut bool,
) -> Option<Box<Node<K>>> {
    let mut n = node?;
    match key.cmp(&n.key) {
        Ordering::Less => n.left = remove_node(n.left.take(), key, removed),
        Ordering::Greater => n.right = remove_node(n.right.take(), key, removed),
        Ordering::Equal => {
            *removed = true;
            return match (n.left.take(), n.right.take()) {
                (None, r) => r,
                (l, None) => l,
                (l, Some(r)) => {
                    let (rest, mut successor) = take_min(r);
                    successor.left = l;
                    successor.right = rest;
                    Some(rebalance(successor))
                }
            };
        }
    }
    Some(rebalance(n))
}

/// An AVL tree augmented with subtree sizes (an *order-statistic tree*).
///
/// ```
/// use tkm_ostree::OsTree;
///
/// let mut tree = OsTree::new();
/// for id in [9u64, 2, 7, 1, 8] {
///     tree.insert(id);
/// }
/// // Rank queries in O(log n): how many stored ids exceed 7?
/// assert_eq!(tree.count_greater(&7), 2);
/// // Order statistics: the 2nd-smallest id.
/// assert_eq!(tree.select(1), Some(&2));
/// ```
pub struct OsTree<K> {
    root: Option<Box<Node<K>>>,
}

impl<K> Default for OsTree<K> {
    fn default() -> Self {
        OsTree { root: None }
    }
}

impl<K: Ord> OsTree<K> {
    /// Creates an empty tree.
    pub fn new() -> OsTree<K> {
        OsTree::default()
    }

    /// Number of keys stored.
    #[inline]
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts `key`; returns `false` (leaving the tree unchanged) if it was
    /// already present.
    pub fn insert(&mut self, key: K) -> bool {
        let mut inserted = false;
        self.root = Some(insert_node(self.root.take(), key, &mut inserted));
        inserted
    }

    /// Removes `key`; returns `false` if it was not present.
    pub fn remove(&mut self, key: &K) -> bool {
        let mut removed = false;
        self.root = remove_node(self.root.take(), key, &mut removed);
        removed
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of stored keys strictly less than `key`.
    pub fn count_less(&self, key: &K) -> usize {
        let mut acc = 0;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less | Ordering::Equal => cur = n.left.as_deref(),
                Ordering::Greater => {
                    acc += 1 + size(&n.left);
                    cur = n.right.as_deref();
                }
            }
        }
        acc
    }

    /// Number of stored keys strictly greater than `key` — the dominance
    /// counter query of SMA when keys are arrival ids.
    pub fn count_greater(&self, key: &K) -> usize {
        let mut acc = 0;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Greater | Ordering::Equal => cur = n.right.as_deref(),
                Ordering::Less => {
                    acc += 1 + size(&n.right);
                    cur = n.left.as_deref();
                }
            }
        }
        acc
    }

    /// The i-th smallest key (0-based), or `None` if `i ≥ len`.
    pub fn select(&self, mut i: usize) -> Option<&K> {
        let mut cur = self.root.as_deref()?;
        loop {
            let left = size(&cur.left);
            match i.cmp(&left) {
                Ordering::Less => cur = cur.left.as_deref()?,
                Ordering::Equal => return Some(&cur.key),
                Ordering::Greater => {
                    i -= left + 1;
                    cur = cur.right.as_deref()?;
                }
            }
        }
    }

    /// Smallest key, if any.
    pub fn min(&self) -> Option<&K> {
        self.select(0)
    }

    /// Largest key, if any.
    pub fn max(&self) -> Option<&K> {
        self.len().checked_sub(1).and_then(|i| self.select(i))
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        self.root = None;
    }

    /// In-order (ascending) iteration, for tests and diagnostics.
    pub fn iter(&self) -> Iter<'_, K> {
        let mut stack = Vec::new();
        push_left(&mut stack, self.root.as_deref());
        Iter { stack }
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn rec<K: Ord>(n: &Node<K>) -> (u32, usize) {
            let (lh, ls) = n.left.as_deref().map_or((0, 0), rec);
            let (rh, rs) = n.right.as_deref().map_or((0, 0), rec);
            assert!((lh as i32 - rh as i32).abs() <= 1, "AVL balance violated");
            assert_eq!(n.height, 1 + lh.max(rh), "height annotation wrong");
            assert_eq!(n.size, 1 + ls + rs, "size annotation wrong");
            if let Some(l) = n.left.as_deref() {
                assert!(l.key < n.key, "BST order violated (left)");
            }
            if let Some(r) = n.right.as_deref() {
                assert!(r.key > n.key, "BST order violated (right)");
            }
            (n.height, n.size)
        }
        if let Some(root) = self.root.as_deref() {
            rec(root);
        }
    }
}

fn push_left<'a, K>(stack: &mut Vec<&'a Node<K>>, mut n: Option<&'a Node<K>>) {
    while let Some(node) = n {
        stack.push(node);
        n = node.left.as_deref();
    }
}

/// Ascending iterator over an [`OsTree`].
pub struct Iter<'a, K> {
    stack: Vec<&'a Node<K>>,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        let node = self.stack.pop()?;
        push_left(&mut self.stack, node.right.as_deref());
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree() {
        let t: OsTree<u64> = OsTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.count_greater(&5), 0);
        assert_eq!(t.select(0), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn insert_and_rank() {
        let mut t = OsTree::new();
        for k in [5u64, 3, 8, 1, 4, 7, 9] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(5), "duplicate insert is a no-op");
        assert_eq!(t.len(), 7);
        assert_eq!(t.count_greater(&5), 3); // 7, 8, 9
        assert_eq!(t.count_greater(&0), 7);
        assert_eq!(t.count_greater(&9), 0);
        assert_eq!(t.count_less(&5), 3); // 1, 3, 4
        assert_eq!(t.count_less(&10), 7);
        t.check_invariants();
    }

    #[test]
    fn remove_and_select() {
        let mut t = OsTree::new();
        for k in 0u64..100 {
            t.insert(k);
        }
        for k in (0u64..100).step_by(2) {
            assert!(t.remove(&k));
        }
        assert!(!t.remove(&2), "already removed");
        assert_eq!(t.len(), 50);
        for i in 0..50 {
            assert_eq!(t.select(i), Some(&(2 * i as u64 + 1)));
        }
        assert_eq!(t.min(), Some(&1));
        assert_eq!(t.max(), Some(&99));
        t.check_invariants();
    }

    #[test]
    fn ascending_then_descending_inserts_stay_balanced() {
        let mut t = OsTree::new();
        for k in 0u64..1000 {
            t.insert(k);
        }
        for k in (1000u64..2000).rev() {
            t.insert(k);
        }
        t.check_invariants();
        // AVL height bound: 1.44 * log2(n + 2).
        assert!(
            height(&t.root) <= 16,
            "height {} too large",
            height(&t.root)
        );
        let collected: Vec<u64> = t.iter().copied().collect();
        assert_eq!(collected, (0u64..2000).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets() {
        let mut t = OsTree::new();
        t.insert(1u64);
        t.clear();
        assert!(t.is_empty());
        assert!(t.insert(1));
    }

    /// The SMA usage pattern: process candidates best-score-first, DC =
    /// number of previously processed entries with a larger arrival id.
    #[test]
    fn dominance_counter_pattern() {
        // (score descending order already applied) arrival ids:
        let arrivals = [9u64, 2, 7, 1, 8];
        let mut t = OsTree::new();
        let mut dcs = Vec::new();
        for a in arrivals {
            dcs.push(t.count_greater(&a));
            t.insert(a);
        }
        // id 9: nothing processed            -> 0
        // id 2: {9} greater                  -> 1
        // id 7: {9} greater                  -> 1
        // id 1: {9,2,7} all greater          -> 3
        // id 8: {9} greater                  -> 1
        assert_eq!(dcs, vec![0, 1, 1, 3, 1]);
    }

    proptest! {
        #[test]
        fn matches_naive_set(ops in prop::collection::vec((any::<bool>(), 0u64..256), 1..200)) {
            let mut tree = OsTree::new();
            let mut naive = std::collections::BTreeSet::new();
            for (is_insert, key) in ops {
                if is_insert {
                    prop_assert_eq!(tree.insert(key), naive.insert(key));
                } else {
                    prop_assert_eq!(tree.remove(&key), naive.remove(&key));
                }
                prop_assert_eq!(tree.len(), naive.len());
                tree.check_invariants();
            }
            // Rank queries agree with the naive set for every probe.
            for probe in 0u64..256 {
                let greater = naive.iter().filter(|k| **k > probe).count();
                let less = naive.iter().filter(|k| **k < probe).count();
                prop_assert_eq!(tree.count_greater(&probe), greater);
                prop_assert_eq!(tree.count_less(&probe), less);
            }
            // Selection agrees with sorted order.
            for (i, k) in naive.iter().enumerate() {
                prop_assert_eq!(tree.select(i), Some(k));
            }
            prop_assert_eq!(tree.select(naive.len()), None);
            let collected: Vec<u64> = tree.iter().copied().collect();
            let expected: Vec<u64> = naive.iter().copied().collect();
            prop_assert_eq!(collected, expected);
        }
    }
}
