#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! k-skyband maintenance in the 2-dimensional *(score, expiry-time)* space
//! (paper §3.1 and §5).
//!
//! A tuple belongs to some current-or-future top-k result **iff** fewer than
//! `k` tuples *dominate* it (paper §3.1). With the workspace-wide candidate
//! order (`Scored`: score descending, ties won by the older tuple), tuple
//! `b` dominates `a` exactly when `b` arrives after `a` — hence expires
//! later, windows being FIFO — *and* `b` ranks strictly higher. Equal-score
//! tuples never dominate each other: the older one outranks the newer while
//! both are valid, and the newer outlives the older, so both may appear in
//! results. (The paper assumes distinct scores, where this reduces to
//! `score(b) ≥ score(a)`.)
//!
//! [`Skyband`] maintains exactly the book-keeping SMA needs:
//!
//! * entries ordered by descending `Scored` — the first `k` *are* the
//!   current top-k result, so no separate result list is stored;
//! * a *dominance counter* (DC) per entry: an insert increments the DC of
//!   every entry it dominates and evicts entries whose DC reaches `k`
//!   (they can never appear in any result again);
//! * expiry of the oldest entry, which — provably (paper footnote 5) — is
//!   in the current top-k and dominates nobody, so no counters change;
//! * a from-scratch rebuild that derives the DCs of a fresh top-k list in
//!   `O(k·log k)` using the order-statistic tree of `tkm-ostree`.
//!
//! Counters never need decrementing: a dominator always expires after the
//! entries it dominates.
//!
//! Storage is two parallel arrays (`Vec<Scored>` + `Vec<u32>` counters)
//! rather than an array of structs: the scored column is contiguous, so a
//! monitor that stores its result *inside* the skyband (TMA with `k_max`
//! refill keeps a `k_max`-band and answers top-k queries from its prefix)
//! can hand out `&[Scored]` result slices without copying.
//!
//! The dominance parameter need not equal the result size: maintaining a
//! band with parameter `k_max > k` (see [`tuned_kmax`]) keeps `k_max`-ish
//! candidates alive so that result expiries are absorbed from the band and
//! a from-scratch recomputation is needed only when the band itself drops
//! below `k` — the refill policy the paper's §8 borrows from the TSL
//! baseline.

use tkm_common::{Result, Scored, TkmError, TupleId};
use tkm_ostree::OsTree;

/// The paper's fine-tuned `k_max` table (§8: "we also fine-tune the value
/// of kmax … the optimal values (4, 10, 20, 30, 70, 120) for the values
/// (1, 5, 10, 20, 50, 100) of k"); other `k` interpolate as
/// `k + max(3, k/2)`.
pub fn tuned_kmax(k: usize) -> usize {
    match k {
        1 => 4,
        5 => 10,
        10 => 20,
        20 => 30,
        50 => 70,
        100 => 120,
        _ => k + (k / 2).max(3),
    }
}

/// A k-skyband over the (score, expiry-time) space.
///
/// ```
/// use tkm_common::{Scored, TupleId};
/// use tkm_skyband::Skyband;
///
/// let mut band = Skyband::new(2).unwrap();
/// band.insert(Scored::new(0.9, TupleId(0)));
/// band.insert(Scored::new(0.5, TupleId(1)));
/// band.insert(Scored::new(0.7, TupleId(2)));
/// // The first k entries are the current top-k…
/// assert_eq!(band.top_scored()[0].id, TupleId(0));
/// assert_eq!(band.top_scored()[1].id, TupleId(2));
/// // …and future results are already queued: when the leader expires,
/// // the band answers without recomputation.
/// band.expire(TupleId(0));
/// assert_eq!(band.top_scored()[0].id, TupleId(2));
/// assert_eq!(band.top_scored()[1].id, TupleId(1));
/// ```
#[derive(Debug)]
pub struct Skyband {
    k: usize,
    /// Scored entries in descending order (best first).
    scored: Vec<Scored>,
    /// Dominance counters, parallel to `scored`.
    dcs: Vec<u32>,
    /// Lower bound on every entry's id (conservative: removals may leave
    /// it stale-low). Expiry replay probes every query listed in the
    /// expiring tuple's cell, and almost all of those probes miss — this
    /// bound turns a miss into one comparison instead of an O(len) scan.
    min_id: TupleId,
}

impl Skyband {
    /// Creates an empty k-skyband.
    pub fn new(k: usize) -> Result<Skyband> {
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "Skyband: k must be positive".into(),
            ));
        }
        Ok(Skyband {
            k,
            scored: Vec::with_capacity(k + k / 2 + 1),
            dcs: Vec::with_capacity(k + k / 2 + 1),
            min_id: TupleId(u64::MAX),
        })
    }

    /// The dominance parameter `k` of this skyband.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently kept (usually slightly more than `k` —
    /// Table 2 of the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.scored.len()
    }

    /// Whether the skyband holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scored.is_empty()
    }

    /// Whether fewer than `k` entries remain — the condition that forces
    /// SMA to recompute from scratch (paper Figure 11, lines 20–22).
    #[inline]
    pub fn is_deficient(&self) -> bool {
        self.scored.len() < self.k
    }

    /// All scored entries, best first (contiguous).
    #[inline]
    pub fn scored(&self) -> &[Scored] {
        &self.scored
    }

    /// The dominance counters, parallel to [`Skyband::scored`].
    #[inline]
    pub fn dcs(&self) -> &[u32] {
        &self.dcs
    }

    /// The current top-k result: the first `min(k, len)` scored entries,
    /// as a borrowable contiguous slice.
    #[inline]
    pub fn top_scored(&self) -> &[Scored] {
        &self.scored[..self.k.min(self.scored.len())]
    }

    /// The first `min(n, len)` scored entries — the top-n prefix of a band
    /// whose dominance parameter exceeds the result size (`n ≤ k`).
    #[inline]
    pub fn prefix(&self, n: usize) -> &[Scored] {
        debug_assert!(n <= self.k, "prefix size must not exceed the band's k");
        &self.scored[..n.min(self.scored.len())]
    }

    /// Score/id of the k-th best entry if the skyband has `k` of them.
    #[inline]
    pub fn kth(&self) -> Option<Scored> {
        (self.scored.len() >= self.k).then(|| self.scored[self.k - 1])
    }

    /// Whether a tuple id is currently in the skyband (O(len) scan over the
    /// ~k entries).
    pub fn contains(&self, id: TupleId) -> bool {
        self.scored.iter().any(|e| e.id == id)
    }

    /// Rebuilds from a fresh best-first candidate list, deriving dominance
    /// counters with an order-statistic tree: processing best-first, the DC
    /// of an entry is the number of already-processed entries that arrived
    /// later.
    ///
    /// The input is typically the top-k list of the computation module,
    /// optionally extended with candidates tying the k-th score (SMA needs
    /// those: a tie-loser can enter a future result). Every dominator of a
    /// listed candidate ranks above it and therefore appears earlier in the
    /// list, so the DCs are exact; candidates with ≥ k dominators are not
    /// stored (they can never appear in a result) but still count as
    /// dominators of later candidates.
    pub fn rebuild(&mut self, top: &[Scored]) {
        debug_assert!(
            top.windows(2).all(|w| w[0] > w[1]),
            "rebuild input must be strictly descending"
        );
        self.scored.clear();
        self.dcs.clear();
        let mut arrivals = OsTree::new();
        self.min_id = TupleId(u64::MAX);
        for s in top {
            let dc = arrivals.count_greater(&s.id.0);
            arrivals.insert(s.id.0);
            if dc < self.k {
                self.min_id = self.min_id.min(s.id);
                self.scored.push(*s);
                self.dcs.push(dc as u32);
            }
        }
    }

    /// Inserts an arrived tuple. Increments the dominance counter of every
    /// entry it dominates (present, strictly lower-ranked *and* older) and
    /// evicts entries whose counter reaches `k`. Returns the insertion rank
    /// (0 = new best) when the tuple was stored, `None` when it already had
    /// `k` dominators and was dropped on arrival. O(len).
    ///
    /// Arrivals of one processing cycle may be inserted in any order
    /// (cell-grouped event replay delivers them per cell, not globally by
    /// id): the dominance tests compare ids explicitly instead of assuming
    /// the newcomer is newest. A dominator of `s` that was itself already
    /// evicted is not counted toward `s`'s counter — an *undercount*, which
    /// can only keep `s` longer than strictly necessary, never evict a
    /// future result.
    // lint: hot-path
    pub fn insert(&mut self, s: Scored) -> Option<usize> {
        debug_assert!(
            self.scored.iter().all(|e| e.id != s.id),
            "an id is inserted at most once"
        );
        self.min_id = self.min_id.min(s.id);
        // Position in descending order: first index whose entry ranks
        // below `s`.
        let pos = self.scored.partition_point(|e| *e > s);
        // In-band dominators of `s`: higher-ranked entries that are newer.
        let dc = self.scored[..pos].iter().filter(|e| e.id > s.id).count();
        let k = self.k as u32;
        let stored = dc < self.k;
        let mut write = pos;
        if stored {
            self.scored.insert(pos, s);
            self.dcs.insert(pos, dc as u32);
            write = pos + 1;
        }
        // Entries `s` dominates: lower-ranked and older. Same-cycle
        // arrivals with larger ids that rank below `s` are *not* dominated
        // (they outlive `s`) and keep their counter.
        let scan_from = write;
        for read in scan_from..self.scored.len() {
            let e = self.scored[read];
            let mut d = self.dcs[read];
            if e.id < s.id {
                d += 1;
            }
            if d < k {
                self.scored[write] = e;
                self.dcs[write] = d;
                write += 1;
            }
        }
        self.scored.truncate(write);
        self.dcs.truncate(write);
        stored.then_some(pos)
    }

    /// Removes an expiring tuple. An expiring member dominates nobody that
    /// outlives it (everything it dominates is older and thus expires
    /// first), so no counters change. Returns the position the tuple held
    /// (0 = best) when it was present.
    // lint: hot-path
    pub fn expire(&mut self, id: TupleId) -> Option<usize> {
        if id < self.min_id {
            // Older than everything ever retained: cannot be present.
            return None;
        }
        let pos = self.scored.iter().position(|e| e.id == id)?;
        // Footnote 5: at most k−1 in-band dominators plus the
        // still-present older entries (same-cycle batch expiries
        // may be processed in any order) can rank above it.
        debug_assert!(
            self.scored[..pos].iter().filter(|e| e.id > id).count() < self.k,
            "an expiring skyband member must be in the top-k (footnote 5)"
        );
        self.scored.remove(pos);
        self.dcs.remove(pos);
        Some(pos)
    }

    /// Removes every entry older than `cutoff` (id `< cutoff`) in one
    /// pass. Windows expire strictly in arrival (id) order, so after a
    /// synchronized expiry wave the live window is exactly the ids
    /// `>= cutoff` — one sweep per band replaces the per-tuple
    /// [`Skyband::expire`] replay that a wave would otherwise turn
    /// quadratic (every expired tuple probed against every covering
    /// query). No counters change, for the same reason as in `expire`.
    /// Returns the smallest position among the removed entries (0 = best;
    /// `None` when nothing was removed).
    // lint: hot-path
    pub fn expire_before(&mut self, cutoff: TupleId) -> Option<usize> {
        if self.min_id >= cutoff {
            // Every retained entry is at least as new as the cutoff.
            return None;
        }
        let mut first = None;
        let mut write = 0;
        for read in 0..self.scored.len() {
            if self.scored[read].id < cutoff {
                if first.is_none() {
                    first = Some(read);
                }
            } else {
                self.scored[write] = self.scored[read];
                self.dcs[write] = self.dcs[read];
                write += 1;
            }
        }
        self.scored.truncate(write);
        self.dcs.truncate(write);
        // Everything below the cutoff is gone, so it becomes the new
        // presence lower bound.
        self.min_id = cutoff;
        first
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.scored.clear();
        self.dcs.clear();
        self.min_id = TupleId(u64::MAX);
    }

    /// Deep size estimate in bytes. Matches the paper's `O(d + 3k)` per
    /// query: id, score and dominance counter per entry.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.scored.capacity() * std::mem::size_of::<Scored>()
            + self.dcs.capacity() * std::mem::size_of::<u32>()
    }

    /// Validates internal invariants (tests/debugging).
    pub fn check_invariants(&self) {
        // lint: allow(panic, reason=opt-in invariant checker; aborting on breach is its contract)
        assert_eq!(self.scored.len(), self.dcs.len(), "parallel arrays");
        for w in self.scored.windows(2) {
            // lint: allow(panic, reason=opt-in invariant checker; aborting on breach is its contract)
            assert!(w[0] > w[1], "entries must be strictly descending");
        }
        for &dc in &self.dcs {
            // lint: allow(panic, reason=opt-in invariant checker; aborting on breach is its contract)
            assert!((dc as usize) < self.k, "DC must stay below k");
        }
        // An entry's counter is at least its number of in-band dominators
        // (out-of-band dominators — entries since evicted — may add more).
        for (i, e) in self.scored.iter().enumerate() {
            let in_band = self.scored[..i].iter().filter(|d| d.id > e.id).count();
            // lint: allow(panic, reason=opt-in invariant checker; aborting on breach is its contract)
            assert!(
                self.dcs[i] as usize >= in_band,
                "DC below in-band dominator count"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    fn band_pairs(sky: &Skyband) -> Vec<(u64, u32)> {
        sky.scored()
            .iter()
            .zip(sky.dcs())
            .map(|(e, &dc)| (e.id.0, dc))
            .collect()
    }

    #[test]
    fn k_must_be_positive() {
        assert!(Skyband::new(0).is_err());
    }

    #[test]
    fn tuned_kmax_matches_paper_table() {
        for (k, kmax) in [(1, 4), (5, 10), (10, 20), (20, 30), (50, 70), (100, 120)] {
            assert_eq!(tuned_kmax(k), kmax);
        }
        // Interpolated values stay sane: strictly above k, monotone-ish.
        for k in [2usize, 3, 7, 15, 33, 64, 200] {
            assert!(tuned_kmax(k) > k);
            assert!(tuned_kmax(k) <= 2 * k + 3);
        }
    }

    /// The running example of Figure 10, with arrival ids assigned in
    /// expiry order (p3 expires first, then p2, p7, p5; p9 arrives last and
    /// outlives everyone) and scores p2 > p9 > p3 > p5 > p7.
    #[test]
    fn figure_10_example() {
        let p3 = s(0.6, 0);
        let p2 = s(0.9, 1);
        let p7 = s(0.3, 2);
        let p5 = s(0.5, 3);
        let p9 = s(0.8, 4);

        let mut sky = Skyband::new(2).unwrap();
        for p in [p3, p2, p7, p5] {
            sky.insert(p);
        }
        sky.check_invariants();
        // Figure 10(a): band {p2(0), p3(1), p5(0), p7(1)}, top-2 {p2, p3}.
        assert_eq!(band_pairs(&sky), vec![(1, 0), (0, 1), (3, 0), (2, 1)]);
        let top: Vec<u64> = sky.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![1, 0], "top-2 = {{p2, p3}}");

        // p9 arrives: p3 and p7 hit DC = 2 and leave; p5 survives at DC 1.
        sky.insert(p9);
        sky.check_invariants();
        assert_eq!(
            band_pairs(&sky),
            vec![(1, 0), (4, 0), (3, 1)],
            "band = {{p2, p9, p5}}"
        );
        let top: Vec<u64> = sky.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![1, 4], "new top-2 = {{p2, p9}}");

        // p3 expires first — it already left the band; then p2 expires and
        // the result becomes {p9, p5} as in the paper.
        assert_eq!(sky.expire(TupleId(0)), None);
        assert_eq!(sky.expire(TupleId(1)), Some(0));
        let top: Vec<u64> = sky.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![4, 3]);
    }

    #[test]
    fn rebuild_derives_dominance_counters() {
        let mut sky = Skyband::new(4).unwrap();
        // Best-first list; arrival ids deliberately shuffled.
        sky.rebuild(&[s(0.9, 7), s(0.8, 2), s(0.7, 9), s(0.6, 1)]);
        // id7: nothing processed before it           → 0
        // id2: {7} arrived later                     → 1
        // id9: neither 7 nor 2 arrived later than 9  → 0
        // id1: {7, 2, 9} all arrived later           → 3
        assert_eq!(sky.dcs(), &[0, 1, 0, 3]);
        sky.check_invariants();
    }

    #[test]
    fn rebuild_accepts_fewer_than_k() {
        let mut sky = Skyband::new(5).unwrap();
        sky.rebuild(&[s(0.9, 1), s(0.5, 0)]);
        assert_eq!(sky.len(), 2);
        assert!(sky.is_deficient());
        assert_eq!(sky.kth(), None);
        assert_eq!(sky.top_scored().len(), 2);
    }

    #[test]
    fn insert_evicts_at_k_dominators() {
        let mut sky = Skyband::new(1).unwrap();
        sky.rebuild(&[s(0.5, 0)]);
        // A better, newer tuple replaces the old top immediately (k = 1).
        assert_eq!(sky.insert(s(0.6, 1)), Some(0));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.top_scored()[0].id, TupleId(1));
        // Worse, newer tuples are dominated by nothing *newer* — kept as
        // future results.
        assert_eq!(sky.insert(s(0.4, 2)), Some(1));
        sky.insert(s(0.3, 3));
        assert_eq!(sky.len(), 3);
        // A newer better tuple sweeps them all out.
        sky.insert(s(0.9, 4));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.top_scored()[0].id, TupleId(4));
        // An arrival that is already dominated k times is dropped on
        // arrival and reports `None`.
        assert_eq!(sky.insert(s(0.2, 0)), None);
        assert_eq!(sky.len(), 1);
        sky.check_invariants();
    }

    #[test]
    fn equal_scores_never_dominate() {
        let mut sky = Skyband::new(1).unwrap();
        sky.rebuild(&[s(0.5, 0)]);
        sky.insert(s(0.5, 1));
        // The older tuple outranks the newer while valid; the newer
        // outlives it. Both appear in some top-1 result, so both stay.
        assert_eq!(sky.len(), 2);
        let top: Vec<u64> = sky.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![0], "older equal-score tuple is the result now");
        assert_eq!(sky.expire(TupleId(0)), Some(0));
        let top: Vec<u64> = sky.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![1], "newer takes over after expiry");
    }

    /// Same-cycle arrivals may be inserted in any order (cell-grouped
    /// event replay delivers them per cell): the resulting band must match
    /// the id-ordered outcome.
    #[test]
    fn out_of_order_inserts_within_a_cycle() {
        let mut in_order = Skyband::new(2).unwrap();
        let mut shuffled = Skyband::new(2).unwrap();
        let batch = [s(0.7, 10), s(0.9, 11), s(0.4, 12), s(0.8, 13)];
        for p in batch {
            in_order.insert(p);
        }
        for p in [batch[1], batch[3], batch[0], batch[2]] {
            shuffled.insert(p);
        }
        in_order.check_invariants();
        shuffled.check_invariants();
        assert_eq!(in_order.scored(), shuffled.scored());
        assert_eq!(in_order.dcs(), shuffled.dcs());
        // Batch expiry may also drain in any order.
        assert!(shuffled.expire(TupleId(13)).is_some());
        assert!(shuffled.expire(TupleId(11)).is_some());
        let top: Vec<u64> = shuffled.top_scored().iter().map(|e| e.id.0).collect();
        assert_eq!(top, vec![12]);
    }

    /// A band with dominance parameter `k_max > k` serves exact top-k
    /// results from its prefix — the refill configuration TMA runs by
    /// default.
    #[test]
    fn prefix_of_wider_band_is_exact_topk() {
        let k = 2;
        let mut sky = Skyband::new(tuned_kmax(k)).unwrap();
        let mut valid: Vec<Scored> = Vec::new();
        for (i, score) in [9, 3, 7, 5, 8, 1, 6, 4, 2, 9].iter().enumerate() {
            let cand = s(*score as f64 / 10.0, i as u64);
            sky.insert(cand);
            valid.push(cand);
            if i % 3 == 2 {
                let victim = valid.remove(0);
                sky.expire(victim.id);
            }
            let mut want = valid.clone();
            want.sort_by(|a, b| b.cmp(a));
            want.truncate(k);
            assert_eq!(sky.prefix(k), &want[..], "step {i}");
        }
    }

    #[test]
    fn expire_non_member_is_noop() {
        let mut sky = Skyband::new(2).unwrap();
        sky.rebuild(&[s(0.9, 5), s(0.8, 6)]);
        assert_eq!(sky.expire(TupleId(4)), None);
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn deficiency_detection() {
        let mut sky = Skyband::new(2).unwrap();
        sky.rebuild(&[s(0.9, 0), s(0.8, 1)]);
        assert!(!sky.is_deficient());
        assert_eq!(sky.kth(), Some(s(0.8, 1)));
        sky.expire(TupleId(0));
        assert!(sky.is_deficient());
        assert_eq!(sky.kth(), None);
    }

    #[test]
    fn clear_empties() {
        let mut sky = Skyband::new(2).unwrap();
        sky.insert(s(0.5, 0));
        sky.clear();
        assert!(sky.is_empty());
    }

    /// Naive model: the k-skyband of a set of valid tuples is the set with
    /// fewer than k strict dominators (newer arrival, strictly better
    /// `Scored` — which given distinct ids means strictly higher score).
    fn naive_skyband(tuples: &[Scored], k: usize) -> Vec<TupleId> {
        let mut out: Vec<Scored> = tuples
            .iter()
            .filter(|p| {
                tuples
                    .iter()
                    .filter(|q| q.id > p.id && q.score > p.score)
                    .count()
                    < k
            })
            .copied()
            .collect();
        out.sort_by(|a, b| b.cmp(a));
        out.into_iter().map(|sc| sc.id).collect()
    }

    proptest! {
        /// Streaming inserts + FIFO expiries match the naive k-skyband of
        /// the valid tuples at every step. Discrete scores force plenty of
        /// ties through the tie-break logic.
        #[test]
        fn matches_naive_skyband(
            scores in prop::collection::vec(0u32..50, 1..60),
            k in 1usize..6,
            expire_every in 2usize..5,
        ) {
            let mut sky = Skyband::new(k).unwrap();
            let mut valid: Vec<Scored> = Vec::new();
            for (i, sc) in scores.iter().enumerate() {
                let cand = Scored::new(*sc as f64 / 50.0, TupleId(i as u64));
                sky.insert(cand);
                valid.push(cand);
                if i % expire_every == 0 && !valid.is_empty() {
                    let victim = valid.remove(0);
                    sky.expire(victim.id);
                }
                sky.check_invariants();
                let got: Vec<TupleId> =
                    sky.scored().iter().map(|e| e.id).collect();
                let want = naive_skyband(&valid, k);
                prop_assert_eq!(got, want);
            }
        }

        /// The first k entries of the skyband equal the brute-force top-k
        /// of the valid tuples at every step.
        #[test]
        fn top_prefix_is_true_topk(
            scores in prop::collection::vec(0u32..50, 1..60),
            k in 1usize..6,
        ) {
            let mut sky = Skyband::new(k).unwrap();
            let mut valid: Vec<Scored> = Vec::new();
            for (i, sc) in scores.iter().enumerate() {
                let cand = Scored::new(*sc as f64 / 50.0, TupleId(i as u64));
                sky.insert(cand);
                valid.push(cand);
                if i % 2 == 0 {
                    let victim = valid.remove(0);
                    sky.expire(victim.id);
                }
                let mut want = valid.clone();
                want.sort_by(|a, b| b.cmp(a));
                want.truncate(k);
                let got: Vec<Scored> = sky.top_scored().to_vec();
                prop_assert_eq!(got, want);
            }
        }
    }
}
