#![warn(missing_docs)]

//! k-skyband maintenance in the 2-dimensional *(score, expiry-time)* space
//! (paper §3.1 and §5).
//!
//! A tuple belongs to some current-or-future top-k result **iff** fewer than
//! `k` tuples *dominate* it (paper §3.1). With the workspace-wide candidate
//! order (`Scored`: score descending, ties won by the older tuple), tuple
//! `b` dominates `a` exactly when `b` arrives after `a` — hence expires
//! later, windows being FIFO — *and* `b` ranks strictly higher. Equal-score
//! tuples never dominate each other: the older one outranks the newer while
//! both are valid, and the newer outlives the older, so both may appear in
//! results. (The paper assumes distinct scores, where this reduces to
//! `score(b) ≥ score(a)`.)
//!
//! [`Skyband`] maintains exactly the book-keeping SMA needs:
//!
//! * entries ordered by descending `Scored` — the first `k` *are* the
//!   current top-k result, so no separate result list is stored;
//! * a *dominance counter* (DC) per entry: an insert increments the DC of
//!   every entry it dominates and evicts entries whose DC reaches `k`
//!   (they can never appear in any result again);
//! * expiry of the oldest entry, which — provably (paper footnote 5) — is
//!   in the current top-k and dominates nobody, so no counters change;
//! * a from-scratch rebuild that derives the DCs of a fresh top-k list in
//!   `O(k·log k)` using the order-statistic tree of `tkm-ostree`.
//!
//! Counters never need decrementing: a dominator always expires after the
//! entries it dominates.

use tkm_common::{Result, Scored, TkmError, TupleId};
use tkm_ostree::OsTree;

/// One skyband entry: a scored tuple plus its dominance counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkyEntry {
    /// Score and arrival id of the tuple.
    pub scored: Scored,
    /// Number of tuples that dominate it (always `< k`).
    pub dc: u32,
}

/// A k-skyband over the (score, expiry-time) space.
///
/// ```
/// use tkm_common::{Scored, TupleId};
/// use tkm_skyband::Skyband;
///
/// let mut band = Skyband::new(2).unwrap();
/// band.insert(Scored::new(0.9, TupleId(0)));
/// band.insert(Scored::new(0.5, TupleId(1)));
/// band.insert(Scored::new(0.7, TupleId(2)));
/// // The first k entries are the current top-k…
/// assert_eq!(band.top()[0].scored.id, TupleId(0));
/// assert_eq!(band.top()[1].scored.id, TupleId(2));
/// // …and future results are already queued: when the leader expires,
/// // the band answers without recomputation.
/// band.expire(TupleId(0));
/// assert_eq!(band.top()[0].scored.id, TupleId(2));
/// assert_eq!(band.top()[1].scored.id, TupleId(1));
/// ```
#[derive(Debug)]
pub struct Skyband {
    k: usize,
    /// Entries in descending `Scored` order (best first).
    entries: Vec<SkyEntry>,
    /// Lower bound on every entry's id (conservative: removals may leave
    /// it stale-low). Expiry replay probes every query listed in the
    /// expiring tuple's cell, and almost all of those probes miss — this
    /// bound turns a miss into one comparison instead of an O(len) scan.
    min_id: TupleId,
}

impl Skyband {
    /// Creates an empty k-skyband.
    pub fn new(k: usize) -> Result<Skyband> {
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "Skyband: k must be positive".into(),
            ));
        }
        Ok(Skyband {
            k,
            entries: Vec::with_capacity(k + k / 2 + 1),
            min_id: TupleId(u64::MAX),
        })
    }

    /// The `k` of this skyband.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently kept (usually slightly more than `k` —
    /// Table 2 of the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the skyband holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether fewer than `k` entries remain — the condition that forces
    /// SMA to recompute from scratch (paper Figure 11, lines 20–22).
    #[inline]
    pub fn is_deficient(&self) -> bool {
        self.entries.len() < self.k
    }

    /// All entries, best first.
    #[inline]
    pub fn entries(&self) -> &[SkyEntry] {
        &self.entries
    }

    /// The current top-k result: the first `min(k, len)` entries.
    #[inline]
    pub fn top(&self) -> &[SkyEntry] {
        &self.entries[..self.k.min(self.entries.len())]
    }

    /// Score/id of the k-th best entry if the skyband has `k` of them.
    #[inline]
    pub fn kth(&self) -> Option<Scored> {
        (self.entries.len() >= self.k).then(|| self.entries[self.k - 1].scored)
    }

    /// Whether a tuple id is currently in the skyband (O(len) scan over the
    /// ~k entries).
    pub fn contains(&self, id: TupleId) -> bool {
        self.entries.iter().any(|e| e.scored.id == id)
    }

    /// Rebuilds from a fresh best-first candidate list, deriving dominance
    /// counters with an order-statistic tree: processing best-first, the DC
    /// of an entry is the number of already-processed entries that arrived
    /// later.
    ///
    /// The input is typically the top-k list of the computation module,
    /// optionally extended with candidates tying the k-th score (SMA needs
    /// those: a tie-loser can enter a future result). Every dominator of a
    /// listed candidate ranks above it and therefore appears earlier in the
    /// list, so the DCs are exact; candidates with ≥ k dominators are not
    /// stored (they can never appear in a result) but still count as
    /// dominators of later candidates.
    pub fn rebuild(&mut self, top: &[Scored]) {
        debug_assert!(
            top.windows(2).all(|w| w[0] > w[1]),
            "rebuild input must be strictly descending"
        );
        self.entries.clear();
        let mut arrivals = OsTree::new();
        self.min_id = TupleId(u64::MAX);
        for s in top {
            let dc = arrivals.count_greater(&s.id.0);
            arrivals.insert(s.id.0);
            if dc < self.k {
                self.min_id = self.min_id.min(s.id);
                self.entries.push(SkyEntry {
                    scored: *s,
                    dc: dc as u32,
                });
            }
        }
    }

    /// Inserts an arrived tuple. Increments the dominance counter of every
    /// entry it dominates (present, strictly lower-ranked *and* older) and
    /// evicts entries whose counter reaches `k`. Returns the insertion rank
    /// (0 = new best). O(len).
    ///
    /// Arrivals of one processing cycle may be inserted in any order
    /// (cell-grouped event replay delivers them per cell, not globally by
    /// id): the dominance tests compare ids explicitly instead of assuming
    /// the newcomer is newest. A dominator of `s` that was itself already
    /// evicted is not counted toward `s`'s counter — an *undercount*, which
    /// can only keep `s` longer than strictly necessary, never evict a
    /// future result.
    pub fn insert(&mut self, s: Scored) -> usize {
        debug_assert!(
            self.entries.iter().all(|e| e.scored.id != s.id),
            "an id is inserted at most once"
        );
        self.min_id = self.min_id.min(s.id);
        // Position in descending order: first index whose entry ranks
        // below `s`.
        let pos = self.entries.partition_point(|e| e.scored > s);
        // In-band dominators of `s`: higher-ranked entries that are newer.
        let dc = self.entries[..pos]
            .iter()
            .filter(|e| e.scored.id > s.id)
            .count();
        let k = self.k as u32;
        let mut write = pos;
        if dc < self.k {
            self.entries.insert(
                pos,
                SkyEntry {
                    scored: s,
                    dc: dc as u32,
                },
            );
            write = pos + 1;
        }
        // Entries `s` dominates: lower-ranked and older. Same-cycle
        // arrivals with larger ids that rank below `s` are *not* dominated
        // (they outlive `s`) and keep their counter.
        let scan_from = write;
        for read in scan_from..self.entries.len() {
            let mut e = self.entries[read];
            if e.scored.id < s.id {
                e.dc += 1;
            }
            if e.dc < k {
                self.entries[write] = e;
                write += 1;
            }
        }
        self.entries.truncate(write);
        pos
    }

    /// Removes an expiring tuple. An expiring member dominates nobody that
    /// outlives it (everything it dominates is older and thus expires
    /// first), so no counters change. Returns `true` if the tuple was
    /// present.
    pub fn expire(&mut self, id: TupleId) -> bool {
        if id < self.min_id {
            // Older than everything ever retained: cannot be present.
            return false;
        }
        match self.entries.iter().position(|e| e.scored.id == id) {
            Some(pos) => {
                // Footnote 5: at most k−1 in-band dominators plus the
                // still-present older entries (same-cycle batch expiries
                // may be processed in any order) can rank above it.
                debug_assert!(
                    self.entries[..pos]
                        .iter()
                        .filter(|e| e.scored.id > id)
                        .count()
                        < self.k,
                    "an expiring skyband member must be in the top-k (footnote 5)"
                );
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.min_id = TupleId(u64::MAX);
    }

    /// Deep size estimate in bytes. Matches the paper's `O(d + 3k)` per
    /// query: id, score and dominance counter per entry.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<SkyEntry>()
    }

    /// Validates internal invariants (tests/debugging).
    pub fn check_invariants(&self) {
        for w in self.entries.windows(2) {
            assert!(
                w[0].scored > w[1].scored,
                "entries must be strictly descending"
            );
        }
        for e in &self.entries {
            assert!((e.dc as usize) < self.k, "DC must stay below k");
        }
        // An entry's counter is at least its number of in-band dominators
        // (out-of-band dominators — entries since evicted — may add more).
        for (i, e) in self.entries.iter().enumerate() {
            let in_band = self.entries[..i]
                .iter()
                .filter(|d| d.scored.id > e.scored.id)
                .count();
            assert!(e.dc as usize >= in_band, "DC below in-band dominator count");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    #[test]
    fn k_must_be_positive() {
        assert!(Skyband::new(0).is_err());
    }

    /// The running example of Figure 10, with arrival ids assigned in
    /// expiry order (p3 expires first, then p2, p7, p5; p9 arrives last and
    /// outlives everyone) and scores p2 > p9 > p3 > p5 > p7.
    #[test]
    fn figure_10_example() {
        let p3 = s(0.6, 0);
        let p2 = s(0.9, 1);
        let p7 = s(0.3, 2);
        let p5 = s(0.5, 3);
        let p9 = s(0.8, 4);

        let mut sky = Skyband::new(2).unwrap();
        for p in [p3, p2, p7, p5] {
            sky.insert(p);
        }
        sky.check_invariants();
        // Figure 10(a): band {p2(0), p3(1), p5(0), p7(1)}, top-2 {p2, p3}.
        let band: Vec<(u64, u32)> = sky
            .entries()
            .iter()
            .map(|e| (e.scored.id.0, e.dc))
            .collect();
        assert_eq!(band, vec![(1, 0), (0, 1), (3, 0), (2, 1)]);
        let top: Vec<u64> = sky.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![1, 0], "top-2 = {{p2, p3}}");

        // p9 arrives: p3 and p7 hit DC = 2 and leave; p5 survives at DC 1.
        sky.insert(p9);
        sky.check_invariants();
        let band: Vec<(u64, u32)> = sky
            .entries()
            .iter()
            .map(|e| (e.scored.id.0, e.dc))
            .collect();
        assert_eq!(band, vec![(1, 0), (4, 0), (3, 1)], "band = {{p2, p9, p5}}");
        let top: Vec<u64> = sky.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![1, 4], "new top-2 = {{p2, p9}}");

        // p3 expires first — it already left the band; then p2 expires and
        // the result becomes {p9, p5} as in the paper.
        assert!(!sky.expire(TupleId(0)));
        assert!(sky.expire(TupleId(1)));
        let top: Vec<u64> = sky.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![4, 3]);
    }

    #[test]
    fn rebuild_derives_dominance_counters() {
        let mut sky = Skyband::new(4).unwrap();
        // Best-first list; arrival ids deliberately shuffled.
        sky.rebuild(&[s(0.9, 7), s(0.8, 2), s(0.7, 9), s(0.6, 1)]);
        let dcs: Vec<u32> = sky.entries().iter().map(|e| e.dc).collect();
        // id7: nothing processed before it           → 0
        // id2: {7} arrived later                     → 1
        // id9: neither 7 nor 2 arrived later than 9  → 0
        // id1: {7, 2, 9} all arrived later           → 3
        assert_eq!(dcs, vec![0, 1, 0, 3]);
        sky.check_invariants();
    }

    #[test]
    fn rebuild_accepts_fewer_than_k() {
        let mut sky = Skyband::new(5).unwrap();
        sky.rebuild(&[s(0.9, 1), s(0.5, 0)]);
        assert_eq!(sky.len(), 2);
        assert!(sky.is_deficient());
        assert_eq!(sky.kth(), None);
        assert_eq!(sky.top().len(), 2);
    }

    #[test]
    fn insert_evicts_at_k_dominators() {
        let mut sky = Skyband::new(1).unwrap();
        sky.rebuild(&[s(0.5, 0)]);
        // A better, newer tuple replaces the old top immediately (k = 1).
        sky.insert(s(0.6, 1));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.top()[0].scored.id, TupleId(1));
        // Worse, newer tuples are dominated by nothing *newer* — kept as
        // future results.
        sky.insert(s(0.4, 2));
        sky.insert(s(0.3, 3));
        assert_eq!(sky.len(), 3);
        // A newer better tuple sweeps them all out.
        sky.insert(s(0.9, 4));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.top()[0].scored.id, TupleId(4));
        sky.check_invariants();
    }

    #[test]
    fn equal_scores_never_dominate() {
        let mut sky = Skyband::new(1).unwrap();
        sky.rebuild(&[s(0.5, 0)]);
        sky.insert(s(0.5, 1));
        // The older tuple outranks the newer while valid; the newer
        // outlives it. Both appear in some top-1 result, so both stay.
        assert_eq!(sky.len(), 2);
        let top: Vec<u64> = sky.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![0], "older equal-score tuple is the result now");
        assert!(sky.expire(TupleId(0)));
        let top: Vec<u64> = sky.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![1], "newer takes over after expiry");
    }

    /// Same-cycle arrivals may be inserted in any order (cell-grouped
    /// event replay delivers them per cell): the resulting band must match
    /// the id-ordered outcome.
    #[test]
    fn out_of_order_inserts_within_a_cycle() {
        let mut in_order = Skyband::new(2).unwrap();
        let mut shuffled = Skyband::new(2).unwrap();
        let batch = [s(0.7, 10), s(0.9, 11), s(0.4, 12), s(0.8, 13)];
        for p in batch {
            in_order.insert(p);
        }
        for p in [batch[1], batch[3], batch[0], batch[2]] {
            shuffled.insert(p);
        }
        in_order.check_invariants();
        shuffled.check_invariants();
        assert_eq!(in_order.entries(), shuffled.entries());
        // Batch expiry may also drain in any order.
        assert!(shuffled.expire(TupleId(13)));
        assert!(shuffled.expire(TupleId(11)));
        let top: Vec<u64> = shuffled.top().iter().map(|e| e.scored.id.0).collect();
        assert_eq!(top, vec![12]);
    }

    #[test]
    fn expire_non_member_is_noop() {
        let mut sky = Skyband::new(2).unwrap();
        sky.rebuild(&[s(0.9, 5), s(0.8, 6)]);
        assert!(!sky.expire(TupleId(4)));
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn deficiency_detection() {
        let mut sky = Skyband::new(2).unwrap();
        sky.rebuild(&[s(0.9, 0), s(0.8, 1)]);
        assert!(!sky.is_deficient());
        assert_eq!(sky.kth(), Some(s(0.8, 1)));
        sky.expire(TupleId(0));
        assert!(sky.is_deficient());
        assert_eq!(sky.kth(), None);
    }

    #[test]
    fn clear_empties() {
        let mut sky = Skyband::new(2).unwrap();
        sky.insert(s(0.5, 0));
        sky.clear();
        assert!(sky.is_empty());
    }

    /// Naive model: the k-skyband of a set of valid tuples is the set with
    /// fewer than k strict dominators (newer arrival, strictly better
    /// `Scored` — which given distinct ids means strictly higher score).
    fn naive_skyband(tuples: &[Scored], k: usize) -> Vec<TupleId> {
        let mut out: Vec<Scored> = tuples
            .iter()
            .filter(|p| {
                tuples
                    .iter()
                    .filter(|q| q.id > p.id && q.score > p.score)
                    .count()
                    < k
            })
            .copied()
            .collect();
        out.sort_by(|a, b| b.cmp(a));
        out.into_iter().map(|sc| sc.id).collect()
    }

    proptest! {
        /// Streaming inserts + FIFO expiries match the naive k-skyband of
        /// the valid tuples at every step. Discrete scores force plenty of
        /// ties through the tie-break logic.
        #[test]
        fn matches_naive_skyband(
            scores in prop::collection::vec(0u32..50, 1..60),
            k in 1usize..6,
            expire_every in 2usize..5,
        ) {
            let mut sky = Skyband::new(k).unwrap();
            let mut valid: Vec<Scored> = Vec::new();
            for (i, sc) in scores.iter().enumerate() {
                let cand = Scored::new(*sc as f64 / 50.0, TupleId(i as u64));
                sky.insert(cand);
                valid.push(cand);
                if i % expire_every == 0 && !valid.is_empty() {
                    let victim = valid.remove(0);
                    sky.expire(victim.id);
                }
                sky.check_invariants();
                let got: Vec<TupleId> =
                    sky.entries().iter().map(|e| e.scored.id).collect();
                let want = naive_skyband(&valid, k);
                prop_assert_eq!(got, want);
            }
        }

        /// The first k entries of the skyband equal the brute-force top-k
        /// of the valid tuples at every step.
        #[test]
        fn top_prefix_is_true_topk(
            scores in prop::collection::vec(0u32..50, 1..60),
            k in 1usize..6,
        ) {
            let mut sky = Skyband::new(k).unwrap();
            let mut valid: Vec<Scored> = Vec::new();
            for (i, sc) in scores.iter().enumerate() {
                let cand = Scored::new(*sc as f64 / 50.0, TupleId(i as u64));
                sky.insert(cand);
                valid.push(cand);
                if i % 2 == 0 {
                    let victim = valid.remove(0);
                    sky.expire(victim.id);
                }
                let mut want = valid.clone();
                want.sort_by(|a, b| b.cmp(a));
                want.truncate(k);
                let got: Vec<Scored> =
                    sky.top().iter().map(|e| e.scored).collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
