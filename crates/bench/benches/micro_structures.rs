//! Criterion micro-benchmarks for the core data structures: the
//! order-statistic tree, the skyband, the grid, the window ring and the
//! top-list.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tkm_common::{ScoreFn, Scored, Timestamp, TupleId};
use tkm_grid::{CellMode, Grid};
use tkm_ostree::OsTree;
use tkm_skyband::Skyband;
use tkm_window::{Window, WindowSpec};

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
}

fn bench_ostree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ostree");
    group.sample_size(20);
    group.bench_function("insert_rank_remove_1k", |b| {
        b.iter(|| {
            let mut t = OsTree::new();
            for i in 0..1000u64 {
                t.insert(black_box((i * 2_654_435_761) % 1_000_003));
            }
            let mut acc = 0usize;
            for i in 0..1000u64 {
                acc += t.count_greater(&black_box(i * 997));
            }
            for i in 0..1000u64 {
                t.remove(&((i * 2_654_435_761) % 1_000_003));
            }
            acc
        })
    });
    group.finish();
}

fn bench_skyband(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyband");
    group.sample_size(20);
    for k in [10usize, 100] {
        group.bench_function(format!("insert_expire_k{k}"), |b| {
            b.iter_batched(
                || {
                    let mut sky = Skyband::new(k).expect("k > 0");
                    let mut state = 7u64;
                    for i in 0..k as u64 {
                        sky.insert(Scored::new(lcg(&mut state), TupleId(i)));
                    }
                    (sky, state, k as u64)
                },
                |(mut sky, mut state, mut next)| {
                    for _ in 0..1000 {
                        sky.insert(Scored::new(lcg(&mut state), TupleId(next)));
                        next += 1;
                        // Expire the oldest band member occasionally.
                        if let Some(e) = sky.scored().iter().map(|s| s.id).min() {
                            sky.expire(e);
                        }
                    }
                    sky.len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    group.sample_size(20);
    let f = ScoreFn::linear(vec![0.3, 0.9, 0.5, 0.7]).expect("4-d");
    let grid = Grid::with_cell_budget(4, 20_736, CellMode::Fifo).expect("budget");
    group.bench_function("locate_4d", |b| {
        let mut state = 3u64;
        b.iter(|| {
            let p = [
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
            ];
            black_box(grid.locate(&p))
        })
    });
    group.bench_function("maxscore_4d", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % grid.num_cells() as u32;
            black_box(grid.maxscore(tkm_grid::CellId(i), &f))
        })
    });
    group.bench_function("insert_1k_points", |b| {
        b.iter_batched(
            || Grid::with_cell_budget(4, 20_736, CellMode::Fifo).expect("budget"),
            |mut g| {
                let mut state = 11u64;
                for i in 0..1000u64 {
                    let p = [
                        lcg(&mut state),
                        lcg(&mut state),
                        lcg(&mut state),
                        lcg(&mut state),
                    ];
                    g.insert_point(&p, TupleId(i));
                }
                g.num_cells()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.sample_size(20);
    group.bench_function("count_push_evict_steady", |b| {
        let mut w = Window::new(4, WindowSpec::Count(10_000)).expect("config");
        let mut state = 5u64;
        let mut ts = 0u64;
        for _ in 0..10_000 {
            let p = [
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
            ];
            w.insert(&p, Timestamp(0)).expect("insert");
        }
        b.iter(|| {
            ts += 1;
            let p = [
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
                lcg(&mut state),
            ];
            w.insert(&p, Timestamp(ts)).expect("insert");
            let mut evicted = 0;
            w.drain_expired(Timestamp(ts), |_, _| evicted += 1);
            black_box(evicted)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ostree,
    bench_skyband,
    bench_grid,
    bench_window
);
criterion_main!(benches);
