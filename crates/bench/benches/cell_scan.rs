//! Criterion microbench for the coordinate-inline cell blocks: scanning
//! every cell's points through the dim-specialized kernels (contiguous SoA
//! reads) versus the pre-inline layout's access pattern (resolve each
//! tuple id through the window ring, then score).
//!
//! The second variant is exactly what the traversal inner loop used to do
//! before the cells carried their own coordinates; keeping both here makes
//! the layout's win (and any future regression) visible in one number.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkm_common::{ScoreFn, Timestamp};
use tkm_core::kernel;
use tkm_datagen::{DataDist, PointGen};
use tkm_grid::{CellMode, Grid};
use tkm_window::{Window, WindowSpec};

const N: usize = 50_000;

struct Fixture {
    grid: Grid,
    window: Window,
    f: ScoreFn,
    dims: usize,
}

fn fixture(dims: usize) -> Fixture {
    let mut gen = PointGen::new(dims, DataDist::Ind, 7).expect("dims");
    let mut grid = Grid::with_cell_budget(dims, 20_736, CellMode::Fifo).expect("budget");
    let mut window = Window::new(dims, WindowSpec::Count(N)).expect("config");
    let mut buf = [0.0f64; tkm_common::MAX_DIMS];
    for _ in 0..N {
        gen.fill(&mut buf);
        let coords = &buf[..dims];
        let id = window.insert(coords, Timestamp(0)).expect("insert");
        grid.insert_point(coords, id);
    }
    let f = ScoreFn::linear(vec![0.8; dims]).expect("dims");
    Fixture {
        grid,
        window,
        f,
        dims,
    }
}

fn bench_cell_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_scan");
    group.sample_size(30);
    for dims in [2usize, 4] {
        let fx = fixture(dims);
        // Contiguous: stream (id, coords) straight out of the cell blocks
        // through the scoring kernel — the post-inline traversal loop.
        group.bench_with_input(BenchmarkId::new("contiguous", dims), &fx, |b, fx| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for (_, cell) in fx.grid.cells() {
                    let points = cell.points();
                    kernel::scan_block(
                        &fx.f,
                        fx.dims,
                        points.ids(),
                        points.coords(),
                        None,
                        |_, score| acc += score,
                    );
                }
                black_box(acc)
            })
        });
        // Lookup-per-tuple: the pre-inline pattern — ids in the cell, one
        // window-ring resolution per scanned point.
        group.bench_with_input(BenchmarkId::new("lookup_per_tuple", dims), &fx, |b, fx| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for (_, cell) in fx.grid.cells() {
                    for &id in cell.points().ids() {
                        let coords = fx.window.coords(id).expect("valid tuple");
                        acc += fx.f.score(coords);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cell_scan);
criterion_main!(benches);
