//! Criterion micro-benchmarks for the two initial-computation paths: the
//! paper's top-k computation module (grid traversal) and the TA baseline
//! (sorted lists), over identical window contents.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkm_common::{QuerySlot, ScoreFn, Timestamp};
use tkm_core::influence::cleanup_from_frontier;
use tkm_core::{compute_topk, ComputeScratch, InfluenceUpdate};
use tkm_datagen::{DataDist, PointGen};
use tkm_grid::{CellMode, Grid, InfluenceTable};
use tkm_tsl::{ta_search, SortedLists};
use tkm_window::{Window, WindowSpec};

const N: usize = 50_000;
const DIMS: usize = 4;

struct Fixture {
    grid: Grid,
    lists: SortedLists,
    window: Window,
    f: ScoreFn,
}

fn fixture(dist: DataDist) -> Fixture {
    let mut gen = PointGen::new(DIMS, dist, 99).expect("dims");
    let mut grid = Grid::with_cell_budget(DIMS, 20_736, CellMode::Fifo).expect("budget");
    let mut lists = SortedLists::new(DIMS).expect("dims");
    let mut window = Window::new(DIMS, WindowSpec::Count(N)).expect("config");
    let mut buf = [0.0f64; tkm_common::MAX_DIMS];
    for _ in 0..N {
        gen.fill(&mut buf);
        let coords = &buf[..DIMS];
        let id = window.insert(coords, Timestamp(0)).expect("insert");
        grid.insert_point(coords, id);
        lists.insert(id, coords);
    }
    let f = ScoreFn::linear(vec![0.8, 0.3, 0.6, 0.9]).expect("dims");
    Fixture {
        grid,
        lists,
        window,
        f,
    }
}

fn bench_compute_module(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_computation");
    group.sample_size(30);
    for dist in [DataDist::Ind, DataDist::Ant] {
        let fx = fixture(dist);
        let mut scratch = ComputeScratch::new(fx.grid.num_cells());
        let mut influence = InfluenceTable::new(fx.grid.num_cells());
        for k in [1usize, 20, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("grid_{}", dist.label()), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        let out = compute_topk(
                            &fx.grid,
                            &mut scratch,
                            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
                            &fx.f,
                            k,
                            None,
                            false,
                            None,
                        );
                        // Unregister again so every iteration starts clean.
                        cleanup_from_frontier(
                            &fx.grid,
                            &mut influence,
                            &mut scratch,
                            QuerySlot(0),
                            &fx.f,
                            None,
                        );
                        black_box(out.top.len())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ta_{}", dist.label()), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        let (res, _) = ta_search(&fx.lists, &fx.window, &fx.f, k);
                        black_box(res.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compute_module);
criterion_main!(benches);
