//! Criterion microbenchmark of the maintenance hot path: per-tick event
//! replay (ingest an arrival burst, replay it against every registered
//! query, absorb the matching expiries) at Q ∈ {16, 256, 4096} queries.
//!
//! This measures exactly the loop the dense-registry / flat-influence /
//! cell-grouped-replay design targets; the `replay` bench *binary* runs the
//! same scenarios end-to-end and emits the committed `BENCH_hotpath.json`
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tkm_common::{QueryId, Timestamp};
use tkm_core::{GridSpec, Query, SmaMonitor, TmaMonitor};
use tkm_datagen::{FnFamily, QueryGen, StreamSim};
use tkm_window::WindowSpec;

const DIMS: usize = 2;
const WINDOW: usize = 20_000;
const RATE: usize = 1_000;
const K: usize = 10;
const GRID_CELLS: usize = 4_096;
const QUERY_COUNTS: [usize; 3] = [16, 256, 4096];

/// Builds a warmed monitor with `q` registered queries plus the stream
/// that continues where the warm-up stopped.
fn prepared<M>(
    q: usize,
    build: impl Fn() -> M,
    mut register: impl FnMut(&mut M, QueryId, Query),
    mut tick: impl FnMut(&mut M, Timestamp, &[f64]),
) -> (M, StreamSim) {
    let mut monitor = build();
    let mut stream =
        StreamSim::new(DIMS, tkm_datagen::DataDist::Ind, RATE, 20060627).expect("dims");
    let mut remaining = WINDOW;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        tick(&mut monitor, ts, batch);
        remaining -= chunk;
    }
    let workload = QueryGen::new(DIMS, FnFamily::Linear, 0x9e37_79b9)
        .expect("dims")
        .workload(q);
    for (i, f) in workload.into_iter().enumerate() {
        register(
            &mut monitor,
            QueryId(i as u64),
            Query::top_k(f, K).expect("k"),
        );
    }
    (monitor, stream)
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(20);
    for q in QUERY_COUNTS {
        let (mut tma, mut stream) = prepared(
            q,
            || {
                TmaMonitor::new(
                    DIMS,
                    WindowSpec::Count(WINDOW),
                    GridSpec::CellBudget(GRID_CELLS),
                )
                .expect("config")
            },
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| m.tick(ts, b).expect("tick"),
        );
        group.bench_with_input(BenchmarkId::new("tma_burst", q), &q, |b, _| {
            b.iter(|| {
                let (ts, batch) = stream.next_batch();
                tma.tick(ts, batch).expect("tick");
            })
        });

        let (mut sma, mut stream) = prepared(
            q,
            || {
                SmaMonitor::new(
                    DIMS,
                    WindowSpec::Count(WINDOW),
                    GridSpec::CellBudget(GRID_CELLS),
                )
                .expect("config")
            },
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| m.tick(ts, b).expect("tick"),
        );
        group.bench_with_input(BenchmarkId::new("sma_burst", q), &q, |b, _| {
            b.iter(|| {
                let (ts, batch) = stream.next_batch();
                sma.tick(ts, batch).expect("tick");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
