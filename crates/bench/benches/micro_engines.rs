//! Criterion micro-benchmarks of a full processing cycle per engine at a
//! common steady-state setting (the per-tick costs the paper's figures
//! integrate over 100 cycles).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use tkm_common::QueryId;
use tkm_core::{GridSpec, Query, SmaMonitor, TmaMonitor};
use tkm_datagen::{DataDist, FnFamily, QueryGen, StreamSim};
use tkm_tsl::{KmaxPolicy, TslMonitor};
use tkm_window::WindowSpec;

const DIMS: usize = 4;
const N: usize = 50_000;
const R: usize = 500;
const Q: usize = 50;
const K: usize = 20;

/// Warm an engine through closures so the three monitors (with different
/// types) share the setup protocol.
fn setup<E>(
    mut build: impl FnMut() -> E,
    mut tick: impl FnMut(&mut E, tkm_common::Timestamp, &[f64]),
    mut register: impl FnMut(&mut E, QueryId, Query),
) -> (E, StreamSim) {
    let mut stream = StreamSim::new(DIMS, DataDist::Ind, R, 77).expect("dims");
    let mut engine = build();
    let mut remaining = N;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        tick(&mut engine, ts, batch);
        remaining -= chunk;
    }
    let workload = QueryGen::new(DIMS, FnFamily::Linear, 13)
        .expect("dims")
        .workload(Q);
    for (i, f) in workload.into_iter().enumerate() {
        register(
            &mut engine,
            QueryId(i as u64),
            Query::top_k(f, K).expect("k"),
        );
    }
    (engine, stream)
}

fn bench_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tick");
    group.sample_size(30);

    group.bench_function("tma", |b| {
        let (mut engine, mut stream) = setup(
            || TmaMonitor::new(DIMS, WindowSpec::Count(N), GridSpec::default()).expect("config"),
            |e, ts, batch| e.tick(ts, batch).expect("tick"),
            |e, id, q| e.register_query(id, q).expect("register"),
        );
        b.iter(|| {
            let (ts, batch) = stream.next_batch();
            engine.tick(ts, batch).expect("tick");
            black_box(engine.stats().ticks)
        })
    });

    group.bench_function("sma", |b| {
        let (mut engine, mut stream) = setup(
            || SmaMonitor::new(DIMS, WindowSpec::Count(N), GridSpec::default()).expect("config"),
            |e, ts, batch| e.tick(ts, batch).expect("tick"),
            |e, id, q| e.register_query(id, q).expect("register"),
        );
        b.iter(|| {
            let (ts, batch) = stream.next_batch();
            engine.tick(ts, batch).expect("tick");
            black_box(engine.stats().ticks)
        })
    });

    group.bench_function("tsl", |b| {
        let (mut engine, mut stream) = setup(
            || TslMonitor::new(DIMS, WindowSpec::Count(N), KmaxPolicy::Tuned).expect("config"),
            |e, ts, batch| e.tick(ts, batch).expect("tick"),
            |e, id, q| e.register_query(id, q.f, q.k).expect("register"),
        );
        b.iter(|| {
            let (ts, batch) = stream.next_batch();
            engine.tick(ts, batch).expect("tick");
            black_box(engine.stats().ticks)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ticks);
criterion_main!(benches);
