//! Figure 17: CPU time vs arrival rate r, IND and ANT.
//!
//! The paper varies r from 1K to 100K over a 1M window (0.1%–10% turnover
//! per cycle). Expected shape: all methods degrade with r; TMA/SMA beat
//! TSL throughout; the SMA-over-TMA gap widens on ANT where TMA's frequent
//! recomputations are expensive.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 17 — CPU time vs arrival rate",
        "Mouratidis et al., SIGMOD 2006, Figure 17 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["r", "TSL [s]", "TMA [s]", "SMA [s]"]);
        for thousands in [1usize, 5, 10, 50, 100] {
            let p = ExpParams {
                r: ExpParams::scale_r(scale, thousands),
                dist,
                ..base
            };
            let mut row = vec![p.r.to_string()];
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_secs(m.cpu_seconds));
            }
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!(
        "shape check: cost grows with r; the grid methods stay well below \
         TSL at every rate; SMA's edge over TMA is larger on ANT."
    );
}
