//! Figure 20: space requirements vs k, IND and ANT.
//!
//! Expected shape: all methods grow with k; TSL consumes the most (the d
//! extra sorted lists dominate); SMA slightly above TMA (dominance
//! counters + skyband slack).

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_mb;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 20 — space requirements vs number of results k",
        "Mouratidis et al., SIGMOD 2006, Figure 20 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["k", "TSL [MB]", "TMA [MB]", "SMA [MB]"]);
        for k in [1usize, 5, 10, 20, 50, 100] {
            let p = ExpParams { k, dist, ..base };
            let mut row = vec![k.to_string()];
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_mb(m.space_bytes));
            }
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!(
        "shape check: space grows mildly with k; TSL uses the most memory \
         (d sorted lists); SMA slightly above TMA."
    );
}
