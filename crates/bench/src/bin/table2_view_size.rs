//! Table 2: average view/skyband size per query vs k (TSL vs SMA).
//!
//! The paper reports, e.g., k = 20 → TSL 26.7 / SMA 21.6 on IND. Expected
//! shape: the SMA skyband stays much closer to k than TSL's kmax-sized
//! views — SMA continuously discards tuples that can never appear in a
//! result, TSL deliberately over-provisions to delay refills.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Table 2 — average view/skyband size per query",
        "Mouratidis et al., SIGMOD 2006, Table 2",
        scale,
        &base.summary(),
    );

    let mut table = Table::new(&["k", "TSL IND", "SMA IND", "TSL ANT", "SMA ANT"]);
    for k in [1usize, 5, 10, 20, 50, 100] {
        let mut row = vec![k.to_string()];
        for dist in [DataDist::Ind, DataDist::Ant] {
            let p = ExpParams { k, dist, ..base };
            for sel in [EngineSel::Tsl, EngineSel::Sma] {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(format!("{:.1}", m.avg_view_len));
            }
        }
        // Reorder: collected as (TSL-IND, SMA-IND, TSL-ANT, SMA-ANT) already.
        table.row(row);
    }
    cli::emit(&table);
    println!(
        "shape check: SMA's skyband holds barely more than k entries; TSL's \
         views sit between k and the tuned kmax (paper: 26.7 vs 21.6 at k=20)."
    );
}
