//! kmax fine-tuning for TSL (§8, text before Figure 15).
//!
//! The paper fine-tunes a static `kmax` per `k` (reporting 4, 10, 20, 30,
//! 70, 120 for k = 1, 5, 10, 20, 50, 100) and notes that the tuned static
//! values beat Yi et al.'s dynamic adjustment. This binary sweeps `kmax`
//! for each `k` and reports the CPU time plus the refill count, with the
//! dynamic policy as a final comparison row.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, ExpParams, Scale, Table};
use tkm_common::QueryId;
use tkm_core::Query;
use tkm_datagen::{QueryGen, StreamSim};
use tkm_tsl::{tuned_kmax, KmaxPolicy, TslMonitor};
use tkm_window::WindowSpec;

fn run_tsl(p: &ExpParams, policy: KmaxPolicy) -> (f64, u64) {
    let workload = QueryGen::new(p.dims, p.family, p.seed ^ 0x9e37_79b9_7f4a_7c15)
        .expect("valid dims")
        .workload(p.q);
    let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("valid dims");
    let mut m = TslMonitor::new(p.dims, WindowSpec::Count(p.n), policy).expect("valid config");
    let mut remaining = p.n;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        m.tick(ts, batch).expect("warmup tick");
        remaining -= chunk;
    }
    for (i, f) in workload.into_iter().enumerate() {
        let q = Query::top_k(f, p.k).expect("k > 0");
        m.register_query(QueryId(i as u64), q.f, q.k)
            .expect("register");
    }
    let before = m.stats().refills;
    let start = std::time::Instant::now();
    for _ in 0..p.ticks {
        let (ts, batch) = stream.next_batch();
        m.tick(ts, batch).expect("tick");
    }
    (start.elapsed().as_secs_f64(), m.stats().refills - before)
}

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "kmax tuning — TSL CPU time vs kmax per k",
        "Mouratidis et al., SIGMOD 2006, §8 (tuned kmax = 4/10/20/30/70/120)",
        scale,
        &base.summary(),
    );

    for k in [1usize, 10, 20, 50] {
        let tuned = tuned_kmax(k);
        let mut table = Table::new(&["kmax", "time [s]", "refills", "note"]);
        let mut candidates: Vec<usize> = vec![
            k,
            k + (tuned - k).div_ceil(2),
            tuned,
            tuned + (tuned - k).max(1),
            2 * tuned,
        ];
        candidates.dedup();
        for kmax in candidates {
            let (secs, refills) = run_tsl(&ExpParams { k, ..base }, KmaxPolicy::Fixed(kmax));
            let note = if kmax == tuned {
                "<- paper's tuned"
            } else {
                ""
            };
            table.row(vec![
                kmax.to_string(),
                fmt_secs(secs),
                refills.to_string(),
                note.into(),
            ]);
        }
        let (secs, refills) = run_tsl(&ExpParams { k, ..base }, KmaxPolicy::Dynamic);
        table.row(vec![
            "dynamic".into(),
            fmt_secs(secs),
            refills.to_string(),
            "Yi et al. adjustment".into(),
        ]);
        println!("--- k = {k} ---");
        cli::emit(&table);
    }
    println!(
        "shape check: kmax = k refills constantly; very large kmax slows the \
         per-arrival view probes; the tuned middle minimises time."
    );
}
