//! The `tkm_service` TCP server — and its loopback measurement harness.
//!
//! Three modes:
//!
//! * **serve** (default): bind the wire-protocol server and run until
//!   killed.
//!
//!   ```console
//!   $ cargo run --release -p tkm_bench --bin serve -- \
//!         --addr 127.0.0.1:7171 --dims 2 --window 10000 --tick-ms 100
//!   ```
//!
//! * **`--bench`**: in-process loopback measurement — one ingest client
//!   streams arrivals through a manually ticked service while N
//!   subscriber clients reconstruct their query's top-k from the delta
//!   stream; every subscriber is verified against both a server-side
//!   `SNAPSHOT` and an independent in-process engine oracle. Reports
//!   ingest throughput (tuples/s) and the delta propagation latency
//!   distribution (p50/p99, ingest send → subscriber apply).
//!
//! * **`--smoke`**: the same harness at CI scale (a second or so); used
//!   by the workflow as the end-to-end serving-layer gate.
//!
//! * **`--chaos`**: the loopback harness under a seeded fault plan — a
//!   fraction of the subscriber sessions get their sockets reset,
//!   truncated mid-line, byte-garbled, write-stalled, or short-written
//!   while the ingest stream runs. Self-healing clients must reconnect,
//!   re-subscribe, and re-baseline; every subscriber (survivor or
//!   reconnector) is then verified bit-exact against the in-process
//!   oracle. `--seed` pins the run; `--fault` overrides the schedule DSL
//!   (`sid=kind@at[+every][:ms];.. | ..`). Combine with `--smoke` for CI
//!   scale.
//!
//! * **`--fanout`**: the subscriber fan-out sweep — for each tier of the
//!   sweep (1k/5k/10k subscribers; one tier with `--smoke` or an explicit
//!   `--subs N`) the parent binds a fresh server and spawns *itself* as a
//!   `--fanout-client` child process that opens the whole subscriber
//!   fleet (so each process stays inside its fd limit), drives the tick
//!   loop, and measures how long the reactor takes to push every tick's
//!   delta to the entire fleet. Reports fan-out pushes/s and the push
//!   completion latency distribution per tier, and asserts the
//!   encode-once invariant server-side (`STATS encodes= == deltas=`).
//!   `--check-baseline BENCH_fanout.json` compares the largest tier's
//!   rate and p99 against the committed baseline — a hard failure on the
//!   full sweep (dedicated hardware), warn-only under `--smoke` (shared
//!   CI runners have too much CPU variance for a wall-clock gate); the
//!   functional assertions (missed delivery, encode-once) fail hard in
//!   both modes.
//!
//! * **`--sites N`**: multi-site mode — N site services each run a local
//!   engine on their shard of the stream and ship only candidate deltas
//!   (plus a per-cycle watermark) to a coordinator that merges them into
//!   the global top-k, while a single-node oracle ingests the full
//!   stream directly. Reports uplink bytes shipped vs naive stream
//!   forwarding and the ingest→merge→push latency distribution, then
//!   verifies the merged results bit-exact against the oracle.
//!   `--check-baseline BENCH_distrib.json` gates the byte ratio (≥5×
//!   reduction, no >1.5× regression) and the merge p99. Combined with
//!   `--chaos`: a seeded site-kill soak — one site (picked by `--seed`)
//!   is killed a third of the way in and restarted at two thirds; the
//!   coordinator must keep answering every round (flagged `DEGRADED`),
//!   heal on re-enrollment, and still land bit-exact on the oracle.
//!
//! `--json` prints the measurement as a single JSON object on stdout.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tkm_core::{EngineKind, MonitorServer, Query, ServerConfig};
use tkm_datagen::{DataDist, PointGen};
use tkm_service::{
    apply_push, FaultSchedule, FramedLine, LineFramer, Poller, Push, ReconnectPolicy, Role,
    Service, ServiceClient, ServiceConfig, SiteRole, TickPolicy, MAX_REQUEST_LINE,
};
use tkm_window::WindowSpec;

struct Args {
    addr: String,
    dims: usize,
    window: usize,
    engine: EngineKind,
    tick_ms: u64,
    push_queue: usize,
    clients: usize,
    ticks: usize,
    rate: usize,
    k: usize,
    smoke: bool,
    bench: bool,
    chaos: bool,
    fanout: bool,
    fanout_client: bool,
    subs: usize,
    sites: usize,
    seed: u64,
    fault: Option<String>,
    baseline: Option<String>,
    json: bool,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let bench = argv.iter().any(|a| a == "--bench");
    let fanout = argv.iter().any(|a| a == "--fanout");
    let fanout_client = argv.iter().any(|a| a == "--fanout-client");
    let sites = parse_num(&argv, "--sites", 0usize);
    // Smoke is a small bench; bench is the default-scale measurement.
    // Multi-site runs push a higher per-tick rate: candidate shipping
    // wins over stream forwarding exactly when rate ≫ top-k churn, and
    // the byte-ratio gate measures that margin. Fan-out runs are few
    // ticks over huge fleets: per-tick cost scales with subscribers, and
    // each tick already yields one latency sample per subscriber.
    let (clients, ticks, rate, window) = if fanout || fanout_client {
        if smoke {
            (0, 8, 0, 2_000)
        } else {
            (0, 12, 0, 2_000)
        }
    } else if sites > 0 {
        if smoke {
            (4, 40, 200, 2_000)
        } else {
            (8, 150, 600, 10_000)
        }
    } else if smoke {
        (4, 60, 40, 2_000)
    } else {
        (8, 300, 200, 10_000)
    };
    Args {
        addr: flag_value(&argv, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into()),
        dims: parse_num(&argv, "--dims", 2),
        window: parse_num(&argv, "--window", window),
        engine: match flag_value(&argv, "--engine").as_deref() {
            Some("tma") => EngineKind::Tma,
            Some("tsl") => EngineKind::Tsl,
            _ => EngineKind::Sma,
        },
        tick_ms: parse_num(&argv, "--tick-ms", 100),
        push_queue: parse_num(&argv, "--push-queue", 1024),
        clients: parse_num(&argv, "--clients", clients),
        ticks: parse_num(&argv, "--ticks", ticks),
        rate: parse_num(&argv, "--rate", rate),
        k: parse_num(&argv, "--k", 8),
        smoke,
        bench,
        chaos: argv.iter().any(|a| a == "--chaos"),
        fanout,
        fanout_client,
        subs: parse_num(&argv, "--subs", 0usize),
        sites,
        seed: parse_num(&argv, "--seed", 0xC4A05),
        fault: flag_value(&argv, "--fault"),
        baseline: flag_value(&argv, "--check-baseline"),
        json: argv.iter().any(|a| a == "--json"),
    }
}

fn server_config(args: &Args) -> ServerConfig {
    ServerConfig::sma(args.dims, args.window).with_engine(args.engine)
}

fn main() {
    let args = parse_args();
    if args.fanout_client {
        fanout_client(&args);
    } else if args.fanout {
        fanout(&args);
    } else if args.sites > 0 {
        distrib(&args);
    } else if args.chaos {
        chaos(&args);
    } else if args.smoke || args.bench {
        loopback(&args);
    } else {
        serve_forever(&args);
    }
}

fn serve_forever(args: &Args) {
    let cfg = ServiceConfig::new(server_config(args))
        .with_tick(TickPolicy::Interval(std::time::Duration::from_millis(
            args.tick_ms.max(1),
        )))
        .with_push_queue(args.push_queue);
    let service = Service::bind(args.addr.as_str(), cfg).expect("bind");
    println!(
        "serving {} (dims={}, window={}) on {} — one cycle per {}ms, push cap {}",
        engine_name(args.engine),
        args.dims,
        args.window,
        service.local_addr(),
        args.tick_ms.max(1),
        args.push_queue
    );
    println!("protocol: see the README `Serving` section. Ctrl-C to stop.");
    loop {
        std::thread::park();
    }
}

/// Per-subscriber outcome of the loopback run.
struct SubOutcome {
    /// Delta latencies (ingest send → subscriber apply), microseconds.
    latencies_us: Vec<f64>,
    /// Pushes applied (deltas + snapshots).
    pushes: usize,
    /// Verification verdict.
    ok: bool,
}

fn loopback(args: &Args) {
    let scfg = server_config(args);
    let service = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg).with_push_queue(args.push_queue),
    )
    .expect("bind loopback");
    let addr = service.local_addr();

    // The independent oracle: the same engine configuration fed the same
    // batches directly, bypassing the wire entirely.
    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    // Pre-register every subscriber's query through a control connection
    // so ids are known up front; weights vary per subscriber.
    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut weight_sets = Vec::new();
    let mut query_ids = Vec::new();
    for c in 0..args.clients {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        let id = control.register_linear(args.k, &weights).expect("register");
        let f = tkm_common::ScoreFn::linear(weights.clone()).unwrap();
        oracle
            .register(Query::top_k(f, args.k).unwrap())
            .expect("oracle register");
        weight_sets.push(weights);
        query_ids.push(id);
    }

    // Send instants per tick (index = at - 1), shared with subscribers.
    let send_instants: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let total_ticks = args.ticks + 1; // + the guaranteed-delta sentinel

    let mut subs = Vec::new();
    for (c, q) in query_ids.iter().enumerate() {
        let q = *q;
        let instants = Arc::clone(&send_instants);
        let data_ticks = args.ticks;
        subs.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("subscriber connect");
            let baseline = client.subscribe(q).expect("subscribe");
            let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
            let mut outcome = SubOutcome {
                latencies_us: Vec::new(),
                pushes: 0,
                ok: true,
            };
            // Read pushes until the sentinel tick reaches this query.
            loop {
                let push = client.next_push().expect("push stream");
                let received = Instant::now();
                let at = match &push {
                    Push::Delta { at, .. } | Push::Snapshot { at, .. } => Some(at.0),
                    _ => None,
                };
                apply_push(&mut mirror, &push);
                outcome.pushes += 1;
                if let Some(at) = at {
                    if at >= 1 && at as usize <= data_ticks {
                        let sent = instants.lock().unwrap()[at as usize - 1];
                        outcome
                            .latencies_us
                            .push(received.duration_since(sent).as_secs_f64() * 1e6);
                    }
                    if at as usize > data_ticks {
                        break; // sentinel observed
                    }
                }
            }
            // The wire's own view of the truth…
            let (_, wire_expected) = client.snapshot(q).expect("final snapshot");
            while let Some(push) = client.try_buffered_push() {
                apply_push(&mut mirror, &push);
            }
            if mirror.get(&q).map(Vec::as_slice) != Some(wire_expected.as_slice()) {
                eprintln!("subscriber {c}: delta reconstruction != server snapshot");
                outcome.ok = false;
            }
            let _ = client.quit();
            (outcome, mirror.remove(&q).unwrap_or_default())
        }));
    }

    // Ingest: one client streams `ticks` cycles of `rate` tuples, then the
    // sentinel cycle of k max-score tuples (score 1·Σw beats any interior
    // point, so every query's result changes and every subscriber
    // observes the final tick).
    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let mut gen = PointGen::new(args.dims, DataDist::Ind, 42).expect("gen");
    let started = Instant::now();
    let mut batches: Vec<Vec<f64>> = Vec::with_capacity(total_ticks);
    for _ in 0..args.ticks {
        let mut batch = Vec::with_capacity(args.rate * args.dims);
        for _ in 0..args.rate {
            batch.extend(gen.point());
        }
        batches.push(batch);
    }
    batches.push(vec![1.0; args.k * args.dims]); // sentinel
    let gen_elapsed = started.elapsed();

    let ingest_start = Instant::now();
    for batch in &batches {
        send_instants.lock().unwrap().push(Instant::now());
        ingest.tick(batch).expect("tick");
    }
    let ingest_elapsed = ingest_start.elapsed();

    // Feed the oracle the same batches.
    for batch in &batches {
        oracle.tick(batch).expect("oracle tick");
    }

    // Collect subscribers and verify against the oracle.
    let mut latencies = Vec::new();
    let mut pushes = 0usize;
    let mut all_ok = true;
    for (c, handle) in subs.into_iter().enumerate() {
        let (outcome, mirror) = handle.join().expect("subscriber thread");
        latencies.extend(outcome.latencies_us);
        pushes += outcome.pushes;
        all_ok &= outcome.ok;
        let expected = oracle.result(query_ids[c]).expect("oracle result");
        if mirror != expected {
            eprintln!("subscriber {c}: delta reconstruction != in-process oracle");
            all_ok = false;
        }
    }

    let stats = ingest.stats().expect("stats");
    let _ = ingest.quit();
    let _ = control.quit();
    service.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let tuples: usize = batches.iter().map(|b| b.len()).sum::<usize>() / args.dims;
    let tuples_per_s = tuples as f64 / ingest_elapsed.as_secs_f64();

    if args.json {
        println!(
            "{{\"mode\":\"{}\",\"engine\":\"{}\",\"dims\":{},\"window\":{},\"clients\":{},\
             \"ticks\":{},\"tuples\":{},\"tuples_per_s\":{:.0},\"delta_p50_us\":{:.1},\
             \"delta_p99_us\":{:.1},\"deltas_applied\":{},\"resyncs\":{},\"ok\":{}}}",
            if args.smoke { "smoke" } else { "bench" },
            stats.get("engine").map(String::as_str).unwrap_or("?"),
            args.dims,
            args.window,
            args.clients,
            total_ticks,
            tuples,
            tuples_per_s,
            pct(0.50),
            pct(0.99),
            pushes,
            stats.get("resyncs").map(String::as_str).unwrap_or("0"),
            all_ok
        );
    } else {
        println!(
            "== serve loopback ({}) ==",
            if args.smoke { "smoke" } else { "bench" }
        );
        println!(
            "   {} clients × top-{} over {} engine, window {} (d={})",
            args.clients,
            args.k,
            stats.get("engine").map(String::as_str).unwrap_or("?"),
            args.window,
            args.dims
        );
        println!(
            "   {} ticks, {} tuples in {:.3}s ingest wall time (+{:.3}s datagen)",
            total_ticks,
            tuples,
            ingest_elapsed.as_secs_f64(),
            gen_elapsed.as_secs_f64()
        );
        println!("   ingest throughput : {tuples_per_s:>10.0} tuples/s over the wire");
        println!(
            "   delta latency     : p50 {:.1}µs   p99 {:.1}µs   ({} samples)",
            pct(0.50),
            pct(0.99),
            latencies.len()
        );
        println!(
            "   pushes applied: {pushes}   resyncs: {}   verification: {}",
            stats.get("resyncs").map(String::as_str).unwrap_or("0"),
            if all_ok { "oracle-identical" } else { "FAILED" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
}

/// Default chaos schedule: every other subscriber session (1-based; the
/// control connection is session 0) gets a fault, cycling through the
/// kill/corrupt kinds — ≥50% of the fleet is hit.
fn default_fault_dsl(clients: usize) -> String {
    let kinds = [
        "reset@10",
        "garble@8",
        "truncate@14",
        "stall-write@9+25:10",
        "partial@6+30",
    ];
    let mut parts = Vec::new();
    for (n, sid) in (1..=clients).step_by(2).enumerate() {
        parts.push(format!("{sid}={}", kinds[n % kinds.len()]));
    }
    parts.join("|")
}

fn chaos(args: &Args) {
    let scfg = server_config(args);
    let dsl = args
        .fault
        .clone()
        .unwrap_or_else(|| default_fault_dsl(args.clients));
    let faulted = dsl
        .split('|')
        .filter(|p| !p.trim_start().starts_with('*'))
        .count();
    let schedule = FaultSchedule::parse(&dsl, args.seed).expect("fault schedule DSL");
    let service = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg)
            .with_push_queue(args.push_queue)
            .with_faults(schedule),
    )
    .expect("bind chaos loopback");
    let addr = service.local_addr();

    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    // Control dials first (session 0 — never faulted by the default plan)
    // and registers every query, keeping wire ids positional with the
    // oracle's.
    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut query_ids = Vec::new();
    for c in 0..args.clients {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        let id = control.register_linear(args.k, &weights).expect("register");
        let f = tkm_common::ScoreFn::linear(weights).unwrap();
        oracle
            .register(Query::top_k(f, args.k).unwrap())
            .expect("oracle register");
        query_ids.push(id);
    }

    // Subscribers connect *serially* so session ids — and therefore which
    // connection each fault plan hits — are deterministic: sessions 1..=N.
    // Reconnected sessions get fresh ids outside the plan and run clean.
    let mut clients = Vec::new();
    for (i, q) in query_ids.iter().enumerate() {
        let policy = ReconnectPolicy {
            base: std::time::Duration::from_millis(5),
            max: std::time::Duration::from_millis(100),
            retries: 40,
            seed: args.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..ReconnectPolicy::default()
        };
        let mut client = ServiceClient::connect(addr)
            .expect("subscriber connect")
            .with_reconnect(policy);
        let baseline = client.subscribe(*q).expect("subscribe");
        clients.push((client, *q, baseline));
    }

    let data_ticks = args.ticks;
    let subs: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, (mut client, q, baseline))| {
            let hit = i % 2 == 0; // sessions 1,3,5,.. carry the default plan
            std::thread::spawn(move || {
                let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
                let mut pushes = 0usize;
                // Ride out the stream (auto-resuming on faults) until a
                // push timestamped after the sentinel tick arrives —
                // either the sentinel delta itself or a post-sentinel
                // re-baseline snapshot.
                loop {
                    let push = client.next_push().expect("push stream");
                    apply_push(&mut mirror, &push);
                    pushes += 1;
                    let at = match &push {
                        Push::Delta { at, .. } | Push::Snapshot { at, .. } => at.0 as usize,
                        _ => 0,
                    };
                    if at > data_ticks {
                        break;
                    }
                }
                // A garbled byte can corrupt a score digit into a line
                // that still parses; the protocol's recovery story is an
                // explicit re-baseline, so every faulted subscriber ends
                // with one.
                if hit {
                    client.resume().expect("post-soak re-baseline");
                    loop {
                        match client.next_push().expect("re-baseline push") {
                            p @ Push::Snapshot { .. } => {
                                apply_push(&mut mirror, &p);
                                break;
                            }
                            p => {
                                apply_push(&mut mirror, &p);
                            }
                        }
                    }
                }
                (
                    client.reconnects(),
                    pushes,
                    mirror.remove(&q).unwrap_or_default(),
                )
            })
        })
        .collect();

    // Ingest (session N+1 — outside the default plan) streams the soak,
    // then a sentinel cycle of max-score tuples so every query's result
    // changes on the final tick.
    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let mut gen = PointGen::new(args.dims, DataDist::Ind, args.seed ^ 42).expect("gen");
    let mut batches: Vec<Vec<f64>> = Vec::with_capacity(data_ticks + 1);
    for _ in 0..data_ticks {
        let mut batch = Vec::with_capacity(args.rate * args.dims);
        for _ in 0..args.rate {
            batch.extend(gen.point());
        }
        batches.push(batch);
    }
    batches.push(vec![1.0; args.k * args.dims]); // sentinel
    let started = Instant::now();
    for batch in &batches {
        ingest.tick(batch).expect("tick");
        oracle.tick(batch).expect("oracle tick");
    }
    let soak_elapsed = started.elapsed();

    let mut reconnects = 0u64;
    let mut pushes = 0usize;
    let mut all_ok = true;
    for (c, handle) in subs.into_iter().enumerate() {
        let (reconn, applied, mirror) = handle.join().expect("subscriber thread");
        reconnects += reconn;
        pushes += applied;
        let expected = oracle.result(query_ids[c]).expect("oracle result");
        if mirror != expected {
            eprintln!("subscriber {c}: reconstruction != in-process oracle after chaos");
            all_ok = false;
        }
    }

    // Server-side truth must match the oracle too.
    for (c, q) in query_ids.iter().enumerate() {
        let (_, wire) = control.snapshot(*q).expect("verify snapshot");
        let expected = oracle.result(*q).expect("oracle result");
        if wire != expected {
            eprintln!("query {c}: server snapshot != in-process oracle after chaos");
            all_ok = false;
        }
    }

    let stats = control.stats().expect("stats");
    let stat = |k: &str| stats.get(k).map(String::as_str).unwrap_or("0").to_string();
    let injected: u64 = stat("faults").parse().unwrap_or(0);
    if injected == 0 {
        eprintln!("chaos plan never fired (faults=0)");
        all_ok = false;
    }
    if faulted > 0 && reconnects == 0 {
        eprintln!("no subscriber ever reconnected under {faulted} faulted sessions");
        all_ok = false;
    }
    let _ = ingest.quit();
    let _ = control.quit();
    service.shutdown();

    if args.json {
        println!(
            "{{\"mode\":\"chaos\",\"engine\":\"{}\",\"dims\":{},\"window\":{},\"clients\":{},\
             \"faulted\":{},\"seed\":{},\"ticks\":{},\"pushes\":{},\"reconnects\":{},\
             \"resyncs\":{},\"reaped\":{},\"shed\":{},\"faults\":{},\"ok\":{}}}",
            stat("engine"),
            args.dims,
            args.window,
            args.clients,
            faulted,
            args.seed,
            data_ticks + 1,
            pushes,
            reconnects,
            stat("resyncs"),
            stat("reaped"),
            stat("shed"),
            injected,
            all_ok
        );
    } else {
        println!("== serve chaos soak ==");
        println!(
            "   {} clients ({faulted} faulted) × top-{} over {} engine, window {} (d={})",
            args.clients,
            args.k,
            stat("engine"),
            args.window,
            args.dims
        );
        println!("   plan: {dsl}  (seed {})", args.seed);
        println!(
            "   {} ticks in {:.3}s — {pushes} pushes applied, {reconnects} reconnects, \
             {} resyncs, {injected} faults injected",
            data_ticks + 1,
            soak_elapsed.as_secs_f64(),
            stat("resyncs"),
        );
        println!(
            "   verification: {}",
            if all_ok { "oracle-identical" } else { "FAILED" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
}

/// Subscriber-count tiers of the full `--fanout` sweep.
const FANOUT_TIERS: [usize; 3] = [1_000, 5_000, 10_000];
/// Distinct queries backing the fleet; subscriber `i` follows query
/// `i % FANOUT_QUERIES`, so the encode-once path amortizes each tick's
/// `FANOUT_QUERIES` encodes over the whole fleet.
const FANOUT_QUERIES: usize = 64;
/// Minimum acceptable fan-out rate (push lines delivered per second) at
/// the gated tier.
const FANOUT_RATE_FLOOR: f64 = 10_000.0;
/// A committed fan-out rate may erode by at most this factor.
const FANOUT_RATE_REGRESSION: f64 = 2.0;
/// Push-completion p99 may regress by at most this factor …
const FANOUT_P99_REGRESSION: f64 = 4.0;
/// … and only counts as a regression above this absolute floor
/// (scheduler jitter on a loopback fleet is large in relative terms).
const FANOUT_P99_FLOOR_US: f64 = 50_000.0;

fn engine_name(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Tma => "TMA",
        EngineKind::Sma => "SMA",
        EngineKind::Tsl => "TSL",
        EngineKind::Oracle => "ORACLE",
    }
}

/// Extracts the `@<t>` timestamp of a `DELTA`/`SNAPSHOT` push line
/// without paying for a full parse — the fan-out client classifies tens
/// of thousands of lines per tick on one core.
fn push_at(line: &str) -> Option<u64> {
    let pos = line.find(" @")?;
    let rest = &line[pos + 2..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One subscriber socket of the fan-out fleet.
struct FanSub {
    stream: TcpStream,
    framer: LineFramer,
    /// Highest push timestamp seen (`u64::MAX` once the socket died).
    last_at: u64,
}

/// The `--fanout-client` child process: opens `--subs` subscriber sockets
/// against the parent's server (split across two processes so each side
/// stays inside its fd limit), drives the tick loop from its own ingest
/// connection, and measures per tick how long the server's reactor takes
/// to push that tick's delta to the *entire* fleet. Prints one flat JSON
/// object on stdout for the parent to merge.
fn fanout_client(args: &Args) {
    let n = args.subs.max(1);
    let nq = n.min(FANOUT_QUERIES);
    let addr = args.addr.as_str();

    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut query_ids = Vec::with_capacity(nq);
    for c in 0..nq {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        query_ids.push(control.register_linear(args.k, &weights).expect("register"));
    }

    // The fleet: raw nonblocking sockets driven by the service crate's own
    // exported `Poller`, with its `LineFramer` reassembling the push
    // stream across partial reads. The handshake (baseline `SNAPSHOT`,
    // then `OK`) runs blocking; measurement runs level-triggered.
    let mut poller = Poller::new().expect("poller");
    let mut subs: Vec<FanSub> = Vec::with_capacity(n);
    let mut buf = [0u8; 4096];
    for i in 0..n {
        let q = query_ids[i % nq];
        let mut stream = TcpStream::connect(addr).expect("subscriber connect");
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream
            .write_all(format!("SUBSCRIBE {q}\n").as_bytes())
            .expect("subscribe");
        let mut framer = LineFramer::new(MAX_REQUEST_LINE);
        'handshake: loop {
            while let Some(line) = framer.next_line() {
                match line {
                    FramedLine::Line(l) if l.starts_with("OK") => break 'handshake,
                    FramedLine::Line(l) if l.starts_with("ERR") => {
                        panic!("subscriber {i}: {l}")
                    }
                    FramedLine::Line(_) => {} // the baseline SNAPSHOT push
                    bad => panic!("subscriber {i}: framing error {bad:?}"),
                }
            }
            let got = stream.read(&mut buf).expect("handshake read");
            assert!(got > 0, "server closed subscriber {i} during handshake");
            framer.feed(&buf[..got]);
        }
        stream.set_read_timeout(None).expect("clear timeout");
        stream.set_nonblocking(true).expect("nonblocking");
        poller
            .add(stream.as_raw_fd(), i as u64, true, false)
            .expect("poller add");
        subs.push(FanSub {
            stream,
            framer,
            last_at: 0,
        });
    }

    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let ticks = args.ticks as u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(n * args.ticks);
    let mut events = Vec::new();
    let mut pushes = 0u64;
    let mut resyncs = 0u64;
    let mut ok = true;
    let started = Instant::now();
    'ticks: for t in 1..=ticks {
        // Each tick's single tuple scores strictly above every predecessor
        // under any positive-weight linear query, so it enters every
        // top-k and every query emits exactly one DELTA per tick.
        let batch = vec![0.5 + t as f64 * 1e-6; args.dims];
        let sent = Instant::now();
        ingest.tick(&batch).expect("tick");
        let mut behind = subs.iter().filter(|s| s.last_at < t).count();
        let deadline = sent + Duration::from_secs(60);
        while behind > 0 {
            if Instant::now() > deadline {
                eprintln!("tick {t}: {behind} subscribers never saw their delta");
                ok = false;
                break 'ticks;
            }
            poller
                .wait(&mut events, Duration::from_millis(100))
                .expect("poller wait");
            for ev in &events {
                let s = &mut subs[ev.token as usize];
                if s.last_at == u64::MAX {
                    continue;
                }
                let mut dead = false;
                loop {
                    match s.stream.read(&mut buf) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(got) => s.framer.feed(&buf[..got]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                while let Some(line) = s.framer.next_line() {
                    let FramedLine::Line(line) = line else {
                        dead = true;
                        break;
                    };
                    pushes += 1;
                    if line.starts_with("RESYNC") {
                        resyncs += 1;
                        continue;
                    }
                    // A backpressure re-baseline SNAPSHOT at >= t counts
                    // as catching up too: the subscriber holds tick t's
                    // state even though the delta itself was dropped.
                    if let Some(at) = push_at(&line) {
                        let was_behind = s.last_at < t;
                        if at > s.last_at {
                            s.last_at = at;
                        }
                        if was_behind && s.last_at >= t {
                            behind -= 1;
                            latencies.push(sent.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                }
                if dead {
                    eprintln!("subscriber {} died mid-run", ev.token);
                    ok = false;
                    poller.remove(s.stream.as_raw_fd());
                    if s.last_at < t {
                        behind -= 1;
                    }
                    s.last_at = u64::MAX;
                }
            }
        }
    }
    let elapsed = started.elapsed();

    // The encode-once invariant, asserted against the server's own
    // counters: every engine delta was encoded exactly once, no matter
    // how many subscribers its bytes fanned out to.
    let stats = ingest.stats().expect("stats");
    let stat_num = |k: &str| -> u64 { stats.get(k).and_then(|v| v.parse().ok()).unwrap_or(0) };
    let encodes = stat_num("encodes");
    let deltas = stat_num("deltas");
    if encodes != deltas || encodes == 0 {
        eprintln!("encode-once violated: encodes={encodes} != deltas={deltas}");
        ok = false;
    }
    let _ = ingest.quit();
    let _ = control.quit();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let per_s = pushes as f64 / elapsed.as_secs_f64();
    println!(
        "{{\"subs\":{n},\"queries\":{nq},\"ticks\":{ticks},\"pushes\":{pushes},\
         \"pushes_per_s\":{per_s:.0},\"push_p50_us\":{:.1},\"push_p99_us\":{:.1},\
         \"resyncs\":{resyncs},\"encodes\":{encodes},\"deltas\":{deltas},\"ok\":{ok}}}",
        pct(0.50),
        pct(0.99),
    );
    if !ok {
        std::process::exit(1);
    }
}

/// Scans the committed fan-out baseline for the matching subscriber
/// tier's `key` — tier objects are flat, so anchoring on `"subs":N` and
/// scanning forward stays inside that tier.
fn json_tier_num(text: &str, subs: usize, key: &str) -> Option<f64> {
    let anchor = format!("\"subs\":{subs},");
    let start = text.find(&anchor)?;
    json_num(&text[start..], key)
}

/// Compares the gated (largest) tier of this fan-out run against the
/// same tier of the committed baseline: the push rate must clear
/// [`FANOUT_RATE_FLOOR`] and not erode more than
/// [`FANOUT_RATE_REGRESSION`] below the committed value, and the push
/// completion p99 must stay within [`FANOUT_P99_REGRESSION`] of it
/// (above the absolute jitter floor).
///
/// `Err` is structural (unreadable baseline, missing tier) and always
/// fails the run; the returned list holds wall-clock *perf* findings,
/// whose severity the caller decides (hard on the full sweep, warn-only
/// in `--smoke` where shared-runner CPU variance would make them flaky).
fn check_fanout_baseline(
    path: &str,
    subs: usize,
    per_s: f64,
    p99_us: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("check-baseline: cannot read {path}: {e}"))?;
    let base_rate = json_tier_num(&text, subs, "pushes_per_s")
        .ok_or_else(|| format!("check-baseline: {path} has no {subs}-subscriber tier"))?;
    let base_p99 = json_tier_num(&text, subs, "push_p99_us")
        .ok_or_else(|| format!("check-baseline: {path} tier {subs} has no push_p99_us"))?;
    let mut findings = Vec::new();
    if per_s < FANOUT_RATE_FLOOR {
        findings.push(format!(
            "check-baseline: fan-out rate {per_s:.0}/s is below the \
             {FANOUT_RATE_FLOOR:.0}/s floor"
        ));
    }
    if per_s * FANOUT_RATE_REGRESSION < base_rate {
        findings.push(format!(
            "check-baseline: fan-out rate regressed >{FANOUT_RATE_REGRESSION}x: \
             {per_s:.0}/s now vs {base_rate:.0}/s in {path}"
        ));
    }
    if p99_us > base_p99 * FANOUT_P99_REGRESSION && p99_us > FANOUT_P99_FLOOR_US {
        findings.push(format!(
            "check-baseline: push p99 regressed >{FANOUT_P99_REGRESSION}x: \
             {p99_us:.0}µs now vs {base_p99:.0}µs in {path}"
        ));
    }
    Ok(findings)
}

/// The `--fanout` parent: per tier, binds a fresh server and re-executes
/// this binary as a `--fanout-client` child owning the whole subscriber
/// fleet, then merges the child's measurement with the server-side
/// verdict. Two processes keep a 10k-subscriber tier inside both sides'
/// fd limits — the server holds the accepted sockets, the child the
/// connecting ones.
fn fanout(args: &Args) {
    let tiers: Vec<usize> = if args.subs > 0 {
        vec![args.subs]
    } else if args.smoke {
        vec![FANOUT_TIERS[0]]
    } else {
        FANOUT_TIERS.to_vec()
    };
    let exe = std::env::current_exe().expect("current exe");
    let mut tier_json: Vec<String> = Vec::new();
    let mut all_ok = true;
    let started = Instant::now();
    for &nsubs in &tiers {
        let scfg = server_config(args);
        let service = Service::bind(
            "127.0.0.1:0",
            ServiceConfig::new(scfg).with_push_queue(args.push_queue),
        )
        .expect("bind fanout");
        let addr = service.local_addr().to_string();
        let out = std::process::Command::new(&exe)
            .args([
                "--fanout-client",
                "--addr",
                &addr,
                "--subs",
                &nsubs.to_string(),
                "--ticks",
                &args.ticks.to_string(),
                "--dims",
                &args.dims.to_string(),
                "--k",
                &args.k.to_string(),
            ])
            .output()
            .expect("spawn fanout client");
        service.shutdown();
        if !out.stderr.is_empty() {
            eprint!("{}", String::from_utf8_lossy(&out.stderr));
        }
        let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
        if !(out.status.success() && text.contains("\"ok\":true")) {
            eprintln!("fanout tier {nsubs}: client run failed");
            all_ok = false;
        }
        tier_json.push(text);
    }
    let elapsed = started.elapsed();

    // The sweep is ascending, so the last tier is the gated one.
    let max_subs = tiers.last().copied().unwrap_or(0);
    let last = tier_json.last().cloned().unwrap_or_default();
    let per_s = json_num(&last, "pushes_per_s").unwrap_or(0.0);
    let p50 = json_num(&last, "push_p50_us").unwrap_or(0.0);
    let p99 = json_num(&last, "push_p99_us").unwrap_or(0.0);

    if args.json {
        println!(
            "{{\"mode\":\"{}\",\"engine\":\"{}\",\"dims\":{},\"ticks\":{},\
             \"tiers\":[{}],\"max_subs\":{max_subs},\"fanout_per_s\":{per_s:.0},\
             \"fanout_p50_us\":{p50:.1},\"fanout_p99_us\":{p99:.1},\"ok\":{all_ok}}}",
            if args.smoke { "fanout-smoke" } else { "fanout" },
            engine_name(args.engine),
            args.dims,
            args.ticks,
            tier_json.join(","),
        );
    } else {
        println!(
            "== serve fan-out ({}) ==",
            if args.smoke { "smoke" } else { "sweep" }
        );
        println!(
            "   {} tier(s) × {} ticks over {} engine (d={}), {:.3}s wall time",
            tiers.len(),
            args.ticks,
            engine_name(args.engine),
            args.dims,
            elapsed.as_secs_f64()
        );
        for text in &tier_json {
            let num = |k: &str| json_num(text, k).unwrap_or(0.0);
            println!(
                "   {:>6.0} subs × {:.0} queries: {:>9.0} pushes/s   \
                 push p50 {:>8.1}µs  p99 {:>8.1}µs   ({:.0} pushes, {:.0} resyncs)",
                num("subs"),
                num("queries"),
                num("pushes_per_s"),
                num("push_p50_us"),
                num("push_p99_us"),
                num("pushes"),
                num("resyncs"),
            );
        }
        println!(
            "   verification: {}",
            if all_ok {
                "encode-once + fleet-complete"
            } else {
                "FAILED"
            }
        );
    }

    if let Some(path) = &args.baseline {
        match check_fanout_baseline(path, max_subs, per_s, p99) {
            Ok(findings) if findings.is_empty() => println!(
                "baseline check ok ({per_s:.0} pushes/s ≥ {FANOUT_RATE_FLOOR:.0}/s, within \
                 {FANOUT_RATE_REGRESSION}x of {path} at {max_subs} subs)"
            ),
            Ok(findings) => {
                // Wall-clock drift: flaky on shared CI runners, so the
                // smoke tier only warns; the full sweep (dedicated
                // hardware) still gates hard. The functional verdicts
                // (missed delivery, encode-once) stay hard either way.
                for msg in &findings {
                    if args.smoke {
                        eprintln!("warning ({msg}) — perf comparison is warn-only in --smoke");
                    } else {
                        eprintln!("{msg}");
                    }
                }
                if !args.smoke {
                    all_ok = false;
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                all_ok = false;
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}

/// One site of the mesh: its service plus the driver connection that
/// feeds it shard batches.
struct SiteHandle {
    svc: Service,
    driver: ServiceClient,
}

fn bind_site_handle(scfg: ServerConfig, site: u64, coord: &str) -> SiteHandle {
    let svc = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg).with_role(Role::Site(SiteRole::new(site, coord.to_string()))),
    )
    .expect("bind site");
    let driver = ServiceClient::connect(svc.local_addr()).expect("site driver connect");
    SiteHandle { svc, driver }
}

/// Minimum acceptable uplink byte reduction vs forwarding the raw stream:
/// the distributed tier only earns its keep when candidate shipping is at
/// least this much cheaper.
const DISTRIB_RATIO_FLOOR: f64 = 5.0;
/// A committed byte ratio may erode by at most this factor.
const DISTRIB_RATIO_REGRESSION: f64 = 1.5;
/// Merge p99 may regress by at most this factor …
const DISTRIB_P99_REGRESSION: f64 = 4.0;
/// … and only counts as a regression above this absolute floor, which
/// keeps scheduler jitter on loopback sockets from tripping CI.
const DISTRIB_P99_FLOOR_US: f64 = 10_000.0;

/// Scans `"key": <number>` (with or without the space) out of a flat JSON
/// object — the committed baselines are written by this binary, so the
/// shape is known and a parser dependency stays unnecessary.
fn json_num(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares this multi-site run against the committed baseline: the byte
/// ratio must clear [`DISTRIB_RATIO_FLOOR`], not erode more than
/// [`DISTRIB_RATIO_REGRESSION`] below the committed value, and the merge
/// p99 must stay within [`DISTRIB_P99_REGRESSION`] of it (above the
/// absolute jitter floor).
fn check_distrib_baseline(path: &str, ratio: f64, p99_us: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("check-baseline: cannot read {path}: {e}"))?;
    let base_ratio = json_num(&text, "bytes_ratio")
        .ok_or_else(|| format!("check-baseline: {path} has no bytes_ratio"))?;
    let base_p99 = json_num(&text, "merge_p99_us")
        .ok_or_else(|| format!("check-baseline: {path} has no merge_p99_us"))?;
    if ratio < DISTRIB_RATIO_FLOOR {
        return Err(format!(
            "check-baseline: uplink byte reduction {ratio:.1}x is below the \
             {DISTRIB_RATIO_FLOOR}x floor"
        ));
    }
    if ratio * DISTRIB_RATIO_REGRESSION < base_ratio {
        return Err(format!(
            "check-baseline: byte ratio regressed >{DISTRIB_RATIO_REGRESSION}x: \
             {ratio:.1}x now vs {base_ratio:.1}x in {path}"
        ));
    }
    if p99_us > base_p99 * DISTRIB_P99_REGRESSION && p99_us > DISTRIB_P99_FLOOR_US {
        return Err(format!(
            "check-baseline: merge p99 regressed >{DISTRIB_P99_REGRESSION}x: \
             {p99_us:.0}µs now vs {base_p99:.0}µs in {path}"
        ));
    }
    Ok(())
}

/// The multi-site harness: `--sites N` site services shard the stream,
/// ship candidate deltas to one coordinator, and the merged global top-k
/// is verified bit-exact against a single-node oracle fed the full
/// stream in-process. With `--chaos`, one seeded site is killed and later
/// restarted mid-soak.
fn distrib(args: &Args) {
    // A time window distributes cleanly (each site expires its own shard
    // by timestamp); a quarter of the run keeps expiry churn in frame.
    let window_ticks = (args.ticks as u64 / 4).max(8);
    let scfg = server_config(args).with_window(WindowSpec::Time(window_ticks));
    let coordinator = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg)
            .with_role(Role::Coordinator)
            .with_push_queue(args.push_queue),
    )
    .expect("bind coordinator");
    let addr = coordinator.local_addr();
    let coord_addr = addr.to_string();

    let mut oracle = MonitorServer::new(scfg).expect("oracle");
    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut query_ids = Vec::new();
    for c in 0..args.clients {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        let id = control.register_linear(args.k, &weights).expect("register");
        let f = tkm_common::ScoreFn::linear(weights).unwrap();
        oracle
            .register(Query::top_k(f, args.k).unwrap())
            .expect("oracle register");
        query_ids.push(id);
    }

    // One subscriber mirrors every query from the coordinator's delta
    // stream; per-push latency is measured from the instant its round's
    // first shard was sent (ingest → site → merge → push).
    let send_instants: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let data_ticks = args.ticks;
    let qids = query_ids.clone();
    let instants = Arc::clone(&send_instants);
    let sub = std::thread::spawn(move || {
        let mut client = ServiceClient::connect(addr).expect("subscriber connect");
        let mut mirror = BTreeMap::new();
        for q in &qids {
            mirror.insert(*q, client.subscribe(*q).expect("subscribe"));
        }
        let mut latencies = Vec::new();
        let mut pushes = 0usize;
        let mut degraded = 0usize;
        let mut healed = 0usize;
        loop {
            let push = client.next_push().expect("push stream");
            let received = Instant::now();
            pushes += 1;
            if let Push::Degraded { sites, .. } = &push {
                if sites.is_empty() {
                    healed += 1;
                } else {
                    degraded += 1;
                }
                continue;
            }
            let at = match &push {
                Push::Delta { at, .. } | Push::Snapshot { at, .. } => Some(at.0),
                _ => None,
            };
            apply_push(&mut mirror, &push);
            if let Some(at) = at {
                if at >= 1 && at as usize <= data_ticks {
                    let sent = instants.lock().unwrap()[at as usize - 1];
                    latencies.push(received.duration_since(sent).as_secs_f64() * 1e6);
                }
                if at as usize > data_ticks {
                    break; // sentinel observed
                }
            }
        }
        // Delta reconstruction must agree with the coordinator's own
        // published snapshot for every query (the oracle comparison runs
        // against the coordinator in the main thread).
        let mut ok = true;
        for q in &qids {
            let (_, wire) = client.snapshot(*q).expect("final snapshot");
            while let Some(p) = client.try_buffered_push() {
                apply_push(&mut mirror, &p);
            }
            if mirror.get(q).map(Vec::as_slice) != Some(wire.as_slice()) {
                eprintln!("subscriber: delta reconstruction != coordinator snapshot for {q}");
                ok = false;
            }
        }
        let _ = client.quit();
        (latencies, pushes, degraded, healed, ok)
    });

    let mut sites: Vec<Option<SiteHandle>> = (0..args.sites)
        .map(|s| Some(bind_site_handle(scfg, s as u64, &coord_addr)))
        .collect();
    let victim = args.chaos.then(|| (args.seed as usize) % args.sites);
    let t_kill = args.ticks / 3;
    let t_heal = 2 * args.ticks / 3;

    let mut gen = PointGen::new(args.dims, DataDist::Ind, args.seed ^ 7).expect("gen");
    let mut base = 0u64;
    let mut degraded_observed = false;
    let mut snapshots_served = 0usize;
    let soak_start = Instant::now();
    for t in 1..=args.ticks {
        if let Some(v) = victim {
            if t == t_kill {
                if let Some(h) = sites[v].take() {
                    drop(h.driver);
                    h.svc.shutdown();
                }
            }
            if t == t_heal && sites[v].is_none() {
                sites[v] = Some(bind_site_handle(scfg, v as u64, &coord_addr));
            }
        }
        // Shard the round contiguously so global ids stay dense in
        // arrival order; a dead site's share is simply lost (neither the
        // mesh nor the oracle sees it).
        let per = args.rate / args.sites;
        send_instants.lock().unwrap().push(Instant::now());
        let mut full = Vec::with_capacity(args.rate * args.dims);
        for s in 0..args.sites {
            let n = if s + 1 == args.sites {
                args.rate - per * (args.sites - 1)
            } else {
                per
            };
            let mut chunk = Vec::with_capacity(n * args.dims);
            for _ in 0..n {
                chunk.extend(gen.point());
            }
            let Some(h) = sites[s].as_mut() else { continue };
            h.driver
                .site_ingest(tkm_common::Timestamp(t as u64), base, &chunk)
                .expect("site ingest");
            base += n as u64;
            full.extend_from_slice(&chunk);
        }
        oracle
            .tick_at(tkm_common::Timestamp(t as u64), &full)
            .expect("oracle tick");
        if args.chaos {
            // Graceful degradation, not an outage: the coordinator must
            // answer every round of the soak.
            control
                .snapshot(query_ids[0])
                .expect("snapshot during soak");
            snapshots_served += 1;
            if !degraded_observed {
                let stats = control.stats().expect("stats");
                degraded_observed = stats.get("degraded_sites").is_some_and(|v| !v.is_empty());
            }
        }
    }
    let soak_elapsed = soak_start.elapsed();

    // Sentinel cycle: k max-score tuples through site 0 (they dominate
    // every query, so each one's result changes), bare markers from the
    // rest so the frontier advances and the merge publishes.
    let sentinel_t = args.ticks as u64 + 1;
    let sentinel = vec![1.0; args.k * args.dims];
    for (s, slot) in sites.iter_mut().enumerate() {
        let Some(h) = slot.as_mut() else { continue };
        let chunk: &[f64] = if s == 0 { &sentinel } else { &[] };
        h.driver
            .site_ingest(tkm_common::Timestamp(sentinel_t), base, chunk)
            .expect("sentinel ingest");
    }
    base += args.k as u64;
    let _ = base;
    oracle
        .tick_at(tkm_common::Timestamp(sentinel_t), &sentinel)
        .expect("oracle sentinel");

    // Convergence: poll the coordinator against the oracle, driving
    // empty catch-up cycles (lockstep on both sides) so re-dialed
    // uplinks re-enroll and in-flight markers land.
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let mut settle_t = sentinel_t;
    let mut converged = false;
    while !converged && Instant::now() < deadline {
        converged = query_ids.iter().all(|q| {
            let wire = control.snapshot(*q).expect("verify snapshot").1;
            oracle.result(*q).is_ok_and(|want| want == wire)
        });
        if converged {
            break;
        }
        settle_t += 1;
        for h in sites.iter_mut().flatten() {
            let _ = h
                .driver
                .site_ingest(tkm_common::Timestamp(settle_t), 0, &[]);
        }
        oracle
            .tick_at(tkm_common::Timestamp(settle_t), &[])
            .expect("oracle settle");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let (latencies, pushes, degraded_pushes, healed_pushes, sub_ok) =
        sub.join().expect("subscriber thread");
    let mut latencies = latencies;
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };

    let mut bytes_shipped = 0u64;
    let mut bytes_naive = 0u64;
    for h in sites.iter_mut().flatten() {
        let stats = h.driver.stats().expect("site stats");
        let num = |k: &str| {
            stats
                .get(k)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        bytes_shipped += num("bytes_shipped");
        bytes_naive += num("bytes_naive");
    }
    let ratio = bytes_naive as f64 / bytes_shipped.max(1) as f64;
    let coord_stats = control.stats().expect("coordinator stats");
    let healed_now = coord_stats
        .get("degraded_sites")
        .is_some_and(String::is_empty);

    let mut all_ok = sub_ok && converged;
    if !converged {
        eprintln!("mesh never converged with the single-node oracle");
    }
    if args.chaos {
        if !degraded_observed || degraded_pushes == 0 {
            eprintln!("site kill was never surfaced as DEGRADED");
            all_ok = false;
        }
        if !healed_now || healed_pushes == 0 {
            eprintln!("restarted site never healed the DEGRADED flag");
            all_ok = false;
        }
        if snapshots_served != args.ticks {
            eprintln!(
                "coordinator missed soak snapshots: {snapshots_served}/{}",
                args.ticks
            );
            all_ok = false;
        }
    }

    let _ = control.quit();
    for h in sites.into_iter().flatten() {
        let _ = h.driver.quit();
        h.svc.shutdown();
    }
    coordinator.shutdown();

    let mode = match (args.chaos, args.smoke) {
        (true, _) => "distrib-chaos",
        (false, true) => "distrib-smoke",
        (false, false) => "distrib",
    };
    if args.json {
        println!(
            "{{\"mode\":\"{mode}\",\"sites\":{},\"dims\":{},\"window_ticks\":{},\
             \"clients\":{},\"ticks\":{},\"rate\":{},\"k\":{},\"seed\":{},\
             \"bytes_shipped\":{bytes_shipped},\"bytes_naive\":{bytes_naive},\
             \"bytes_ratio\":{ratio:.2},\"merge_p50_us\":{:.1},\"merge_p99_us\":{:.1},\
             \"pushes\":{pushes},\"degraded_pushes\":{degraded_pushes},\
             \"healed_pushes\":{healed_pushes},\"ok\":{all_ok}}}",
            args.sites,
            args.dims,
            window_ticks,
            args.clients,
            args.ticks + 1,
            args.rate,
            args.k,
            args.seed,
            pct(0.50),
            pct(0.99),
        );
    } else {
        println!("== serve multi-site ({mode}) ==");
        println!(
            "   {} sites → 1 coordinator, {} queries × top-{} (d={}), window {} ticks",
            args.sites, args.clients, args.k, args.dims, window_ticks
        );
        println!(
            "   {} ticks × {} tuples in {:.3}s soak wall time",
            args.ticks + 1,
            args.rate,
            soak_elapsed.as_secs_f64()
        );
        println!(
            "   uplink bytes      : {bytes_shipped} shipped vs {bytes_naive} naive forwarding \
             ({ratio:.1}x fewer)"
        );
        println!(
            "   merge latency     : p50 {:.1}µs   p99 {:.1}µs   ({} samples)",
            pct(0.50),
            pct(0.99),
            latencies.len()
        );
        if args.chaos {
            println!(
                "   chaos: site {} killed @t{t_kill}, restarted @t{t_heal} — \
                 {degraded_pushes} DEGRADED / {healed_pushes} heal pushes, \
                 {snapshots_served}/{} soak snapshots answered",
                victim.unwrap_or(0),
                args.ticks
            );
        }
        println!(
            "   verification: {}",
            if all_ok { "oracle-identical" } else { "FAILED" }
        );
    }

    if let Some(path) = &args.baseline {
        if args.chaos {
            println!("baseline check skipped (chaos mode measures robustness, not bytes)");
        } else {
            match check_distrib_baseline(path, ratio, pct(0.99)) {
                Ok(()) => println!(
                    "baseline check ok ({ratio:.1}x ≥ {DISTRIB_RATIO_FLOOR}x, within \
                     {DISTRIB_RATIO_REGRESSION}x of {path})"
                ),
                Err(msg) => {
                    eprintln!("{msg}");
                    all_ok = false;
                }
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
