//! The `tkm_service` TCP server — and its loopback measurement harness.
//!
//! Three modes:
//!
//! * **serve** (default): bind the wire-protocol server and run until
//!   killed.
//!
//!   ```console
//!   $ cargo run --release -p tkm_bench --bin serve -- \
//!         --addr 127.0.0.1:7171 --dims 2 --window 10000 --tick-ms 100
//!   ```
//!
//! * **`--bench`**: in-process loopback measurement — one ingest client
//!   streams arrivals through a manually ticked service while N
//!   subscriber clients reconstruct their query's top-k from the delta
//!   stream; every subscriber is verified against both a server-side
//!   `SNAPSHOT` and an independent in-process engine oracle. Reports
//!   ingest throughput (tuples/s) and the delta propagation latency
//!   distribution (p50/p99, ingest send → subscriber apply).
//!
//! * **`--smoke`**: the same harness at CI scale (a second or so); used
//!   by the workflow as the end-to-end serving-layer gate.
//!
//! * **`--chaos`**: the loopback harness under a seeded fault plan — a
//!   fraction of the subscriber sessions get their sockets reset,
//!   truncated mid-line, byte-garbled, write-stalled, or short-written
//!   while the ingest stream runs. Self-healing clients must reconnect,
//!   re-subscribe, and re-baseline; every subscriber (survivor or
//!   reconnector) is then verified bit-exact against the in-process
//!   oracle. `--seed` pins the run; `--fault` overrides the schedule DSL
//!   (`sid=kind@at[+every][:ms];.. | ..`). Combine with `--smoke` for CI
//!   scale.
//!
//! `--json` prints the measurement as a single JSON object on stdout.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tkm_core::{EngineKind, MonitorServer, Query, ServerConfig};
use tkm_datagen::{DataDist, PointGen};
use tkm_service::{
    apply_push, FaultSchedule, Push, ReconnectPolicy, Service, ServiceClient, ServiceConfig,
    TickPolicy,
};

struct Args {
    addr: String,
    dims: usize,
    window: usize,
    engine: EngineKind,
    tick_ms: u64,
    push_queue: usize,
    clients: usize,
    ticks: usize,
    rate: usize,
    k: usize,
    smoke: bool,
    bench: bool,
    chaos: bool,
    seed: u64,
    fault: Option<String>,
    json: bool,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let bench = argv.iter().any(|a| a == "--bench");
    // Smoke is a small bench; bench is the default-scale measurement.
    let (clients, ticks, rate, window) = if smoke {
        (4, 60, 40, 2_000)
    } else {
        (8, 300, 200, 10_000)
    };
    Args {
        addr: flag_value(&argv, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into()),
        dims: parse_num(&argv, "--dims", 2),
        window: parse_num(&argv, "--window", window),
        engine: match flag_value(&argv, "--engine").as_deref() {
            Some("tma") => EngineKind::Tma,
            Some("tsl") => EngineKind::Tsl,
            _ => EngineKind::Sma,
        },
        tick_ms: parse_num(&argv, "--tick-ms", 100),
        push_queue: parse_num(&argv, "--push-queue", 1024),
        clients: parse_num(&argv, "--clients", clients),
        ticks: parse_num(&argv, "--ticks", ticks),
        rate: parse_num(&argv, "--rate", rate),
        k: parse_num(&argv, "--k", 8),
        smoke,
        bench,
        chaos: argv.iter().any(|a| a == "--chaos"),
        seed: parse_num(&argv, "--seed", 0xC4A05),
        fault: flag_value(&argv, "--fault"),
        json: argv.iter().any(|a| a == "--json"),
    }
}

fn server_config(args: &Args) -> ServerConfig {
    ServerConfig::sma(args.dims, args.window).with_engine(args.engine)
}

fn main() {
    let args = parse_args();
    if args.chaos {
        chaos(&args);
    } else if args.smoke || args.bench {
        loopback(&args);
    } else {
        serve_forever(&args);
    }
}

fn serve_forever(args: &Args) {
    let cfg = ServiceConfig::new(server_config(args))
        .with_tick(TickPolicy::Interval(std::time::Duration::from_millis(
            args.tick_ms.max(1),
        )))
        .with_push_queue(args.push_queue);
    let service = Service::bind(args.addr.as_str(), cfg).expect("bind");
    println!(
        "serving {} (dims={}, window={}) on {} — one cycle per {}ms, push cap {}",
        match args.engine {
            EngineKind::Tma => "TMA",
            EngineKind::Sma => "SMA",
            EngineKind::Tsl => "TSL",
            EngineKind::Oracle => "ORACLE",
        },
        args.dims,
        args.window,
        service.local_addr(),
        args.tick_ms.max(1),
        args.push_queue
    );
    println!("protocol: see the README `Serving` section. Ctrl-C to stop.");
    loop {
        std::thread::park();
    }
}

/// Per-subscriber outcome of the loopback run.
struct SubOutcome {
    /// Delta latencies (ingest send → subscriber apply), microseconds.
    latencies_us: Vec<f64>,
    /// Pushes applied (deltas + snapshots).
    pushes: usize,
    /// Verification verdict.
    ok: bool,
}

fn loopback(args: &Args) {
    let scfg = server_config(args);
    let service = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg).with_push_queue(args.push_queue),
    )
    .expect("bind loopback");
    let addr = service.local_addr();

    // The independent oracle: the same engine configuration fed the same
    // batches directly, bypassing the wire entirely.
    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    // Pre-register every subscriber's query through a control connection
    // so ids are known up front; weights vary per subscriber.
    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut weight_sets = Vec::new();
    let mut query_ids = Vec::new();
    for c in 0..args.clients {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        let id = control.register_linear(args.k, &weights).expect("register");
        let f = tkm_common::ScoreFn::linear(weights.clone()).unwrap();
        oracle
            .register(Query::top_k(f, args.k).unwrap())
            .expect("oracle register");
        weight_sets.push(weights);
        query_ids.push(id);
    }

    // Send instants per tick (index = at - 1), shared with subscribers.
    let send_instants: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
    let total_ticks = args.ticks + 1; // + the guaranteed-delta sentinel

    let mut subs = Vec::new();
    for (c, q) in query_ids.iter().enumerate() {
        let q = *q;
        let instants = Arc::clone(&send_instants);
        let data_ticks = args.ticks;
        subs.push(std::thread::spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("subscriber connect");
            let baseline = client.subscribe(q).expect("subscribe");
            let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
            let mut outcome = SubOutcome {
                latencies_us: Vec::new(),
                pushes: 0,
                ok: true,
            };
            // Read pushes until the sentinel tick reaches this query.
            loop {
                let push = client.next_push().expect("push stream");
                let received = Instant::now();
                let at = match &push {
                    Push::Delta { at, .. } | Push::Snapshot { at, .. } => Some(at.0),
                    Push::Resync { .. } => None,
                };
                apply_push(&mut mirror, &push);
                outcome.pushes += 1;
                if let Some(at) = at {
                    if at >= 1 && at as usize <= data_ticks {
                        let sent = instants.lock().unwrap()[at as usize - 1];
                        outcome
                            .latencies_us
                            .push(received.duration_since(sent).as_secs_f64() * 1e6);
                    }
                    if at as usize > data_ticks {
                        break; // sentinel observed
                    }
                }
            }
            // The wire's own view of the truth…
            let (_, wire_expected) = client.snapshot(q).expect("final snapshot");
            while let Some(push) = client.try_buffered_push() {
                apply_push(&mut mirror, &push);
            }
            if mirror.get(&q).map(Vec::as_slice) != Some(wire_expected.as_slice()) {
                eprintln!("subscriber {c}: delta reconstruction != server snapshot");
                outcome.ok = false;
            }
            let _ = client.quit();
            (outcome, mirror.remove(&q).unwrap_or_default())
        }));
    }

    // Ingest: one client streams `ticks` cycles of `rate` tuples, then the
    // sentinel cycle of k max-score tuples (score 1·Σw beats any interior
    // point, so every query's result changes and every subscriber
    // observes the final tick).
    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let mut gen = PointGen::new(args.dims, DataDist::Ind, 42).expect("gen");
    let started = Instant::now();
    let mut batches: Vec<Vec<f64>> = Vec::with_capacity(total_ticks);
    for _ in 0..args.ticks {
        let mut batch = Vec::with_capacity(args.rate * args.dims);
        for _ in 0..args.rate {
            batch.extend(gen.point());
        }
        batches.push(batch);
    }
    batches.push(vec![1.0; args.k * args.dims]); // sentinel
    let gen_elapsed = started.elapsed();

    let ingest_start = Instant::now();
    for batch in &batches {
        send_instants.lock().unwrap().push(Instant::now());
        ingest.tick(batch).expect("tick");
    }
    let ingest_elapsed = ingest_start.elapsed();

    // Feed the oracle the same batches.
    for batch in &batches {
        oracle.tick(batch).expect("oracle tick");
    }

    // Collect subscribers and verify against the oracle.
    let mut latencies = Vec::new();
    let mut pushes = 0usize;
    let mut all_ok = true;
    for (c, handle) in subs.into_iter().enumerate() {
        let (outcome, mirror) = handle.join().expect("subscriber thread");
        latencies.extend(outcome.latencies_us);
        pushes += outcome.pushes;
        all_ok &= outcome.ok;
        let expected = oracle.result(query_ids[c]).expect("oracle result");
        if mirror != expected {
            eprintln!("subscriber {c}: delta reconstruction != in-process oracle");
            all_ok = false;
        }
    }

    let stats = ingest.stats().expect("stats");
    let _ = ingest.quit();
    let _ = control.quit();
    service.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let tuples: usize = batches.iter().map(|b| b.len()).sum::<usize>() / args.dims;
    let tuples_per_s = tuples as f64 / ingest_elapsed.as_secs_f64();

    if args.json {
        println!(
            "{{\"mode\":\"{}\",\"engine\":\"{}\",\"dims\":{},\"window\":{},\"clients\":{},\
             \"ticks\":{},\"tuples\":{},\"tuples_per_s\":{:.0},\"delta_p50_us\":{:.1},\
             \"delta_p99_us\":{:.1},\"deltas_applied\":{},\"resyncs\":{},\"ok\":{}}}",
            if args.smoke { "smoke" } else { "bench" },
            stats.get("engine").map(String::as_str).unwrap_or("?"),
            args.dims,
            args.window,
            args.clients,
            total_ticks,
            tuples,
            tuples_per_s,
            pct(0.50),
            pct(0.99),
            pushes,
            stats.get("resyncs").map(String::as_str).unwrap_or("0"),
            all_ok
        );
    } else {
        println!(
            "== serve loopback ({}) ==",
            if args.smoke { "smoke" } else { "bench" }
        );
        println!(
            "   {} clients × top-{} over {} engine, window {} (d={})",
            args.clients,
            args.k,
            stats.get("engine").map(String::as_str).unwrap_or("?"),
            args.window,
            args.dims
        );
        println!(
            "   {} ticks, {} tuples in {:.3}s ingest wall time (+{:.3}s datagen)",
            total_ticks,
            tuples,
            ingest_elapsed.as_secs_f64(),
            gen_elapsed.as_secs_f64()
        );
        println!("   ingest throughput : {tuples_per_s:>10.0} tuples/s over the wire");
        println!(
            "   delta latency     : p50 {:.1}µs   p99 {:.1}µs   ({} samples)",
            pct(0.50),
            pct(0.99),
            latencies.len()
        );
        println!(
            "   pushes applied: {pushes}   resyncs: {}   verification: {}",
            stats.get("resyncs").map(String::as_str).unwrap_or("0"),
            if all_ok { "oracle-identical" } else { "FAILED" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
}

/// Default chaos schedule: every other subscriber session (1-based; the
/// control connection is session 0) gets a fault, cycling through the
/// kill/corrupt kinds — ≥50% of the fleet is hit.
fn default_fault_dsl(clients: usize) -> String {
    let kinds = [
        "reset@10",
        "garble@8",
        "truncate@14",
        "stall-write@9+25:10",
        "partial@6+30",
    ];
    let mut parts = Vec::new();
    for (n, sid) in (1..=clients).step_by(2).enumerate() {
        parts.push(format!("{sid}={}", kinds[n % kinds.len()]));
    }
    parts.join("|")
}

fn chaos(args: &Args) {
    let scfg = server_config(args);
    let dsl = args
        .fault
        .clone()
        .unwrap_or_else(|| default_fault_dsl(args.clients));
    let faulted = dsl
        .split('|')
        .filter(|p| !p.trim_start().starts_with('*'))
        .count();
    let schedule = FaultSchedule::parse(&dsl, args.seed).expect("fault schedule DSL");
    let service = Service::bind(
        "127.0.0.1:0",
        ServiceConfig::new(scfg)
            .with_push_queue(args.push_queue)
            .with_faults(schedule),
    )
    .expect("bind chaos loopback");
    let addr = service.local_addr();

    let mut oracle = MonitorServer::new(scfg).expect("oracle");

    // Control dials first (session 0 — never faulted by the default plan)
    // and registers every query, keeping wire ids positional with the
    // oracle's.
    let mut control = ServiceClient::connect(addr).expect("control connect");
    let mut query_ids = Vec::new();
    for c in 0..args.clients {
        let weights: Vec<f64> = (0..args.dims)
            .map(|d| 0.25 + ((c + d * 3) % 7) as f64 / 4.0)
            .collect();
        let id = control.register_linear(args.k, &weights).expect("register");
        let f = tkm_common::ScoreFn::linear(weights).unwrap();
        oracle
            .register(Query::top_k(f, args.k).unwrap())
            .expect("oracle register");
        query_ids.push(id);
    }

    // Subscribers connect *serially* so session ids — and therefore which
    // connection each fault plan hits — are deterministic: sessions 1..=N.
    // Reconnected sessions get fresh ids outside the plan and run clean.
    let mut clients = Vec::new();
    for (i, q) in query_ids.iter().enumerate() {
        let policy = ReconnectPolicy {
            base: std::time::Duration::from_millis(5),
            max: std::time::Duration::from_millis(100),
            retries: 40,
            seed: args.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..ReconnectPolicy::default()
        };
        let mut client = ServiceClient::connect(addr)
            .expect("subscriber connect")
            .with_reconnect(policy);
        let baseline = client.subscribe(*q).expect("subscribe");
        clients.push((client, *q, baseline));
    }

    let data_ticks = args.ticks;
    let subs: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(i, (mut client, q, baseline))| {
            let hit = i % 2 == 0; // sessions 1,3,5,.. carry the default plan
            std::thread::spawn(move || {
                let mut mirror: BTreeMap<_, _> = [(q, baseline)].into_iter().collect();
                let mut pushes = 0usize;
                // Ride out the stream (auto-resuming on faults) until a
                // push timestamped after the sentinel tick arrives —
                // either the sentinel delta itself or a post-sentinel
                // re-baseline snapshot.
                loop {
                    let push = client.next_push().expect("push stream");
                    apply_push(&mut mirror, &push);
                    pushes += 1;
                    let at = match &push {
                        Push::Delta { at, .. } | Push::Snapshot { at, .. } => at.0 as usize,
                        Push::Resync { .. } => 0,
                    };
                    if at > data_ticks {
                        break;
                    }
                }
                // A garbled byte can corrupt a score digit into a line
                // that still parses; the protocol's recovery story is an
                // explicit re-baseline, so every faulted subscriber ends
                // with one.
                if hit {
                    client.resume().expect("post-soak re-baseline");
                    loop {
                        match client.next_push().expect("re-baseline push") {
                            p @ Push::Snapshot { .. } => {
                                apply_push(&mut mirror, &p);
                                break;
                            }
                            p => {
                                apply_push(&mut mirror, &p);
                            }
                        }
                    }
                }
                (
                    client.reconnects(),
                    pushes,
                    mirror.remove(&q).unwrap_or_default(),
                )
            })
        })
        .collect();

    // Ingest (session N+1 — outside the default plan) streams the soak,
    // then a sentinel cycle of max-score tuples so every query's result
    // changes on the final tick.
    let mut ingest = ServiceClient::connect(addr).expect("ingest connect");
    let mut gen = PointGen::new(args.dims, DataDist::Ind, args.seed ^ 42).expect("gen");
    let mut batches: Vec<Vec<f64>> = Vec::with_capacity(data_ticks + 1);
    for _ in 0..data_ticks {
        let mut batch = Vec::with_capacity(args.rate * args.dims);
        for _ in 0..args.rate {
            batch.extend(gen.point());
        }
        batches.push(batch);
    }
    batches.push(vec![1.0; args.k * args.dims]); // sentinel
    let started = Instant::now();
    for batch in &batches {
        ingest.tick(batch).expect("tick");
        oracle.tick(batch).expect("oracle tick");
    }
    let soak_elapsed = started.elapsed();

    let mut reconnects = 0u64;
    let mut pushes = 0usize;
    let mut all_ok = true;
    for (c, handle) in subs.into_iter().enumerate() {
        let (reconn, applied, mirror) = handle.join().expect("subscriber thread");
        reconnects += reconn;
        pushes += applied;
        let expected = oracle.result(query_ids[c]).expect("oracle result");
        if mirror != expected {
            eprintln!("subscriber {c}: reconstruction != in-process oracle after chaos");
            all_ok = false;
        }
    }

    // Server-side truth must match the oracle too.
    for (c, q) in query_ids.iter().enumerate() {
        let (_, wire) = control.snapshot(*q).expect("verify snapshot");
        let expected = oracle.result(*q).expect("oracle result");
        if wire != expected {
            eprintln!("query {c}: server snapshot != in-process oracle after chaos");
            all_ok = false;
        }
    }

    let stats = control.stats().expect("stats");
    let stat = |k: &str| stats.get(k).map(String::as_str).unwrap_or("0").to_string();
    let injected: u64 = stat("faults").parse().unwrap_or(0);
    if injected == 0 {
        eprintln!("chaos plan never fired (faults=0)");
        all_ok = false;
    }
    if faulted > 0 && reconnects == 0 {
        eprintln!("no subscriber ever reconnected under {faulted} faulted sessions");
        all_ok = false;
    }
    let _ = ingest.quit();
    let _ = control.quit();
    service.shutdown();

    if args.json {
        println!(
            "{{\"mode\":\"chaos\",\"engine\":\"{}\",\"dims\":{},\"window\":{},\"clients\":{},\
             \"faulted\":{},\"seed\":{},\"ticks\":{},\"pushes\":{},\"reconnects\":{},\
             \"resyncs\":{},\"reaped\":{},\"shed\":{},\"faults\":{},\"ok\":{}}}",
            stat("engine"),
            args.dims,
            args.window,
            args.clients,
            faulted,
            args.seed,
            data_ticks + 1,
            pushes,
            reconnects,
            stat("resyncs"),
            stat("reaped"),
            stat("shed"),
            injected,
            all_ok
        );
    } else {
        println!("== serve chaos soak ==");
        println!(
            "   {} clients ({faulted} faulted) × top-{} over {} engine, window {} (d={})",
            args.clients,
            args.k,
            stat("engine"),
            args.window,
            args.dims
        );
        println!("   plan: {dsl}  (seed {})", args.seed);
        println!(
            "   {} ticks in {:.3}s — {pushes} pushes applied, {reconnects} reconnects, \
             {} resyncs, {injected} faults injected",
            data_ticks + 1,
            soak_elapsed.as_secs_f64(),
            stat("resyncs"),
        );
        println!(
            "   verification: {}",
            if all_ok { "oracle-identical" } else { "FAILED" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
}
