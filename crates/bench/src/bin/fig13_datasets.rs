//! Figure 13: the IND and ANT datasets (d = 2).
//!
//! The paper shows scatter plots; this binary prints a character-density
//! plot per distribution plus the summary statistics that distinguish them
//! (attribute correlation, sum variance), and dumps sample CSVs with
//! `--csv`.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::params::Scale;
use tkm_bench::{cli, Table};
use tkm_datagen::{DataDist, PointGen};

const GRID: usize = 24;
const SAMPLES: usize = 4000;

fn density_plot(dist: DataDist, seed: u64) -> (String, f64, f64) {
    let mut gen = PointGen::new(2, dist, seed).expect("2-d is valid");
    let mut counts = vec![0u32; GRID * GRID];
    let mut xs = Vec::with_capacity(SAMPLES);
    let mut ys = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let p = gen.point();
        let i = ((p[0] * GRID as f64) as usize).min(GRID - 1);
        let j = ((p[1] * GRID as f64) as usize).min(GRID - 1);
        counts[j * GRID + i] += 1;
        xs.push(p[0]);
        ys.push(p[1]);
    }
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max = *counts.iter().max().expect("non-empty") as f64;
    let mut plot = String::new();
    for j in (0..GRID).rev() {
        for i in 0..GRID {
            let c = counts[j * GRID + i] as f64 / max;
            let idx = (c * (shades.len() - 1) as f64).round() as usize;
            plot.push(shades[idx]);
            plot.push(' ');
        }
        plot.push('\n');
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mx, my) = (mean(&xs), mean(&ys));
    let cov = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / SAMPLES as f64;
    let sums: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
    let ms = mean(&sums);
    let var = sums.iter().map(|s| (s - ms) * (s - ms)).sum::<f64>() / SAMPLES as f64;
    (plot, cov, var)
}

fn main() {
    let scale = Scale::from_args();
    cli::header(
        "Figure 13 — datasets",
        "Mouratidis et al., SIGMOD 2006, Figure 13 (IND and ANT, d = 2)",
        scale,
        &format!("{SAMPLES} samples on a {GRID}x{GRID} density grid"),
    );

    let mut stats = Table::new(&["dataset", "attr covariance", "sum variance"]);
    for dist in [DataDist::Ind, DataDist::Ant] {
        let (plot, cov, var) = density_plot(dist, 20060627);
        println!("--- {} ---", dist.label());
        println!("{plot}");
        stats.row(vec![
            dist.label().into(),
            format!("{cov:.4}"),
            format!("{var:.4}"),
        ]);
    }
    cli::emit(&stats);
    println!(
        "shape check: IND covariance ~ 0; ANT covariance < 0 and sum variance \
         far below IND's (points hug the x+y = 1 anti-diagonal)."
    );
}
