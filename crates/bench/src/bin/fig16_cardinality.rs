//! Figure 16: CPU time vs data cardinality N (r = N/100), IND and ANT.
//!
//! The paper varies N from 1M to 5M with the arrival rate pinned to 1% of
//! the window per cycle. Expected shape: all methods degrade with N; the
//! grid methods stay more than an order of magnitude below TSL; ANT costs
//! more than IND.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 16 — CPU time vs number of active tuples (r = N/100)",
        "Mouratidis et al., SIGMOD 2006, Figure 16 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["N", "TSL [s]", "TMA [s]", "SMA [s]"]);
        for millions in 1..=5 {
            let n = ExpParams::scale_n(scale, millions);
            let p = ExpParams {
                n,
                r: n / 100,
                dist,
                ..base
            };
            let mut row = vec![n.to_string()];
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_secs(m.cpu_seconds));
            }
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!(
        "shape check: cost grows with N for every method; TSL is slowest \
         (sorted-list maintenance on 2rd updates/cycle); SMA ≤ TMA."
    );
}
