//! Figure 14: TMA/SMA performance vs grid granularity (IND, defaults).
//!
//! The paper sweeps the number of cells per axis from 5 to 15 (grids of 5⁴
//! to 15⁴ cells) at the default setting and reports (a) CPU time and
//! (b) space. The paper's finding: 12 cells per axis is the sweet spot —
//! finer grids pay for heap operations on empty cells, coarser grids scan
//! points outside the influence regions; space grows with granularity.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::{fmt_mb, fmt_secs};
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 14 — CPU time and space vs grid granularity",
        "Mouratidis et al., SIGMOD 2006, Figure 14 (a) and (b)",
        scale,
        &base.summary(),
    );

    let mut table = Table::new(&[
        "cells/axis",
        "grid",
        "TMA time [s]",
        "SMA time [s]",
        "TMA space [MB]",
        "SMA space [MB]",
    ]);
    for per_axis in (5..=15).step_by(1) {
        let cells = per_axis * per_axis * per_axis * per_axis;
        let p = ExpParams {
            grid_cells: cells,
            ..base
        };
        let tma = tkm_bench::run_engine(EngineSel::Tma, &p).expect("TMA run");
        let sma = tkm_bench::run_engine(EngineSel::Sma, &p).expect("SMA run");
        table.row(vec![
            per_axis.to_string(),
            format!("{per_axis}^4"),
            fmt_secs(tma.cpu_seconds),
            fmt_secs(sma.cpu_seconds),
            fmt_mb(tma.space_bytes),
            fmt_mb(sma.space_bytes),
        ]);
    }
    cli::emit(&table);
    println!(
        "shape check: time is U-shaped with the minimum near 12 cells/axis; \
         space increases with granularity; SMA ≤ TMA in time throughout."
    );
}
