//! Hot-path replay benchmark: maintenance throughput under arrival bursts.
//!
//! Unlike the figure binaries (which reproduce the paper's absolute
//! numbers), this benchmark isolates the *event-replay hot path* — per
//! tick: ingest a burst of `r` arrivals, replay the recorded events
//! against every registered query's influence lists, recompute whatever
//! expiries broke. It sweeps the query count Q ∈ {16, 256, 4096} for both
//! grid engines and reports sustained arrival throughput (tuples/second).
//!
//! Besides the steady-state scenarios, an **expiry-heavy recompute**
//! scenario (engines `tma-rec` / `sma-rec`) shrinks the window to twice
//! the burst size: half the window turns over every tick, result tuples
//! expire constantly, and the measured loop is dominated by full
//! recomputations (the traversal + clean-up path) instead of event
//! replay.
//!
//! Modes:
//!
//! * `--scale quick|default|paper` — workload preset (default: default);
//! * `--smoke` — seconds-scale run for CI (fixed small sizes, independent
//!   of `--scale`); includes the recompute scenarios;
//! * `--recompute` — run the expiry-heavy recompute scenarios (only) at
//!   the selected scale;
//! * `--json` — additionally emit a machine-readable JSON report to
//!   stdout (this is the format of the committed `BENCH_hotpath.json`
//!   baseline; regenerate it with
//!   `cargo run --release -p tkm_bench --bin replay -- --smoke --json`);
//! * `--check-baseline <path>` — compare this run against a committed
//!   baseline and exit non-zero if the baseline is malformed or any
//!   matching scenario (matched by engine label and Q, including the
//!   `*-rec` recompute scenarios) regressed by more than 3x (a coarse
//!   guard against catastrophic hot-path regressions, not a +/-5% flake
//!   gate).

use std::time::Instant;

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, Scale, Table};
use tkm_common::{QueryId, Timestamp};
use tkm_core::{GridSpec, Query, SmaMonitor, TmaMonitor};
use tkm_datagen::{DataDist, FnFamily, QueryGen, StreamSim};
use tkm_window::WindowSpec;

/// Query counts swept by the replay scenarios.
const QUERY_COUNTS: [usize; 3] = [16, 256, 4096];

/// Tolerated throughput regression factor for `--check-baseline`.
const REGRESSION_FACTOR: f64 = 3.0;

/// One replay workload configuration.
#[derive(Clone, Copy, Debug)]
struct ReplayConfig {
    dims: usize,
    /// Count-window capacity.
    n: usize,
    /// Arrivals per tick (the burst size).
    r: usize,
    /// Measured ticks.
    ticks: usize,
    /// Unmeasured ticks between registration and measurement, so the
    /// measured window reflects steady state (scratch buffers sized,
    /// influence regions settled) rather than start-up transients.
    warm_ticks: usize,
    k: usize,
    grid_cells: usize,
    seed: u64,
}

impl ReplayConfig {
    fn preset(scale: Scale, smoke: bool) -> ReplayConfig {
        if smoke {
            return ReplayConfig {
                dims: 2,
                n: 4_000,
                r: 200,
                ticks: 40,
                warm_ticks: 10,
                k: 10,
                grid_cells: 4_096,
                seed: 20060627,
            };
        }
        match scale {
            Scale::Quick => ReplayConfig {
                dims: 2,
                n: 10_000,
                r: 500,
                ticks: 60,
                warm_ticks: 15,
                k: 10,
                grid_cells: 4_096,
                seed: 20060627,
            },
            Scale::Default => ReplayConfig {
                dims: 2,
                n: 50_000,
                r: 2_000,
                ticks: 200,
                warm_ticks: 25,
                k: 10,
                grid_cells: 20_736,
                seed: 20060627,
            },
            Scale::Paper => ReplayConfig {
                dims: 4,
                n: 1_000_000,
                r: 10_000,
                ticks: 100,
                warm_ticks: 10,
                k: 20,
                grid_cells: 20_736,
                seed: 20060627,
            },
        }
    }

    /// The expiry-heavy variant: the window holds only two bursts, so
    /// every tick expires `r` tuples (half the window) and result expiry
    /// — hence full recomputation — dominates the measured loop.
    fn recompute_preset(scale: Scale, smoke: bool) -> ReplayConfig {
        let base = ReplayConfig::preset(scale, smoke);
        ReplayConfig {
            n: base.r * 2,
            ticks: base.ticks / 2,
            ..base
        }
    }

    fn summary(&self) -> String {
        format!(
            "d={} N={} r={} k={} grid={} ticks={}",
            self.dims, self.n, self.r, self.k, self.grid_cells, self.ticks
        )
    }
}

/// One measured scenario, keyed by (engine, q) for baseline comparison.
#[derive(Clone, Debug)]
struct ScenarioResult {
    engine: &'static str,
    q: usize,
    seconds: f64,
    tuples_per_sec: f64,
}

/// Drives one engine through warm-up, registration and the measured burst
/// replay; generic over the two grid monitors.
fn run_scenario<M>(
    cfg: &ReplayConfig,
    q: usize,
    mut register: impl FnMut(&mut M, QueryId, Query),
    mut tick: impl FnMut(&mut M, Timestamp, &[f64]),
    monitor: &mut M,
) -> (f64, f64) {
    let workload = QueryGen::new(cfg.dims, FnFamily::Linear, cfg.seed ^ 0x9e37_79b9)
        .expect("dims")
        .workload(q);
    let mut stream = StreamSim::new(cfg.dims, DataDist::Ind, cfg.r, cfg.seed).expect("dims");

    // Warm the window to steady-state density before registering queries.
    let mut remaining = cfg.n;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        tick(monitor, ts, batch);
        remaining -= chunk;
    }
    for (i, f) in workload.into_iter().enumerate() {
        register(
            monitor,
            QueryId(i as u64),
            Query::top_k(f, cfg.k).expect("k"),
        );
    }
    // Settle into steady state before the clock starts.
    for _ in 0..cfg.warm_ticks {
        let (ts, batch) = stream.next_batch();
        tick(monitor, ts, batch);
    }

    let start = Instant::now();
    for _ in 0..cfg.ticks {
        let (ts, batch) = stream.next_batch();
        tick(monitor, ts, batch);
    }
    let seconds = start.elapsed().as_secs_f64();
    let tuples = (cfg.ticks * cfg.r) as f64;
    (seconds, tuples / seconds.max(1e-12))
}

fn run_all(
    cfg: &ReplayConfig,
    tma_label: &'static str,
    sma_label: &'static str,
) -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for q in QUERY_COUNTS {
        let mut tma = TmaMonitor::new(
            cfg.dims,
            WindowSpec::Count(cfg.n),
            GridSpec::CellBudget(cfg.grid_cells),
        )
        .expect("config");
        let (seconds, tput) = run_scenario(
            cfg,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| m.tick(ts, b).expect("tick"),
            &mut tma,
        );
        out.push(ScenarioResult {
            engine: tma_label,
            q,
            seconds,
            tuples_per_sec: tput,
        });

        let mut sma = SmaMonitor::new(
            cfg.dims,
            WindowSpec::Count(cfg.n),
            GridSpec::CellBudget(cfg.grid_cells),
        )
        .expect("config");
        let (seconds, tput) = run_scenario(
            cfg,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| m.tick(ts, b).expect("tick"),
            &mut sma,
        );
        out.push(ScenarioResult {
            engine: sma_label,
            q,
            seconds,
            tuples_per_sec: tput,
        });
    }
    out
}

/// Renders the JSON report (hand-rolled: the workspace is offline and has
/// no serde; the schema is flat enough for string assembly).
fn to_json(
    mode: &str,
    cfg: &ReplayConfig,
    rec_cfg: &ReplayConfig,
    results: &[ScenarioResult],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"replay\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"dims\": {}, \"window\": {}, \"rate\": {}, \"ticks\": {}, \"k\": {}, \"grid_cells\": {}}},\n",
        cfg.dims, cfg.n, cfg.r, cfg.ticks, cfg.k, cfg.grid_cells
    ));
    s.push_str(&format!(
        "  \"recompute_config\": {{\"dims\": {}, \"window\": {}, \"rate\": {}, \"ticks\": {}, \"k\": {}, \"grid_cells\": {}}},\n",
        rec_cfg.dims, rec_cfg.n, rec_cfg.r, rec_cfg.ticks, rec_cfg.k, rec_cfg.grid_cells
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"q\": {}, \"seconds\": {:.6}, \"tuples_per_sec\": {:.1}}}{}\n",
            r.engine,
            r.q,
            r.seconds,
            r.tuples_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Minimal scenario extraction from a baseline JSON: scans for the
/// `"engine"`/`"q"`/`"tuples_per_sec"` triples emitted by [`to_json`].
/// Returns `None` when the file does not look like a replay baseline.
fn parse_baseline(text: &str) -> Option<Vec<(String, usize, f64)>> {
    if !text.contains("\"bench\": \"replay\"") {
        return None;
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"engine\"") {
            continue;
        }
        let engine = field_str(line, "engine")?;
        let q = field_num(line, "q")? as usize;
        let tput = field_num(line, "tuples_per_sec")?;
        if !(tput.is_finite() && tput > 0.0) {
            return None;
        }
        out.push((engine, q, tput));
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares this run against the committed baseline. Returns an error
/// message when the baseline is malformed or a matching scenario regressed
/// more than [`REGRESSION_FACTOR`].
fn check_baseline(path: &str, results: &[ScenarioResult]) -> std::result::Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("check-baseline: cannot read {path}: {e}"))?;
    let baseline =
        parse_baseline(&text).ok_or_else(|| format!("check-baseline: {path} is malformed"))?;
    let mut compared = 0;
    for (engine, q, base_tput) in &baseline {
        let Some(cur) = results.iter().find(|r| r.engine == engine && r.q == *q) else {
            continue;
        };
        compared += 1;
        if cur.tuples_per_sec * REGRESSION_FACTOR < *base_tput {
            return Err(format!(
                "check-baseline: {engine} Q={q} regressed >{REGRESSION_FACTOR}x: \
                 {:.0} tuples/s now vs {base_tput:.0} in {path}",
                cur.tuples_per_sec
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "check-baseline: no scenario of {path} matches this run"
        ));
    }
    Ok(compared)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let recompute_only = args.iter().any(|a| a == "--recompute");
    let baseline_path = args
        .iter()
        .position(|a| a == "--check-baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = Scale::from_args();
    let cfg = ReplayConfig::preset(scale, smoke);
    let rec_cfg = ReplayConfig::recompute_preset(scale, smoke);
    let mode = if smoke { "smoke" } else { "full" };

    cli::header(
        "Replay — maintenance hot path under arrival bursts",
        "beyond the paper: per-tick event-replay throughput vs Q",
        scale,
        &format!("{} | recompute: {}", cfg.summary(), rec_cfg.summary()),
    );

    let mut results = Vec::new();
    if !recompute_only {
        results.extend(run_all(&cfg, "tma", "sma"));
    }
    if recompute_only || smoke {
        // Expiry-heavy: stresses the full-recomputation path.
        results.extend(run_all(&rec_cfg, "tma-rec", "sma-rec"));
    }

    let mut table = Table::new(&["engine", "Q", "time [s]", "tuples/s"]);
    for r in &results {
        table.row(vec![
            r.engine.to_string(),
            r.q.to_string(),
            fmt_secs(r.seconds),
            format!("{:.0}", r.tuples_per_sec),
        ]);
    }
    cli::emit(&table);

    if json {
        println!("--- json ---");
        print!("{}", to_json(mode, &cfg, &rec_cfg, &results));
    }

    if let Some(path) = baseline_path {
        match check_baseline(&path, &results) {
            Ok(n) => println!("baseline check ok ({n} scenarios within {REGRESSION_FACTOR}x)"),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    if smoke {
        println!("smoke ok");
    }
}
