//! Hot-path replay benchmark: maintenance throughput under arrival bursts.
//!
//! Unlike the figure binaries (which reproduce the paper's absolute
//! numbers), this benchmark isolates the *event-replay hot path* — per
//! tick: ingest a burst of `r` arrivals, replay the recorded events
//! against every registered query's influence lists, recompute whatever
//! expiries broke. It sweeps the query count Q ∈ {16, 256, 4096} for both
//! grid engines and reports sustained arrival throughput (tuples/second)
//! plus per-tick latency (worst and median tick, µs).
//!
//! Besides the steady-state scenarios, an **expiry-heavy recompute**
//! scenario (engines `tma-rec` / `sma-rec`) shrinks the window to twice
//! the burst size: half the window turns over every tick, result tuples
//! expire constantly, and the measured loop is dominated by full
//! recomputations (the traversal + clean-up path) instead of event
//! replay.
//!
//! The **recompute-storm** scenario (`--burst`, engines `tma-burst` /
//! `sma-burst`) keeps the arrival rate constant but clusters timestamps:
//! `group` consecutive ticks share one timestamp over a short time
//! window, so a whole group's tuples expire *simultaneously* in a single
//! tick — a synchronized expiry wave that drains the top-k (and the
//! refill skyband) of most queries at once and forces a large fraction
//! of them through the recomputation path in one tick. This is the
//! worst-tick cliff the batched shared recomputation and skyband refill
//! exist to flatten, and two gates pin it down:
//!
//! * the storm-tick latency (median over the synchronized-expiry ticks —
//!   the per-tick maximum is a single sample and one scheduler hiccup
//!   would make the gate flaky) must stay within
//!   [`BURST_WORST_FACTOR`]× the same run's median tick. The run's own
//!   median is the steady-state anchor: burst ticks carry hot arrivals
//!   that *every* query's band must admit, so even a storm-free tick of
//!   this scenario does strictly more mandatory work than a tick of the
//!   uniform steady scenario;
//! * the storm must push at least [`BURST_MIN_STORM_FRACTION`] of the
//!   registered **TMA** queries through recomputation — otherwise the
//!   scenario isn't stressing the recompute path. SMA is exempt by
//!   design: its incremental k-skyband absorbs the same expiry wave with
//!   almost no fallbacks (the report still shows its fraction), which is
//!   exactly the TMA/SMA trade the paper describes.
//!
//! Both gates are advisory warnings in interactive runs and fatal under
//! `--check-baseline` (the CI configuration).
//!
//! Modes:
//!
//! * `--scale quick|default|paper` — workload preset (default: default);
//! * `--smoke` — seconds-scale run for CI (fixed small sizes, independent
//!   of `--scale`); includes the recompute scenarios;
//! * `--recompute` — run the expiry-heavy recompute scenarios (only) at
//!   the selected scale;
//! * `--burst` — additionally run the recompute-storm scenarios;
//! * `--json` — additionally emit a machine-readable JSON report to
//!   stdout (this is the format of the committed `BENCH_hotpath.json`
//!   baseline; regenerate it with
//!   `cargo run --release -p tkm_bench --bin replay -- --smoke --burst --json`);
//! * `--check-baseline <path>` — compare this run against a committed
//!   baseline and exit non-zero if the baseline is malformed, any
//!   matching scenario (matched by engine label and Q) regressed by more
//!   than 3x in throughput or worst-tick latency (the worst tick is a
//!   single sample, so its regression counts only above a 2 ms floor
//!   *and* when the scenario's median tick regressed too — an isolated
//!   scheduler hiccup moves one sample, a real regression moves both),
//!   or a burst gate above failed (a coarse guard against catastrophic
//!   hot-path regressions, not a +/-5% flake gate).

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::time::Instant;

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, Scale, Table};
use tkm_common::{QueryId, Timestamp};
use tkm_core::{EngineStats, GridSpec, Query, SmaMonitor, TmaMonitor};
use tkm_datagen::{DataDist, FnFamily, PointGen, QueryGen, StreamSim};
use tkm_window::WindowSpec;

/// Query counts swept by the replay scenarios.
const QUERY_COUNTS: [usize; 3] = [16, 256, 4096];

/// Tolerated regression factor (throughput and worst-tick latency) for
/// `--check-baseline`.
const REGRESSION_FACTOR: f64 = 3.0;

/// Burst gate: the storm-tick latency (median over synchronized-expiry
/// ticks) may cost at most this multiple of the same run's median tick.
const BURST_WORST_FACTOR: f64 = 5.0;

/// Burst gate: the storm must force at least this fraction of the
/// registered TMA queries through the recomputation path.
const BURST_MIN_STORM_FRACTION: f64 = 0.25;

/// Absolute floor (µs) under which a worst-tick baseline regression is
/// ignored: at small Q the worst tick is tens of µs and a single
/// scheduler hiccup would trip the 3x guard without any code regression.
const WORST_TICK_FLOOR_US: f64 = 2_000.0;

/// A worst-tick baseline regression is fatal only when corroborated by
/// the same scenario's *median* tick regressing by at least this factor:
/// the worst tick is a single sample, and an isolated scheduler hiccup
/// moves that one sample without moving the median, while a genuine
/// hot-path regression moves both.
const MEDIAN_CORROBORATION_FACTOR: f64 = 1.5;

/// One replay workload configuration.
#[derive(Clone, Copy, Debug)]
struct ReplayConfig {
    dims: usize,
    /// Count-window capacity.
    n: usize,
    /// Arrivals per tick (the burst size).
    r: usize,
    /// Measured ticks.
    ticks: usize,
    /// Unmeasured ticks between registration and measurement, so the
    /// measured window reflects steady state (scratch buffers sized,
    /// influence regions settled) rather than start-up transients.
    warm_ticks: usize,
    k: usize,
    grid_cells: usize,
    seed: u64,
}

impl ReplayConfig {
    fn preset(scale: Scale, smoke: bool) -> ReplayConfig {
        if smoke {
            return ReplayConfig {
                dims: 2,
                n: 4_000,
                r: 200,
                ticks: 40,
                warm_ticks: 10,
                k: 10,
                grid_cells: 4_096,
                seed: 20060627,
            };
        }
        match scale {
            Scale::Quick => ReplayConfig {
                dims: 2,
                n: 10_000,
                r: 500,
                ticks: 60,
                warm_ticks: 15,
                k: 10,
                grid_cells: 4_096,
                seed: 20060627,
            },
            Scale::Default => ReplayConfig {
                dims: 2,
                n: 50_000,
                r: 2_000,
                ticks: 200,
                warm_ticks: 25,
                k: 10,
                grid_cells: 20_736,
                seed: 20060627,
            },
            Scale::Paper => ReplayConfig {
                dims: 4,
                n: 1_000_000,
                r: 10_000,
                ticks: 100,
                warm_ticks: 10,
                k: 20,
                grid_cells: 20_736,
                seed: 20060627,
            },
        }
    }

    /// The expiry-heavy variant: the window holds only two bursts, so
    /// every tick expires `r` tuples (half the window) and result expiry
    /// — hence full recomputation — dominates the measured loop.
    fn recompute_preset(scale: Scale, smoke: bool) -> ReplayConfig {
        let base = ReplayConfig::preset(scale, smoke);
        ReplayConfig {
            n: base.r * 2,
            ticks: base.ticks / 2,
            ..base
        }
    }

    fn summary(&self) -> String {
        format!(
            "d={} N={} r={} k={} grid={} ticks={}",
            self.dims, self.n, self.r, self.k, self.grid_cells, self.ticks
        )
    }
}

/// The recompute-storm workload shape (see module docs).
#[derive(Clone, Copy, Debug)]
struct BurstConfig {
    /// Consecutive ticks sharing one timestamp — the expiry-wave size in
    /// ticks' worth of arrivals.
    group: usize,
    /// Time-window length in timestamps (2: one hot and one normal group
    /// are live at any moment).
    span: u64,
    /// Measured storm cycles (each `2 * group` ticks long: one hot group,
    /// one normal group).
    storms: usize,
    /// Coordinate floor for hot-group arrivals: hot tuples are drawn from
    /// `[hot_lo, 1)` per axis, so they outscore the normal groups and
    /// capture every query's top-k band.
    hot_lo: f64,
}

impl BurstConfig {
    fn preset(_scale: Scale, smoke: bool) -> BurstConfig {
        // Alternating hot/normal groups: the hot group's tuples dominate
        // every (positive-weight) query's band while live, then expire in
        // a single tick — draining the bands of the whole fleet at once
        // and forcing a synchronized mass recomputation. Because the
        // normal group survives the wave, the recompute thresholds (and
        // with them the influence regions) stay at steady-state size, so
        // the storm stresses *recomputation volume*, not a degenerate
        // empty-window threshold collapse.
        if smoke {
            BurstConfig {
                group: 4,
                span: 2,
                storms: 5,
                hot_lo: 0.5,
            }
        } else {
            BurstConfig {
                group: 4,
                span: 2,
                storms: 8,
                hot_lo: 0.5,
            }
        }
    }

    /// Ticks per storm cycle (one hot group followed by one normal group).
    fn cycle_ticks(&self) -> usize {
        2 * self.group
    }

    fn summary(&self) -> String {
        format!(
            "group={} span={} storms={} hot_lo={}",
            self.group, self.span, self.storms, self.hot_lo
        )
    }
}

/// One measured scenario, keyed by (engine, q) for baseline comparison.
#[derive(Clone, Debug)]
struct ScenarioResult {
    engine: &'static str,
    q: usize,
    seconds: f64,
    tuples_per_sec: f64,
    /// Slowest measured tick, µs.
    worst_tick_us: f64,
    /// Median measured tick, µs.
    median_tick_us: f64,
    /// Most queries pushed through recomputation in any single measured
    /// tick (0 when the engine never recomputed while measured).
    peak_recompute_queries: u64,
    /// Median duration of the synchronized-expiry (storm) ticks, µs —
    /// burst scenarios only.
    storm_tick_us: Option<f64>,
}

/// Raw measurements before the (engine, q) key is attached.
struct Measured {
    seconds: f64,
    tuples_per_sec: f64,
    worst_tick_us: f64,
    median_tick_us: f64,
    peak_recompute_queries: u64,
    storm_tick_us: Option<f64>,
}

impl Measured {
    fn into_result(self, engine: &'static str, q: usize) -> ScenarioResult {
        ScenarioResult {
            engine,
            q,
            seconds: self.seconds,
            tuples_per_sec: self.tuples_per_sec,
            worst_tick_us: self.worst_tick_us,
            median_tick_us: self.median_tick_us,
            peak_recompute_queries: self.peak_recompute_queries,
            storm_tick_us: self.storm_tick_us,
        }
    }
}

fn worst_and_median_us(ticks_us: &mut [f64]) -> (f64, f64) {
    ticks_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite tick durations"));
    let worst = *ticks_us.last().expect("at least one measured tick");
    let median = ticks_us[ticks_us.len() / 2];
    (worst, median)
}

/// Per-tick counter-delta dump, enabled with `REPLAY_DEBUG=1` (tuning
/// aid: shows where a storm tick's time goes).
fn debug_tick(i: usize, us: f64, last: &EngineStats, now: &EngineStats) {
    if std::env::var_os("REPLAY_DEBUG").is_none() {
        return;
    }
    eprintln!(
        "tick {i:>3}: {us:>9.0}us rq={} grp={} cells={} pts={} heap={} clean={} \
         cprobe={} tprobe={} upd={}",
        now.recompute_queries - last.recompute_queries,
        now.recompute_groups - last.recompute_groups,
        now.cells_processed - last.cells_processed,
        now.points_scanned - last.points_scanned,
        now.heap_pushes - last.heap_pushes,
        now.cleanup_cells - last.cleanup_cells,
        now.cell_probes - last.cell_probes,
        now.tuple_probes - last.tuple_probes,
        now.result_updates - last.result_updates,
    );
}

/// Drives one engine through warm-up, registration and the measured burst
/// replay; generic over the two grid monitors. `probe` reads the engine's
/// cumulative recompute-queries counter so the measured loop can track the
/// per-tick peak.
fn run_scenario<M>(
    cfg: &ReplayConfig,
    q: usize,
    mut register: impl FnMut(&mut M, QueryId, Query),
    mut tick: impl FnMut(&mut M, Timestamp, &[f64]),
    probe: impl Fn(&M) -> EngineStats,
    monitor: &mut M,
) -> Measured {
    let workload = QueryGen::new(cfg.dims, FnFamily::Linear, cfg.seed ^ 0x9e37_79b9)
        .expect("dims")
        .workload(q);
    let mut stream = StreamSim::new(cfg.dims, DataDist::Ind, cfg.r, cfg.seed).expect("dims");

    // Warm the window to steady-state density before registering queries.
    let mut remaining = cfg.n;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        tick(monitor, ts, batch);
        remaining -= chunk;
    }
    for (i, f) in workload.into_iter().enumerate() {
        register(
            monitor,
            QueryId(i as u64),
            Query::top_k(f, cfg.k).expect("k"),
        );
    }
    // Settle into steady state before the clock starts.
    for _ in 0..cfg.warm_ticks {
        let (ts, batch) = stream.next_batch();
        tick(monitor, ts, batch);
    }

    let mut ticks_us = Vec::with_capacity(cfg.ticks);
    let mut peak_rq = 0u64;
    let mut last = probe(monitor);
    let start = Instant::now();
    for i in 0..cfg.ticks {
        let (ts, batch) = stream.next_batch();
        let t0 = Instant::now();
        tick(monitor, ts, batch);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        ticks_us.push(us);
        let now = probe(monitor);
        peak_rq = peak_rq.max(now.recompute_queries - last.recompute_queries);
        debug_tick(i, us, &last, &now);
        last = now;
    }
    let seconds = start.elapsed().as_secs_f64();
    let tuples = (cfg.ticks * cfg.r) as f64;
    let (worst_tick_us, median_tick_us) = worst_and_median_us(&mut ticks_us);
    Measured {
        seconds,
        tuples_per_sec: tuples / seconds.max(1e-12),
        worst_tick_us,
        median_tick_us,
        peak_recompute_queries: peak_rq,
        storm_tick_us: None,
    }
}

/// Drives one engine through the recompute-storm workload: constant `r`
/// arrivals per tick, but `group` consecutive ticks share one timestamp
/// over a `span`-timestamp window, so each timestamp advance expires a
/// whole group at once (the synchronized expiry wave).
fn run_burst_scenario<M>(
    cfg: &ReplayConfig,
    burst: &BurstConfig,
    q: usize,
    mut register: impl FnMut(&mut M, QueryId, Query),
    mut tick: impl FnMut(&mut M, Timestamp, &[f64]),
    probe: impl Fn(&M) -> EngineStats,
    monitor: &mut M,
) -> Measured {
    let workload = QueryGen::new(cfg.dims, FnFamily::Linear, cfg.seed ^ 0x9e37_79b9)
        .expect("dims")
        .workload(q);
    let mut gen = PointGen::new(cfg.dims, DataDist::Ind, cfg.seed ^ 0x0b57).expect("dims");
    let mut buf = Vec::new();
    let group = burst.group as u64;
    let mut clock = 0u64;
    // Odd timestamps carry the hot wave (see `BurstConfig::hot_lo`).
    let next_wave = |gen: &mut PointGen, buf: &mut Vec<f64>, clock: u64| {
        buf.clear();
        gen.fill_batch(cfg.r, buf);
        if (clock / group) % 2 == 1 {
            for v in buf.iter_mut() {
                *v = burst.hot_lo + (1.0 - burst.hot_lo) * *v;
            }
        }
        Timestamp(clock / group)
    };

    // Fill the window (one full span of groups) before registering.
    for _ in 0..burst.group * burst.span as usize {
        let ts = next_wave(&mut gen, &mut buf, clock);
        tick(monitor, ts, &buf);
        clock += 1;
    }
    for (i, f) in workload.into_iter().enumerate() {
        register(
            monitor,
            QueryId(i as u64),
            Query::top_k(f, cfg.k).expect("k"),
        );
    }
    // Ride out two full storm cycles unmeasured: registration-time
    // thresholds tighten, scratch buffers size themselves.
    for _ in 0..2 * burst.cycle_ticks() {
        let ts = next_wave(&mut gen, &mut buf, clock);
        tick(monitor, ts, &buf);
        clock += 1;
    }

    let measured = burst.cycle_ticks() * burst.storms;
    let mut ticks_us = Vec::with_capacity(measured);
    let mut storm_us = Vec::with_capacity(burst.storms);
    let mut peak_rq = 0u64;
    let mut last = probe(monitor);
    let mut prev_ts = Timestamp(clock.saturating_sub(1) / group);
    let start = Instant::now();
    for i in 0..measured {
        let ts = next_wave(&mut gen, &mut buf, clock);
        // The storm tick: a timestamp advance drops the group stamped
        // `span` timestamps ago out of the time-sized window, and when
        // that group is a hot (odd) one the whole wave expires at once.
        let storm = ts != prev_ts && (ts.0.wrapping_sub(burst.span) % 2) == 1;
        prev_ts = ts;
        clock += 1;
        let t0 = Instant::now();
        tick(monitor, ts, &buf);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        ticks_us.push(us);
        if storm {
            storm_us.push(us);
        }
        let now = probe(monitor);
        peak_rq = peak_rq.max(now.recompute_queries - last.recompute_queries);
        debug_tick(i, us, &last, &now);
        last = now;
    }
    let seconds = start.elapsed().as_secs_f64();
    let tuples = (measured * cfg.r) as f64;
    let (_, storm_med) = worst_and_median_us(&mut storm_us);
    let (worst_tick_us, median_tick_us) = worst_and_median_us(&mut ticks_us);
    Measured {
        seconds,
        tuples_per_sec: tuples / seconds.max(1e-12),
        worst_tick_us,
        median_tick_us,
        peak_recompute_queries: peak_rq,
        storm_tick_us: Some(storm_med),
    }
}

fn run_all(
    cfg: &ReplayConfig,
    tma_label: &'static str,
    sma_label: &'static str,
) -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for q in QUERY_COUNTS {
        let mut tma = TmaMonitor::new(
            cfg.dims,
            WindowSpec::Count(cfg.n),
            GridSpec::CellBudget(cfg.grid_cells),
        )
        .expect("config");
        let m = run_scenario(
            cfg,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| {
                m.tick(ts, b).expect("tick");
            },
            |m| m.stats(),
            &mut tma,
        );
        out.push(m.into_result(tma_label, q));

        let mut sma = SmaMonitor::new(
            cfg.dims,
            WindowSpec::Count(cfg.n),
            GridSpec::CellBudget(cfg.grid_cells),
        )
        .expect("config");
        let m = run_scenario(
            cfg,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| {
                m.tick(ts, b).expect("tick");
            },
            |m| m.stats(),
            &mut sma,
        );
        out.push(m.into_result(sma_label, q));
    }
    out
}

fn run_all_burst(cfg: &ReplayConfig, burst: &BurstConfig) -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    // Capacity hint: the window holds `span` full waves plus the one being
    // accumulated.
    let capacity = cfg.r * burst.group * (burst.span as usize + 1);
    let window = WindowSpec::TimeSized {
        duration: burst.span,
        capacity,
    };
    for q in QUERY_COUNTS {
        let mut tma = TmaMonitor::new(cfg.dims, window, GridSpec::CellBudget(cfg.grid_cells))
            .expect("config");
        let m = run_burst_scenario(
            cfg,
            burst,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| {
                m.tick(ts, b).expect("tick");
            },
            |m| m.stats(),
            &mut tma,
        );
        out.push(m.into_result("tma-burst", q));

        let mut sma = SmaMonitor::new(cfg.dims, window, GridSpec::CellBudget(cfg.grid_cells))
            .expect("config");
        let m = run_burst_scenario(
            cfg,
            burst,
            q,
            |m, id, query| m.register_query(id, query).expect("register"),
            |m, ts, b| {
                m.tick(ts, b).expect("tick");
            },
            |m| m.stats(),
            &mut sma,
        );
        out.push(m.into_result("sma-burst", q));
    }
    out
}

/// Evaluates the burst gates (see module docs). Returns one report line
/// per burst scenario and the list of gate violations.
fn burst_gates(results: &[ScenarioResult]) -> (Vec<String>, Vec<String>) {
    let mut report = Vec::new();
    let mut errors = Vec::new();
    for b in results.iter().filter(|r| r.engine.ends_with("-burst")) {
        let frac = b.peak_recompute_queries as f64 / (b.q as f64).max(1.0);
        let storm = b.storm_tick_us.unwrap_or(b.worst_tick_us);
        let ratio = storm / b.median_tick_us.max(1e-9);
        let is_tma = b.engine.starts_with("tma");
        report.push(format!(
            "{} Q={}: storm tick {:.0}µs = {ratio:.2}x run median ({:.0}µs), \
             worst {:.0}µs; storm peak {} queries recomputed ({:.0}%){}",
            b.engine,
            b.q,
            storm,
            b.median_tick_us,
            b.worst_tick_us,
            b.peak_recompute_queries,
            frac * 100.0,
            if is_tma {
                ""
            } else {
                " [informational: the incremental skyband absorbs the wave]"
            }
        ));
        if ratio > BURST_WORST_FACTOR {
            errors.push(format!(
                "burst gate: {} Q={} storm tick {:.0}µs exceeds {BURST_WORST_FACTOR}x \
                 the run's median tick ({:.0}µs)",
                b.engine, b.q, storm, b.median_tick_us
            ));
        }
        // The fraction gate proves the scenario exercises the recompute
        // path, which only TMA falls back to: SMA's incremental k-skyband
        // rides out the same expiry wave with near-zero recomputations by
        // design (the paper's core TMA/SMA trade), so gating it on
        // recompute volume would reject correct behaviour.
        if is_tma && frac < BURST_MIN_STORM_FRACTION {
            errors.push(format!(
                "burst gate: {} Q={} storm only pushed {:.0}% of queries through \
                 recomputation (needs >={:.0}%) — the scenario is not stressing \
                 the recompute path",
                b.engine,
                b.q,
                frac * 100.0,
                BURST_MIN_STORM_FRACTION * 100.0
            ));
        }
    }
    (report, errors)
}

/// Renders the JSON report (hand-rolled: the workspace is offline and has
/// no serde; the schema is flat enough for string assembly).
fn to_json(
    mode: &str,
    cfg: &ReplayConfig,
    rec_cfg: &ReplayConfig,
    burst: Option<&BurstConfig>,
    results: &[ScenarioResult],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"replay\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"dims\": {}, \"window\": {}, \"rate\": {}, \"ticks\": {}, \"k\": {}, \"grid_cells\": {}}},\n",
        cfg.dims, cfg.n, cfg.r, cfg.ticks, cfg.k, cfg.grid_cells
    ));
    s.push_str(&format!(
        "  \"recompute_config\": {{\"dims\": {}, \"window\": {}, \"rate\": {}, \"ticks\": {}, \"k\": {}, \"grid_cells\": {}}},\n",
        rec_cfg.dims, rec_cfg.n, rec_cfg.r, rec_cfg.ticks, rec_cfg.k, rec_cfg.grid_cells
    ));
    if let Some(b) = burst {
        s.push_str(&format!(
            "  \"burst_config\": {{\"group\": {}, \"span\": {}, \"storms\": {}, \"rate\": {}}},\n",
            b.group, b.span, b.storms, cfg.r
        ));
    }
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let storm = r
            .storm_tick_us
            .map(|v| format!(", \"storm_tick_us\": {v:.1}"))
            .unwrap_or_default();
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"q\": {}, \"seconds\": {:.6}, \"tuples_per_sec\": {:.1}, \
             \"worst_tick_us\": {:.1}, \"median_tick_us\": {:.1}, \"peak_recompute_queries\": {}{}}}{}\n",
            r.engine,
            r.q,
            r.seconds,
            r.tuples_per_sec,
            r.worst_tick_us,
            r.median_tick_us,
            r.peak_recompute_queries,
            storm,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// One baseline scenario row: engine, Q, throughput, and (for baselines
/// produced after worst-tick tracking landed) the worst tick in µs.
struct BaselineRow {
    engine: String,
    q: usize,
    tuples_per_sec: f64,
    worst_tick_us: Option<f64>,
    median_tick_us: Option<f64>,
}

/// Minimal scenario extraction from a baseline JSON: scans for the
/// `"engine"`/`"q"`/`"tuples_per_sec"` triples emitted by [`to_json`].
/// Returns `None` when the file does not look like a replay baseline.
fn parse_baseline(text: &str) -> Option<Vec<BaselineRow>> {
    if !text.contains("\"bench\": \"replay\"") {
        return None;
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.contains("\"engine\"") {
            continue;
        }
        let engine = field_str(line, "engine")?;
        let q = field_num(line, "q")? as usize;
        let tuples_per_sec = field_num(line, "tuples_per_sec")?;
        if !(tuples_per_sec.is_finite() && tuples_per_sec > 0.0) {
            return None;
        }
        let worst_tick_us = field_num(line, "worst_tick_us").filter(|w| w.is_finite() && *w > 0.0);
        let median_tick_us =
            field_num(line, "median_tick_us").filter(|w| w.is_finite() && *w > 0.0);
        out.push(BaselineRow {
            engine,
            q,
            tuples_per_sec,
            worst_tick_us,
            median_tick_us,
        });
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares this run against the committed baseline. Returns an error
/// message when the baseline is malformed or a matching scenario regressed
/// more than [`REGRESSION_FACTOR`] in throughput or worst-tick latency.
fn check_baseline(path: &str, results: &[ScenarioResult]) -> std::result::Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("check-baseline: cannot read {path}: {e}"))?;
    let baseline =
        parse_baseline(&text).ok_or_else(|| format!("check-baseline: {path} is malformed"))?;
    let mut compared = 0;
    for row in &baseline {
        let Some(cur) = results
            .iter()
            .find(|r| r.engine == row.engine && r.q == row.q)
        else {
            continue;
        };
        compared += 1;
        if cur.tuples_per_sec * REGRESSION_FACTOR < row.tuples_per_sec {
            return Err(format!(
                "check-baseline: {} Q={} regressed >{REGRESSION_FACTOR}x: \
                 {:.0} tuples/s now vs {:.0} in {path}",
                row.engine, row.q, cur.tuples_per_sec, row.tuples_per_sec
            ));
        }
        if let Some(base_worst) = row.worst_tick_us {
            // The absolute floor keeps tiny-Q scenarios (worst ticks of
            // tens of µs, dominated by scheduler jitter) from tripping
            // the ratio guard without a real regression; the median
            // corroboration filters isolated one-tick hiccups at any Q
            // (see [`MEDIAN_CORROBORATION_FACTOR`]). Baselines predating
            // median tracking corroborate trivially.
            let corroborated = row
                .median_tick_us
                .is_none_or(|m| cur.median_tick_us > m * MEDIAN_CORROBORATION_FACTOR);
            if cur.worst_tick_us > base_worst * REGRESSION_FACTOR
                && cur.worst_tick_us > WORST_TICK_FLOOR_US
                && corroborated
            {
                return Err(format!(
                    "check-baseline: {} Q={} worst tick regressed >{REGRESSION_FACTOR}x: \
                     {:.0}µs now vs {:.0}µs in {path} (median {:.0}µs vs {:.0}µs)",
                    row.engine,
                    row.q,
                    cur.worst_tick_us,
                    base_worst,
                    cur.median_tick_us,
                    row.median_tick_us.unwrap_or(0.0)
                ));
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "check-baseline: no scenario of {path} matches this run"
        ));
    }
    Ok(compared)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let recompute_only = args.iter().any(|a| a == "--recompute");
    let burst_mode = args.iter().any(|a| a == "--burst");
    let baseline_path = args
        .iter()
        .position(|a| a == "--check-baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = Scale::from_args();
    let cfg = ReplayConfig::preset(scale, smoke);
    let rec_cfg = ReplayConfig::recompute_preset(scale, smoke);
    let burst_cfg = BurstConfig::preset(scale, smoke);
    let mode = if smoke { "smoke" } else { "full" };

    cli::header(
        "Replay — maintenance hot path under arrival bursts",
        "beyond the paper: per-tick event-replay throughput vs Q",
        scale,
        &format!(
            "{} | recompute: {} | burst: {}",
            cfg.summary(),
            rec_cfg.summary(),
            burst_cfg.summary()
        ),
    );

    let mut results = Vec::new();
    if !recompute_only {
        results.extend(run_all(&cfg, "tma", "sma"));
    }
    if recompute_only || smoke {
        // Expiry-heavy: stresses the full-recomputation path.
        results.extend(run_all(&rec_cfg, "tma-rec", "sma-rec"));
    }
    if burst_mode {
        // Recompute storm: synchronized expiry waves.
        results.extend(run_all_burst(&cfg, &burst_cfg));
    }

    let mut table = Table::new(&[
        "engine",
        "Q",
        "time [s]",
        "tuples/s",
        "worst [µs]",
        "med [µs]",
        "storm [µs]",
        "peak rq",
    ]);
    for r in &results {
        table.row(vec![
            r.engine.to_string(),
            r.q.to_string(),
            fmt_secs(r.seconds),
            format!("{:.0}", r.tuples_per_sec),
            format!("{:.0}", r.worst_tick_us),
            format!("{:.0}", r.median_tick_us),
            r.storm_tick_us
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            r.peak_recompute_queries.to_string(),
        ]);
    }
    cli::emit(&table);

    let (burst_report, burst_errors) = burst_gates(&results);
    for line in &burst_report {
        println!("{line}");
    }

    if json {
        println!("--- json ---");
        print!(
            "{}",
            to_json(
                mode,
                &cfg,
                &rec_cfg,
                burst_mode.then_some(&burst_cfg),
                &results
            )
        );
    }

    let mut failed = false;
    if let Some(path) = baseline_path {
        // Baseline-check mode is the CI configuration; record which lint
        // pass guarded the hot-path annotations this run relies on.
        println!("static analysis: {}", tkm_lint::describe());
        match check_baseline(&path, &results) {
            Ok(n) => println!("baseline check ok ({n} scenarios within {REGRESSION_FACTOR}x)"),
            Err(msg) => {
                eprintln!("{msg}");
                failed = true;
            }
        }
        // Burst gates are fatal only in baseline-check (CI) mode, so
        // exploratory runs can still report on deliberately pathological
        // configurations.
        for msg in &burst_errors {
            eprintln!("{msg}");
            failed = true;
        }
    } else {
        for msg in &burst_errors {
            println!("warning: {msg}");
        }
    }
    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("smoke ok");
    }
}
