//! §6 analysis vs measurement.
//!
//! Puts the paper's analytical model next to counters collected from the
//! running engines: the recomputation probability bound
//! `Pr_rec ≤ 1 − (1 − r/N)^k` against TMA's measured recomputations per
//! query-cycle, the predicted T_TMA/T_SMA cost ratio against measured CPU
//! ratios, and the skyband-size prediction (≈ k) against Table 2 numbers.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_analysis::ModelParams;
use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Model vs measured — §6 analysis against engine counters",
        "Mouratidis et al., SIGMOD 2006, Section 6",
        scale,
        &base.summary(),
    );

    let mut table = Table::new(&[
        "k",
        "Pr_rec bound",
        "TMA recompute rate",
        "T_TMA/T_SMA model",
        "TMA/SMA measured",
        "skyband len",
    ]);
    for k in [1usize, 5, 10, 20, 50] {
        let p = ExpParams { k, ..base };
        let model = ModelParams {
            n: p.n as f64,
            d: p.dims as f64,
            r: p.r as f64,
            q: p.q as f64,
            k: k as f64,
            delta: 1.0 / (p.grid_cells as f64).powf(1.0 / p.dims as f64).round(),
        };
        let tma = tkm_bench::run_engine(EngineSel::Tma, &p).expect("TMA run");
        let sma = tkm_bench::run_engine(EngineSel::Sma, &p).expect("SMA run");
        // Measured recomputations per query per cycle.
        let rate = tma.recomputations as f64 / (p.q as f64 * p.ticks as f64);
        table.row(vec![
            k.to_string(),
            format!("{:.3}", model.pr_rec()),
            format!("{rate:.3}"),
            format!("{:.2}", model.t_tma() / model.t_sma()),
            format!("{:.2}", tma.cpu_seconds / sma.cpu_seconds),
            format!("{:.1}", sma.avg_view_len),
        ]);
    }
    cli::emit(&table);
    println!(
        "shape check: the measured TMA recompute rate stays below the \
         Pr_rec bound and both climb with k; the measured TMA/SMA ratio \
         moves with the model's (≥ 1, growing in k); skyband length ≈ k."
    );

    let m = ModelParams::default();
    let mut summary = Table::new(&["quantity", "paper default"]);
    summary.row(vec![
        "cells per query C".into(),
        format!("{:.1}", m.cells_per_query()),
    ]);
    summary.row(vec![
        "tuples per cell".into(),
        format!("{:.1}", m.tuples_per_cell()),
    ]);
    summary.row(vec!["Pr_rec".into(), format!("{:.3}", m.pr_rec())]);
    summary.row(vec!["T_comp (ops)".into(), fmt_secs(m.t_comp())]);
    summary.row(vec!["T_TMA (ops)".into(), format!("{:.0}", m.t_tma())]);
    summary.row(vec!["T_SMA (ops)".into(), format!("{:.0}", m.t_sma())]);
    summary.row(vec!["S_TMA (slots)".into(), format!("{:.0}", m.s_tma())]);
    summary.row(vec!["S_SMA (slots)".into(), format!("{:.0}", m.s_sma())]);
    println!("--- closed-form values at the paper's default setting ---");
    cli::emit(&summary);
}
