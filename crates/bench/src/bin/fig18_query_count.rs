//! Figure 18: CPU time vs query cardinality Q, IND and ANT.
//!
//! The paper varies Q from 100 to 5000. Expected shape: every method
//! scales roughly linearly in Q; relative order TSL ≫ TMA > SMA unchanged.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 18 — CPU time vs number of queries",
        "Mouratidis et al., SIGMOD 2006, Figure 18 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["Q", "TSL [s]", "TMA [s]", "SMA [s]"]);
        for queries in [100usize, 500, 1000, 2000, 5000] {
            let p = ExpParams {
                q: ExpParams::scale_q(scale, queries),
                dist,
                ..base
            };
            let mut row = vec![p.q.to_string()];
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_secs(m.cpu_seconds));
            }
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!("shape check: near-linear growth in Q for every method; TSL ≫ TMA > SMA.");
}
