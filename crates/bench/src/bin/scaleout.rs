//! Beyond the paper: query-sharded scale-out.
//!
//! The paper's server is single-threaded; per-cycle cost is linear in the
//! query count Q (Figure 18). This experiment runs the same workload on a
//! `ParallelMonitor` with 1, 2, 4 and 8 SMA replicas and reports the
//! per-cycle wall time and total memory — quantifying the CPU/memory trade
//! of sharding queries across cores.

use std::time::Instant;

use tkm_bench::table::{fmt_mb, fmt_secs};
use tkm_bench::{cli, ExpParams, Scale, Table};
use tkm_common::QueryId;
use tkm_core::{GridSpec, ParallelMonitor, Query, SmaMonitor};
use tkm_datagen::{QueryGen, StreamSim};
use tkm_window::WindowSpec;

fn main() {
    let scale = Scale::from_args();
    // Sharding pays off when per-cycle CPU work is substantial: use the
    // heavy end of the paper's parameter space (ANT data, k = 100, 4x the
    // default query count).
    let base = ExpParams::defaults(scale);
    let p = ExpParams {
        dist: tkm_datagen::DataDist::Ant,
        k: 100,
        q: base.q * 4,
        ..base
    };
    cli::header(
        "Scale-out — query sharding across cores (beyond the paper)",
        "extension of Figure 18 (cost linear in Q) to multi-core",
        scale,
        &p.summary(),
    );

    let workload = QueryGen::new(p.dims, p.family, p.seed ^ 0x517c_c1b7)
        .expect("dims")
        .workload(p.q);

    let mut table = Table::new(&["shards", "time [s]", "speedup", "space [MB]"]);
    let mut baseline = None;
    for shards in [1usize, 2, 4, 8] {
        let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("dims");
        let mut m = ParallelMonitor::with_replicas(shards, || {
            SmaMonitor::new(
                p.dims,
                WindowSpec::Count(p.n),
                GridSpec::CellBudget(p.grid_cells),
            )
        })
        .expect("config");
        let mut remaining = p.n;
        while remaining > 0 {
            let chunk = remaining.min(50_000);
            let (ts, batch) = stream.warmup_batch(chunk);
            m.tick(ts, batch).expect("tick");
            remaining -= chunk;
        }
        for (i, f) in workload.iter().enumerate() {
            m.register_query(QueryId(i as u64), Query::top_k(f.clone(), p.k).expect("k"))
                .expect("register");
        }
        let start = Instant::now();
        for _ in 0..p.ticks {
            let (ts, batch) = stream.next_batch();
            m.tick(ts, batch).expect("tick");
        }
        let secs = start.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(secs);
        let speedup = base.max(1e-12) / secs.max(1e-12);
        table.row(vec![
            shards.to_string(),
            fmt_secs(secs),
            format!("{speedup:.2}x"),
            fmt_mb(m.space_bytes()),
        ]);
    }
    cli::emit(&table);
    println!(
        "shape check: time drops with shards until per-tick thread overhead \
         dominates; memory grows linearly with shards (replicated windows)."
    );
}
