//! Beyond the paper: query-sharded scale-out, replicated vs shared ingest.
//!
//! The paper's server is single-threaded; per-cycle cost is linear in the
//! query count Q (Figure 18). This experiment runs the same workload on
//! both sharding designs at S ∈ {1, 2, 4, 8} SMA shards:
//!
//! * `ParallelMonitor` — S full engine replicas: every arrival is
//!   re-ingested S times and window+grid memory grows S-fold;
//! * `SharedParallelMonitor` — one shared window+grid ingested once, with
//!   per-query maintenance partitioned across S threads.
//!
//! Reported per design and S: per-run wall time, speedup over S=1, and
//! total memory — quantifying that shared ingest turns the S-fold memory
//! bill into O(1) tuple storage at the same CPU scale-out.
//!
//! `--smoke` runs a seconds-scale configuration (used by CI to exercise
//! the parallel path on every push).

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::time::Instant;

use tkm_bench::table::{fmt_mb, fmt_secs};
use tkm_bench::{cli, ExpParams, Scale, Table};
use tkm_common::QueryId;
use tkm_core::{GridSpec, ParallelMonitor, Query, SharedSmaMonitor, SmaMonitor};
use tkm_datagen::{QueryGen, StreamSim};
use tkm_window::WindowSpec;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Drives one monitor through warm-up, registration and the measured
/// ticks; returns (seconds, space_bytes).
fn drive<M>(
    p: &ExpParams,
    workload: &[tkm_common::ScoreFn],
    mut register: impl FnMut(&mut M, QueryId, Query),
    mut tick: impl FnMut(&mut M, tkm_common::Timestamp, &[f64]),
    space: impl Fn(&M) -> usize,
    monitor: &mut M,
) -> (f64, usize) {
    let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("dims");
    let mut remaining = p.n;
    while remaining > 0 {
        let chunk = remaining.min(50_000);
        let (ts, batch) = stream.warmup_batch(chunk);
        tick(monitor, ts, batch);
        remaining -= chunk;
    }
    for (i, f) in workload.iter().enumerate() {
        register(
            monitor,
            QueryId(i as u64),
            Query::top_k(f.clone(), p.k).expect("k"),
        );
    }
    let start = Instant::now();
    for _ in 0..p.ticks {
        let (ts, batch) = stream.next_batch();
        tick(monitor, ts, batch);
    }
    (start.elapsed().as_secs_f64(), space(monitor))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Quick
    } else {
        Scale::from_args()
    };
    // Sharding pays off when per-cycle CPU work is substantial: use the
    // heavy end of the paper's parameter space (ANT data, k = 100, 4x the
    // default query count). The smoke preset only checks plumbing.
    let base = ExpParams::defaults(scale);
    let p = if smoke {
        ExpParams {
            dist: tkm_datagen::DataDist::Ant,
            n: 2_000,
            r: 50,
            k: 10,
            q: 16,
            ticks: 5,
            grid_cells: 1_296,
            ..base
        }
    } else {
        ExpParams {
            dist: tkm_datagen::DataDist::Ant,
            k: 100,
            q: base.q * 4,
            ..base
        }
    };
    cli::header(
        "Scale-out — query sharding across cores (beyond the paper)",
        "extension of Figure 18 (cost linear in Q) to multi-core",
        scale,
        &p.summary(),
    );

    let workload = QueryGen::new(p.dims, p.family, p.seed ^ 0x517c_c1b7)
        .expect("dims")
        .workload(p.q);

    let mut table = Table::new(&[
        "design",
        "shards",
        "time [s]",
        "speedup",
        "space [MB]",
        "space vs S=1",
    ]);
    for design in ["replicated", "shared"] {
        let mut baseline_time = None;
        let mut baseline_space = None;
        for shards in SHARD_COUNTS {
            let (secs, bytes) = match design {
                "replicated" => {
                    let mut m = ParallelMonitor::with_replicas(shards, || {
                        SmaMonitor::new(
                            p.dims,
                            WindowSpec::Count(p.n),
                            GridSpec::CellBudget(p.grid_cells),
                        )
                    })
                    .expect("config");
                    drive(
                        &p,
                        &workload,
                        |m, id, q| m.register_query(id, q).expect("register"),
                        |m, ts, b| m.tick(ts, b).expect("tick"),
                        |m| m.space_bytes(),
                        &mut m,
                    )
                }
                _ => {
                    let mut m = SharedSmaMonitor::new(
                        p.dims,
                        WindowSpec::Count(p.n),
                        GridSpec::CellBudget(p.grid_cells),
                        shards,
                    )
                    .expect("config");
                    drive(
                        &p,
                        &workload,
                        |m, id, q| m.register_query(id, q).expect("register"),
                        |m, ts, b| m.tick(ts, b).expect("tick"),
                        |m| m.space_bytes(),
                        &mut m,
                    )
                }
            };
            let t0 = *baseline_time.get_or_insert(secs);
            let s0 = *baseline_space.get_or_insert(bytes);
            table.row(vec![
                design.to_string(),
                shards.to_string(),
                fmt_secs(secs),
                format!("{:.2}x", t0.max(1e-12) / secs.max(1e-12)),
                fmt_mb(bytes),
                format!("{:.2}x", bytes as f64 / s0.max(1) as f64),
            ]);
        }
    }
    cli::emit(&table);
    println!(
        "shape check: both designs speed up until per-tick thread overhead \
         dominates; replicated memory grows ~linearly with shards (S windows \
         + grids) while shared memory stays near flat (one window + grid, \
         per-shard query state only)."
    );
    if smoke {
        println!("smoke ok");
    }
}
