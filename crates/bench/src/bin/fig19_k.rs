//! Figure 19: CPU time vs result cardinality k, IND and ANT.
//!
//! The paper varies k over {1, 5, 10, 20, 50, 100}. Expected shape: cost
//! grows with k (larger influence regions); TMA and SMA start close and
//! the gap widens with k because the recomputation probability
//! `Pr_rec ≤ 1 − (1 − r/N)^k` rises — at k = 100 on ANT, TMA approaches
//! TSL while SMA stays well below.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 19 — CPU time vs number of results k",
        "Mouratidis et al., SIGMOD 2006, Figure 19 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["k", "TSL [s]", "TMA [s]", "SMA [s]", "TMA recomputes"]);
        for k in [1usize, 5, 10, 20, 50, 100] {
            let p = ExpParams { k, dist, ..base };
            let mut row = vec![k.to_string()];
            let mut tma_recomputes = 0;
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_secs(m.cpu_seconds));
                if sel == EngineSel::Tma {
                    tma_recomputes = m.recomputations;
                }
            }
            row.push(tma_recomputes.to_string());
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!(
        "shape check: cost grows with k; the TMA/SMA gap widens with k as \
         TMA's recomputation count climbs."
    );
}
