//! Figure 15: CPU time vs dimensionality d ∈ {2..6}, IND and ANT.
//!
//! Grid budget stays at ~12⁴ cells for every d (the paper's sizing rule).
//! Expected shape: all engines degrade with d; TMA ≫ TSL demonstrates the
//! computation module's advantage over TA; SMA < TMA thanks to fewer
//! recomputations; everything is slower on ANT.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::DataDist;

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 15 — CPU time vs data dimensionality",
        "Mouratidis et al., SIGMOD 2006, Figure 15 (a) IND, (b) ANT",
        scale,
        &base.summary(),
    );

    for dist in [DataDist::Ind, DataDist::Ant] {
        let mut table = Table::new(&["d", "TSL [s]", "TMA [s]", "SMA [s]"]);
        for dims in 2..=6 {
            let p = ExpParams { dims, dist, ..base };
            let mut row = vec![dims.to_string()];
            for sel in EngineSel::ALL {
                let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                row.push(fmt_secs(m.cpu_seconds));
            }
            table.row(row);
        }
        println!("--- {} ---", dist.label());
        cli::emit(&table);
    }
    println!(
        "shape check: cost grows with d for all methods; TSL is the slowest \
         by an order of magnitude; SMA ≤ TMA; ANT costs more than IND."
    );
}
