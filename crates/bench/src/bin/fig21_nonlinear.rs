//! Figure 21: CPU time vs d for non-linear preference functions.
//!
//! (a)/(b): product functions `f(p) = Π (aᵢ + pᵢ)`; (c)/(d): quadratic
//! functions `f(p) = Σ aᵢ·pᵢ²`; each on IND and ANT. Expected shape:
//! identical relative order to the linear case (Figure 15) — the framework
//! only needs per-dimension monotonicity.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, EngineSel, ExpParams, Scale, Table};
use tkm_datagen::{DataDist, FnFamily};

fn main() {
    let scale = Scale::from_args();
    let base = ExpParams::defaults(scale);
    cli::header(
        "Figure 21 — CPU time vs d for non-linear functions",
        "Mouratidis et al., SIGMOD 2006, Figure 21 (a)-(d)",
        scale,
        &base.summary(),
    );

    for family in [FnFamily::Product, FnFamily::Quadratic] {
        for dist in [DataDist::Ind, DataDist::Ant] {
            let mut table = Table::new(&["d", "TSL [s]", "TMA [s]", "SMA [s]"]);
            for dims in 2..=6 {
                let p = ExpParams {
                    dims,
                    dist,
                    family,
                    ..base
                };
                let mut row = vec![dims.to_string()];
                for sel in EngineSel::ALL {
                    let m = tkm_bench::run_engine(sel, &p).expect("engine run");
                    row.push(fmt_secs(m.cpu_seconds));
                }
                table.row(row);
            }
            println!("--- f = {} on {} ---", family.label(), dist.label());
            cli::emit(&table);
        }
    }
    println!(
        "shape check: same relative performance as the linear workload \
         (TSL ≫ TMA ≥ SMA, growing with d) for both non-linear families."
    );
}
