//! §7 extensions: constrained queries, threshold queries, update streams.
//!
//! The paper describes three extensions without dedicated figures; this
//! experiment exercises each and reports throughput, demonstrating that
//! the framework carries over (and quantifying the trade-offs: constrained
//! traversals stay clipped to their region, threshold queries never
//! recompute, update-stream TMA pays hash-cell overhead).

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::time::Instant;

use tkm_bench::table::fmt_secs;
use tkm_bench::{cli, ExpParams, Scale, Table};
use tkm_common::{QueryId, Rect};
use tkm_core::{GridSpec, Query, SmaMonitor, ThresholdMonitor, TmaMonitor, UpdateStreamTma};
use tkm_datagen::{QueryGen, StreamSim};
use tkm_window::WindowSpec;

fn constraint_for(dims: usize, i: usize) -> Rect {
    // Deterministic varied constraint boxes covering ~25% of each axis.
    let f = (i % 7) as f64 / 10.0;
    let lo = vec![f * 0.6; dims];
    let hi = vec![(f * 0.6 + 0.4).min(1.0); dims];
    Rect::new(lo, hi).expect("valid box")
}

fn main() {
    let scale = Scale::from_args();
    let p = ExpParams::defaults(scale);
    cli::header(
        "Extensions — constrained / threshold / update-stream variants (§7)",
        "Mouratidis et al., SIGMOD 2006, Section 7",
        scale,
        &p.summary(),
    );
    let mut table = Table::new(&["variant", "engine", "time [s]", "recomputes"]);
    let workload = QueryGen::new(p.dims, p.family, p.seed ^ 0xabcdef)
        .expect("valid dims")
        .workload(p.q);

    // --- Constrained top-k on TMA and SMA ---
    for constrained in [false, true] {
        let label = if constrained {
            "constrained"
        } else {
            "full-space"
        };
        for engine in ["TMA", "SMA"] {
            let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("dims");
            enum E {
                T(TmaMonitor),
                S(SmaMonitor),
            }
            let mut m = match engine {
                "TMA" => E::T(
                    TmaMonitor::new(
                        p.dims,
                        WindowSpec::Count(p.n),
                        GridSpec::CellBudget(p.grid_cells),
                    )
                    .expect("config"),
                ),
                _ => E::S(
                    SmaMonitor::new(
                        p.dims,
                        WindowSpec::Count(p.n),
                        GridSpec::CellBudget(p.grid_cells),
                    )
                    .expect("config"),
                ),
            };
            let mut remaining = p.n;
            while remaining > 0 {
                let chunk = remaining.min(50_000);
                let (ts, batch) = stream.warmup_batch(chunk);
                match &mut m {
                    E::T(x) => x.tick(ts, batch).expect("tick"),
                    E::S(x) => x.tick(ts, batch).expect("tick"),
                }
                remaining -= chunk;
            }
            for (i, f) in workload.iter().enumerate() {
                let q = if constrained {
                    Query::constrained(f.clone(), p.k, constraint_for(p.dims, i)).expect("query")
                } else {
                    Query::top_k(f.clone(), p.k).expect("query")
                };
                match &mut m {
                    E::T(x) => x.register_query(QueryId(i as u64), q).expect("register"),
                    E::S(x) => x.register_query(QueryId(i as u64), q).expect("register"),
                }
            }
            let before = match &m {
                E::T(x) => x.stats().recomputations(),
                E::S(x) => x.stats().recomputations(),
            };
            let start = Instant::now();
            for _ in 0..p.ticks {
                let (ts, batch) = stream.next_batch();
                match &mut m {
                    E::T(x) => x.tick(ts, batch).expect("tick"),
                    E::S(x) => x.tick(ts, batch).expect("tick"),
                }
            }
            let secs = start.elapsed().as_secs_f64();
            let recomputes = match &m {
                E::T(x) => x.stats().recomputations(),
                E::S(x) => x.stats().recomputations(),
            } - before;
            table.row(vec![
                label.into(),
                engine.into(),
                fmt_secs(secs),
                recomputes.to_string(),
            ]);
        }
    }

    // --- Threshold monitoring ---
    {
        let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("dims");
        let mut m = ThresholdMonitor::new(
            p.dims,
            WindowSpec::Count(p.n),
            GridSpec::CellBudget(p.grid_cells),
        )
        .expect("config");
        let mut remaining = p.n;
        while remaining > 0 {
            let chunk = remaining.min(50_000);
            let (ts, batch) = stream.warmup_batch(chunk);
            m.tick(ts, batch).expect("tick");
            remaining -= chunk;
        }
        for (i, f) in workload.iter().enumerate() {
            // Thresholds near the top of each function's range keep the
            // matching sets top-k-sized.
            let tau = 0.97 * f.max_score_rect(&vec![0.0; p.dims], &vec![1.0; p.dims]);
            m.register_query(QueryId(i as u64), f.clone(), tau)
                .expect("register");
        }
        let start = Instant::now();
        for _ in 0..p.ticks {
            let (ts, batch) = stream.next_batch();
            m.tick(ts, batch).expect("tick");
        }
        table.row(vec![
            "threshold".into(),
            "grid".into(),
            fmt_secs(start.elapsed().as_secs_f64()),
            "0".into(),
        ]);
    }

    // --- Update-stream TMA (explicit random deletions, same turnover) ---
    {
        let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed).expect("dims");
        let mut m =
            UpdateStreamTma::new(p.dims, GridSpec::CellBudget(p.grid_cells)).expect("config");
        let mut live: Vec<tkm_common::TupleId> = Vec::with_capacity(p.n + p.r);
        let mut remaining = p.n;
        while remaining > 0 {
            let chunk = remaining.min(50_000);
            let (_, batch) = stream.warmup_batch(chunk);
            for coords in batch.chunks_exact(p.dims) {
                live.push(m.insert(coords).expect("insert"));
            }
            remaining -= chunk;
        }
        for (i, f) in workload.iter().enumerate() {
            let q = Query::top_k(f.clone(), p.k).expect("query");
            m.register_query(QueryId(i as u64), q).expect("register");
        }
        let before = m.stats().recomputations();
        // Deterministic pseudo-random victim selection.
        let mut state = p.seed | 1;
        let start = Instant::now();
        for _ in 0..p.ticks {
            let (_, batch) = stream.next_batch();
            for coords in batch.chunks_exact(p.dims) {
                live.push(m.insert(coords).expect("insert"));
            }
            for _ in 0..p.r {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (state >> 33) as usize % live.len();
                let victim = live.swap_remove(idx);
                m.delete(victim).expect("delete");
            }
            m.end_cycle();
        }
        table.row(vec![
            "update-stream".into(),
            "TMA(hash)".into(),
            fmt_secs(start.elapsed().as_secs_f64()),
            (m.stats().recomputations() - before).to_string(),
        ]);
    }

    cli::emit(&table);
    println!(
        "shape check: constrained traversals stay clipped to their region \
         (cost tracks in-region candidate density — sparse regions mean \
         higher result turnover, hence more recomputations); threshold \
         monitoring never recomputes; the update-stream variant recomputes \
         more (random deletions hit results more often than FIFO expiry) \
         and pays hash-cell overhead."
    );
}
