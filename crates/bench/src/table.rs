//! Plain-text table printer for the experiment binaries.

use std::fmt::Write as _;

/// A simple right-aligned text table with an optional CSV dump.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.header) {
            let _ = write!(line, "{h:>w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Formats bytes as MB.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["k", "TSL", "SMA"]);
        t.row(vec!["1".into(), "3.3".into(), "1.1".into()]);
        t.row(vec!["100".into(), "113.2".into(), "104.6".into()]);
        let s = t.render();
        assert!(s.contains("k"));
        assert!(s.lines().count() == 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,TSL,SMA\n"));
        assert!(csv.contains("100,113.2,104.6"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
    }
}
