//! Engine runner: warm-up, measured stream replay, measurement capture.

use std::time::Instant;

use crate::params::ExpParams;
use tkm_common::{QueryId, Result, Timestamp};
use tkm_core::{GridSpec, Query, SmaMonitor, TmaMonitor};
use tkm_datagen::{QueryGen, StreamSim};
use tkm_tsl::{KmaxPolicy, TslMonitor};
use tkm_window::WindowSpec;

/// Engine selection for an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSel {
    /// Threshold Sorted List baseline.
    Tsl,
    /// Top-k Monitoring Algorithm.
    Tma,
    /// Skyband Monitoring Algorithm.
    Sma,
}

impl EngineSel {
    /// All three engines in the paper's reporting order.
    pub const ALL: [EngineSel; 3] = [EngineSel::Tsl, EngineSel::Tma, EngineSel::Sma];

    /// The pair of grid-based engines (Figure 14).
    pub const GRID: [EngineSel; 2] = [EngineSel::Tma, EngineSel::Sma];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EngineSel::Tsl => "TSL",
            EngineSel::Tma => "TMA",
            EngineSel::Sma => "SMA",
        }
    }
}

/// Measurements of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunMeasurement {
    /// Wall-clock seconds spent in the measured ticks (the paper's "CPU
    /// time" — single-threaded, so the two coincide).
    pub cpu_seconds: f64,
    /// Engine state size after the run, bytes.
    pub space_bytes: usize,
    /// From-scratch computations (TMA/SMA) or view refills (TSL) during
    /// the measured ticks.
    pub recomputations: u64,
    /// Mean view (TSL) or skyband (SMA) size per query after the run.
    pub avg_view_len: f64,
}

enum EngineBox {
    Tsl(TslMonitor),
    Tma(TmaMonitor),
    Sma(SmaMonitor),
}

impl EngineBox {
    fn build(sel: EngineSel, p: &ExpParams) -> Result<EngineBox> {
        let window = WindowSpec::Count(p.n);
        let grid = GridSpec::CellBudget(p.grid_cells);
        Ok(match sel {
            EngineSel::Tsl => EngineBox::Tsl(TslMonitor::new(p.dims, window, KmaxPolicy::Tuned)?),
            EngineSel::Tma => EngineBox::Tma(TmaMonitor::new(p.dims, window, grid)?),
            EngineSel::Sma => EngineBox::Sma(SmaMonitor::new(p.dims, window, grid)?),
        })
    }

    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        match self {
            EngineBox::Tsl(m) => m.tick(now, arrivals),
            EngineBox::Tma(m) => m.tick(now, arrivals),
            EngineBox::Sma(m) => m.tick(now, arrivals),
        }
    }

    fn register(&mut self, id: QueryId, q: Query) -> Result<()> {
        match self {
            EngineBox::Tsl(m) => m.register_query(id, q.f, q.k),
            EngineBox::Tma(m) => m.register_query(id, q),
            EngineBox::Sma(m) => m.register_query(id, q),
        }
    }

    fn space_bytes(&self) -> usize {
        match self {
            EngineBox::Tsl(m) => m.space_bytes(),
            EngineBox::Tma(m) => m.space_bytes(),
            EngineBox::Sma(m) => m.space_bytes(),
        }
    }

    /// Refills (TSL) or from-scratch computations (TMA/SMA) so far.
    fn recompute_counter(&self) -> u64 {
        match self {
            EngineBox::Tsl(m) => m.stats().refills,
            EngineBox::Tma(m) => m.stats().recomputations(),
            EngineBox::Sma(m) => m.stats().recomputations(),
        }
    }

    fn avg_view_len(&self) -> f64 {
        match self {
            EngineBox::Tsl(m) => m.avg_view_len(),
            EngineBox::Sma(m) => m.avg_skyband_len(),
            EngineBox::Tma(_) => 0.0,
        }
    }
}

/// Runs one engine over the experiment defined by `p`: build, warm the
/// window with `N` tuples, register `Q` queries, then measure `ticks`
/// cycles of `r` arrivals each.
pub fn run_engine(sel: EngineSel, p: &ExpParams) -> Result<RunMeasurement> {
    let workload = QueryGen::new(p.dims, p.family, p.seed ^ 0x9e37_79b9_7f4a_7c15)?.workload(p.q);
    let mut stream = StreamSim::new(p.dims, p.dist, p.r, p.seed)?;
    let mut engine = EngineBox::build(sel, p)?;

    // Warm-up: fill the window before registering queries so the initial
    // computations run at steady-state density.
    const WARM_CHUNK: usize = 50_000;
    let mut remaining = p.n;
    while remaining > 0 {
        let chunk = remaining.min(WARM_CHUNK);
        let (ts, batch) = stream.warmup_batch(chunk);
        engine.tick(ts, batch)?;
        remaining -= chunk;
    }
    for (i, f) in workload.into_iter().enumerate() {
        engine.register(QueryId(i as u64), Query::top_k(f, p.k)?)?;
    }

    let recomputes_before = engine.recompute_counter();
    let start = Instant::now();
    for _ in 0..p.ticks {
        let (ts, batch) = stream.next_batch();
        engine.tick(ts, batch)?;
    }
    let cpu_seconds = start.elapsed().as_secs_f64();

    Ok(RunMeasurement {
        cpu_seconds,
        space_bytes: engine.space_bytes(),
        recomputations: engine.recompute_counter() - recomputes_before,
        avg_view_len: engine.avg_view_len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Scale;

    #[test]
    fn quick_run_all_engines() {
        let p = ExpParams::defaults(Scale::Quick);
        for sel in EngineSel::ALL {
            let m = run_engine(sel, &p).unwrap();
            assert!(m.cpu_seconds > 0.0, "{}", sel.label());
            assert!(m.space_bytes > 0, "{}", sel.label());
        }
    }
}
