#![forbid(unsafe_code)]

//! Experiment harness for reproducing the paper's tables and figures.
//!
//! Each figure/table has a dedicated binary in `src/bin/`; they share the
//! machinery here: experiment configuration ([`params::ExpParams`]), the
//! engine runner ([`harness`]) that warms a window, replays a measured
//! stream and reports CPU time / space / structural statistics, and the
//! plain-text table printer ([`table`]).

pub mod cli;
pub mod harness;
pub mod params;
pub mod table;

pub use harness::{run_engine, EngineSel, RunMeasurement};
pub use params::{ExpParams, Scale};
pub use table::Table;
