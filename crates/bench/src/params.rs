//! Experiment parameters (Table 1 of the paper) with scale presets.
//!
//! The paper's full-scale setting (N up to 5M tuples, 100 cycles) runs in
//! minutes-to-hours depending on the engine; the scaled presets keep every
//! *relative* comparison intact while finishing quickly. Every experiment
//! binary accepts `--scale quick|default|paper`.

use tkm_datagen::{DataDist, FnFamily};

/// Parameter-scale preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds).
    Quick,
    /// Default for `cargo bench` artifacts: ~1/10 of the paper per axis.
    Default,
    /// The paper's Table 1 values.
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads the scale from CLI args (`--scale X`), defaulting to
    /// [`Scale::Default`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| Scale::parse(v))
            .unwrap_or(Scale::Default)
    }
}

/// One experiment setting (the knobs of Table 1).
#[derive(Clone, Copy, Debug)]
pub struct ExpParams {
    /// Data dimensionality `d`.
    pub dims: usize,
    /// Window size `N` (count-based).
    pub n: usize,
    /// Arrival rate `r` per cycle.
    pub r: usize,
    /// Number of queries `Q`.
    pub q: usize,
    /// Result cardinality `k`.
    pub k: usize,
    /// Total grid-cell budget.
    pub grid_cells: usize,
    /// Number of measured processing cycles.
    pub ticks: usize,
    /// Data distribution.
    pub dist: DataDist,
    /// Scoring-function family.
    pub family: FnFamily,
    /// RNG seed (data and queries derive sub-seeds from it).
    pub seed: u64,
}

impl ExpParams {
    /// The default setting at a given scale: the paper's
    /// `d=4, N=1M, r=10K, Q=1K, k=20`, grid 12⁴, 100 cycles — divided down
    /// for the smaller presets.
    pub fn defaults(scale: Scale) -> ExpParams {
        match scale {
            Scale::Paper => ExpParams {
                dims: 4,
                n: 1_000_000,
                r: 10_000,
                q: 1_000,
                k: 20,
                grid_cells: 20_736,
                ticks: 100,
                dist: DataDist::Ind,
                family: FnFamily::Linear,
                seed: 20060627, // SIGMOD 2006, June 27
            },
            Scale::Default => ExpParams {
                n: 100_000,
                r: 1_000,
                q: 100,
                ticks: 50,
                ..ExpParams::defaults(Scale::Paper)
            },
            Scale::Quick => ExpParams {
                n: 10_000,
                r: 100,
                q: 20,
                ticks: 20,
                grid_cells: 4_096,
                ..ExpParams::defaults(Scale::Paper)
            },
        }
    }

    /// Scales a paper-axis value (like N = 1..5 M) down to the preset.
    pub fn scale_n(scale: Scale, millions: usize) -> usize {
        match scale {
            Scale::Paper => millions * 1_000_000,
            Scale::Default => millions * 100_000,
            Scale::Quick => millions * 10_000,
        }
    }

    /// Scales a paper arrival rate (in thousands) down to the preset.
    pub fn scale_r(scale: Scale, thousands: usize) -> usize {
        match scale {
            Scale::Paper => thousands * 1_000,
            Scale::Default => thousands * 100,
            Scale::Quick => (thousands * 10).max(1),
        }
    }

    /// Scales a paper query count down to the preset.
    pub fn scale_q(scale: Scale, queries: usize) -> usize {
        match scale {
            Scale::Paper => queries,
            Scale::Default => (queries / 10).max(1),
            Scale::Quick => (queries / 50).max(1),
        }
    }

    /// One-line summary for experiment headers.
    pub fn summary(&self) -> String {
        format!(
            "d={} N={} r={} Q={} k={} grid={} ticks={} dist={} f={}",
            self.dims,
            self.n,
            self.r,
            self.q,
            self.k,
            self.grid_cells,
            self.ticks,
            self.dist.label(),
            self.family.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_defaults_match_table1() {
        let p = ExpParams::defaults(Scale::Paper);
        assert_eq!(
            (p.dims, p.n, p.r, p.q, p.k),
            (4, 1_000_000, 10_000, 1_000, 20)
        );
        assert_eq!(p.grid_cells, 12usize.pow(4));
    }

    #[test]
    fn scaled_axes_preserve_ratios() {
        // r = N/100 at every scale for the Figure 16 sweep.
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            for m in 1..=5 {
                let n = ExpParams::scale_n(scale, m);
                let r = ExpParams::scale_r(scale, m * 10);
                assert_eq!(n / r, 100, "N/r ratio broken at {scale:?} m={m}");
            }
        }
    }
}
