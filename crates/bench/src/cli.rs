//! Shared CLI plumbing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--scale quick|default|paper` — parameter preset (see [`crate::params`]);
//! * `--csv` — additionally print the table as CSV.

// Emitting results on stdout is this module's entire purpose.
#![allow(clippy::print_stdout)]

use crate::params::Scale;
use crate::table::Table;

/// Whether `--csv` was passed.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Prints the standard experiment header.
pub fn header(experiment: &str, paper_ref: &str, scale: Scale, setting: &str) {
    println!("== {experiment} ==");
    println!("   reproduces: {paper_ref}");
    println!("   scale: {scale:?}   setting: {setting}");
    println!();
}

/// Prints a table (and its CSV form if requested).
pub fn emit(table: &Table) {
    println!("{}", table.render());
    if csv_requested() {
        println!("--- csv ---");
        println!("{}", table.to_csv());
    }
}
