//! The regular grid: geometry and cell container.

use crate::cell::{Cell, CellMode};
use tkm_common::{Rect, Result, ScoreFn, TkmError, TupleId, MAX_DIMS};

/// Hard cap on the number of cells (memory guard: a `d`-dimensional grid
/// has `m^d` cells and `m` is easy to over-specify).
pub const MAX_CELLS: usize = 1 << 24;

/// Linear index of a grid cell. `u32` keeps heap entries small.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub u32);

/// A regular grid over the unit workspace `[0,1]^d` with `m` cells per axis
/// of extent `δ = 1/m` each.
#[derive(Debug)]
pub struct Grid {
    dims: usize,
    per_dim: usize,
    delta: f64,
    /// Exactly `per_dim as f64`: `locate` multiplies by this instead of
    /// dividing by `delta` (the float-guard comparisons stay in terms of
    /// `delta` products, so cell assignment is unchanged).
    inv_delta: f64,
    mode: CellMode,
    cells: Vec<Cell>,
    /// Precomputed closed bounds of every cell, `2·dims` values apiece
    /// (lower corner, then upper corner). `maxscore` runs on every heap
    /// push of the traversal; reading the corner here replaces the per-call
    /// div/mod decomposition of the linear cell index.
    bounds: Vec<f64>,
    /// Per-cell per-axis indices (`dims` apiece): the worse-neighbour steps
    /// of the traversal and the clean-up walks check boundaries here
    /// instead of re-deriving axis indices with a div/mod chain.
    axes: Vec<u32>,
    /// Linear-index stride of one step along each axis (`per_dim^axis`).
    strides: [u32; MAX_DIMS],
}

impl Grid {
    /// Creates a grid with `per_dim` cells along each of `dims` axes.
    pub fn new(dims: usize, per_dim: usize, mode: CellMode) -> Result<Grid> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "Grid: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        if per_dim == 0 {
            return Err(TkmError::InvalidParameter(
                "Grid: at least one cell per axis required".into(),
            ));
        }
        let mut total: usize = 1;
        for _ in 0..dims {
            total = total.saturating_mul(per_dim);
            if total > MAX_CELLS {
                return Err(TkmError::InvalidParameter(format!(
                    "Grid: {per_dim}^{dims} cells exceed MAX_CELLS = {MAX_CELLS}"
                )));
            }
        }
        let mut cells = Vec::with_capacity(total);
        cells.resize_with(total, || Cell::new(mode, dims));
        let delta = 1.0 / per_dim as f64;
        // Precompute every cell's closed bounds and axis indices with an
        // odometer over the per-axis indices (dimension 0 fastest,
        // matching `locate`).
        let mut bounds = Vec::with_capacity(total * 2 * dims);
        let mut axes = Vec::with_capacity(total * dims);
        let mut idx = [0usize; MAX_DIMS];
        for _ in 0..total {
            for &i in idx.iter().take(dims) {
                bounds.push(i as f64 * delta);
            }
            for &i in idx.iter().take(dims) {
                // The workspace ends at exactly 1.0; `per_dim·δ` can round
                // to either side of it, so the last cell's upper bound is
                // pinned (sound — no coordinate exceeds 1.0 — and at least
                // as tight).
                bounds.push(if i + 1 == per_dim {
                    1.0
                } else {
                    (i + 1) as f64 * delta
                });
            }
            for &i in idx.iter().take(dims) {
                axes.push(i as u32);
            }
            for slot in idx.iter_mut().take(dims) {
                *slot += 1;
                if *slot < per_dim {
                    break;
                }
                *slot = 0;
            }
        }
        let mut strides = [0u32; MAX_DIMS];
        let mut stride = 1usize;
        for s in strides.iter_mut().take(dims) {
            *s = stride as u32;
            stride *= per_dim;
        }
        Ok(Grid {
            dims,
            per_dim,
            delta,
            inv_delta: per_dim as f64,
            mode,
            cells,
            bounds,
            axes,
            strides,
        })
    }

    /// Creates a grid with approximately `budget` cells in total — the
    /// paper's sizing rule ("the cell extent is selected so that the grid
    /// contains approximately 12⁴ cells" regardless of dimensionality).
    pub fn with_cell_budget(dims: usize, budget: usize, mode: CellMode) -> Result<Grid> {
        if budget == 0 {
            return Err(TkmError::InvalidParameter(
                "Grid: cell budget must be positive".into(),
            ));
        }
        let per_dim = (budget as f64).powf(1.0 / dims as f64).round().max(1.0) as usize;
        Grid::new(dims, per_dim, mode)
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cells per axis (`m`).
    #[inline]
    pub fn per_dim(&self) -> usize {
        self.per_dim
    }

    /// Cell extent per axis (`δ = 1/m`).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Point-list mode of the cells.
    #[inline]
    pub fn mode(&self) -> CellMode {
        self.mode
    }

    /// Total number of cells (`m^d`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Shared access to a cell.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Mutable access to a cell.
    #[inline]
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.0 as usize]
    }

    /// Iterates all `(CellId, &Cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Per-axis cell index of the cell covering a coordinate.
    #[inline]
    fn axis_index(&self, x: f64) -> usize {
        debug_assert!(
            (0.0..=1.0).contains(&x),
            "coordinates must lie in the unit workspace, got {x}"
        );
        let clamped = x.clamp(0.0, 1.0);
        let mut idx = ((clamped * self.inv_delta) as usize).min(self.per_dim - 1);
        // Floating-point guard: make the assignment consistent with the
        // closed cell bounds used by `maxscore` (idx·δ ≤ x ≤ (idx+1)·δ).
        if clamped < idx as f64 * self.delta {
            idx -= 1;
        } else if clamped > (idx + 1) as f64 * self.delta {
            idx += 1;
        }
        // The guard can step past the last cell when `per_dim·δ` rounds
        // below 1.0 (e.g. per_dim = 49): x = 1.0 exceeds `per_dim·δ` yet
        // belongs to the last cell, whose upper bound is pinned to exactly
        // 1.0 in the bounds table.
        idx.min(self.per_dim - 1)
    }

    /// The cell covering `coords`. Coordinates must lie in `[0,1]^d`.
    #[inline]
    pub fn locate(&self, coords: &[f64]) -> CellId {
        debug_assert_eq!(coords.len(), self.dims);
        let mut linear = 0usize;
        // Row-major with dimension 0 fastest: linear = Σ idx_i · m^i.
        let mut stride = 1usize;
        for &x in coords.iter().take(self.dims) {
            linear += self.axis_index(x) * stride;
            stride *= self.per_dim;
        }
        CellId(linear as u32)
    }

    /// Decomposes a cell id into per-axis indices (first `dims` entries of
    /// the returned array are meaningful). Reads the precomputed axis
    /// table — no div/mod chain.
    #[inline]
    pub fn cell_coords(&self, id: CellId) -> [usize; MAX_DIMS] {
        let base = id.0 as usize * self.dims;
        let mut out = [0usize; MAX_DIMS];
        for (slot, &axis) in out.iter_mut().zip(&self.axes[base..base + self.dims]) {
            *slot = axis as usize;
        }
        out
    }

    /// The per-axis index of a cell along one dimension (precomputed).
    #[inline]
    fn axis_of(&self, id: CellId, dim: usize) -> u32 {
        self.axes[id.0 as usize * self.dims + dim]
    }

    /// Recomposes per-axis indices into a cell id.
    #[inline]
    pub fn cell_from_coords(&self, coords: &[usize]) -> CellId {
        debug_assert_eq!(coords.len(), self.dims);
        let mut linear = 0usize;
        let mut stride = 1usize;
        for &i in coords {
            debug_assert!(i < self.per_dim);
            linear += i * stride;
            stride *= self.per_dim;
        }
        CellId(linear as u32)
    }

    /// The precomputed closed bounds of a cell as `(lo, hi)` slices.
    #[inline]
    pub fn cell_lo_hi(&self, id: CellId) -> (&[f64], &[f64]) {
        let base = id.0 as usize * 2 * self.dims;
        let block = &self.bounds[base..base + 2 * self.dims];
        block.split_at(self.dims)
    }

    /// Fills `lo`/`hi` with the closed bounds of the cell.
    #[inline]
    pub fn cell_bounds(&self, id: CellId, lo: &mut [f64], hi: &mut [f64]) {
        let (src_lo, src_hi) = self.cell_lo_hi(id);
        lo[..self.dims].copy_from_slice(src_lo);
        hi[..self.dims].copy_from_slice(src_hi);
    }

    /// Upper bound for the score of any point inside the cell: the score of
    /// the cell's preferred corner (paper §3.1). Runs on every heap push of
    /// the traversal, so it reads the precomputed corner directly.
    #[inline]
    // lint: hot-path
    pub fn maxscore(&self, id: CellId, f: &ScoreFn) -> f64 {
        debug_assert_eq!(f.dims(), self.dims);
        let (lo, hi) = self.cell_lo_hi(id);
        f.max_score_rect(lo, hi)
    }

    /// Upper bound for the score of any point inside the *intersection* of
    /// the cell with `rect`. Tighter than [`Grid::maxscore`] for boundary
    /// cells of a constrained query, and required for correctness when `f`
    /// is only monotone *inside* `rect` (piecewise-monotone queries): the
    /// preferred corner of the clipped bounds stays within the region where
    /// the declared monotonicity holds.
    #[inline]
    pub fn maxscore_in(&self, id: CellId, f: &ScoreFn, rect: &Rect) -> f64 {
        debug_assert_eq!(f.dims(), self.dims);
        let (cell_lo, cell_hi) = self.cell_lo_hi(id);
        let mut lo = [0.0f64; MAX_DIMS];
        let mut hi = [0.0f64; MAX_DIMS];
        for dim in 0..self.dims {
            lo[dim] = cell_lo[dim].max(rect.lo()[dim]);
            hi[dim] = cell_hi[dim].min(rect.hi()[dim]);
            if lo[dim] > hi[dim] {
                // Disjoint (possible for range-boundary cells): nothing
                // inside can qualify.
                return f64::NEG_INFINITY;
            }
        }
        f.max_score_rect(&lo[..self.dims], &hi[..self.dims])
    }

    /// The cell with the highest `maxscore` for `f` — the traversal start
    /// (top-right corner for functions increasing on every axis).
    pub fn best_corner(&self, f: &ScoreFn) -> CellId {
        let mut coords = [0usize; MAX_DIMS];
        for (dim, slot) in coords.iter_mut().enumerate().take(self.dims) {
            *slot = match f.monotonicity(dim) {
                tkm_common::Monotonicity::Increasing => self.per_dim - 1,
                tkm_common::Monotonicity::Decreasing => 0,
            };
        }
        self.cell_from_coords(&coords[..self.dims])
    }

    /// The neighbour of `id` one step toward lower scores along `dim`
    /// (`c_{i-1,j}` / `c_{i,j-1}` of Figure 6 generalised to monotonicity
    /// direction), or `None` at the workspace boundary. One axis-table
    /// read and one stride add — this runs for every processed cell ×
    /// dimension of every traversal and clean-up walk.
    #[inline]
    pub fn step_worse(&self, id: CellId, dim: usize, f: &ScoreFn) -> Option<CellId> {
        self.step_worse_dir(id, dim, f.monotonicity(dim))
    }

    /// [`Grid::step_worse`] with the monotonicity direction already
    /// resolved — traversals resolve each axis once up front instead of
    /// dispatching into the scoring function on every step.
    #[inline]
    pub fn step_worse_dir(
        &self,
        id: CellId,
        dim: usize,
        dir: tkm_common::Monotonicity,
    ) -> Option<CellId> {
        let axis = self.axis_of(id, dim);
        match dir {
            tkm_common::Monotonicity::Increasing => {
                if axis == 0 {
                    return None;
                }
                Some(CellId(id.0 - self.strides[dim]))
            }
            tkm_common::Monotonicity::Decreasing => {
                if axis as usize + 1 >= self.per_dim {
                    return None;
                }
                Some(CellId(id.0 + self.strides[dim]))
            }
        }
    }

    /// Per-axis cell index range `[lo, hi]` (inclusive) of the cells that
    /// may intersect a constraint rectangle.
    pub fn cell_range(&self, rect: &Rect) -> ([usize; MAX_DIMS], [usize; MAX_DIMS]) {
        debug_assert_eq!(rect.dims(), self.dims);
        let mut lo = [0usize; MAX_DIMS];
        let mut hi = [0usize; MAX_DIMS];
        for dim in 0..self.dims {
            lo[dim] = self.axis_index(rect.lo()[dim].clamp(0.0, 1.0));
            hi[dim] = self.axis_index(rect.hi()[dim].clamp(0.0, 1.0));
        }
        (lo, hi)
    }

    /// The highest-`maxscore` cell within an inclusive per-axis cell range
    /// (start cell of a constrained top-k search, §7).
    pub fn best_corner_in(
        &self,
        range: &([usize; MAX_DIMS], [usize; MAX_DIMS]),
        f: &ScoreFn,
    ) -> CellId {
        let mut coords = [0usize; MAX_DIMS];
        for (dim, slot) in coords.iter_mut().enumerate().take(self.dims) {
            *slot = match f.monotonicity(dim) {
                tkm_common::Monotonicity::Increasing => range.1[dim],
                tkm_common::Monotonicity::Decreasing => range.0[dim],
            };
        }
        self.cell_from_coords(&coords[..self.dims])
    }

    /// [`Grid::step_worse`] restricted to an inclusive per-axis cell range.
    #[inline]
    pub fn step_worse_in(
        &self,
        id: CellId,
        dim: usize,
        f: &ScoreFn,
        range: &([usize; MAX_DIMS], [usize; MAX_DIMS]),
    ) -> Option<CellId> {
        self.step_worse_in_dir(id, dim, f.monotonicity(dim), range)
    }

    /// [`Grid::step_worse_dir`] restricted to an inclusive per-axis cell
    /// range.
    #[inline]
    pub fn step_worse_in_dir(
        &self,
        id: CellId,
        dim: usize,
        dir: tkm_common::Monotonicity,
        range: &([usize; MAX_DIMS], [usize; MAX_DIMS]),
    ) -> Option<CellId> {
        let axis = self.axis_of(id, dim) as usize;
        match dir {
            tkm_common::Monotonicity::Increasing => {
                if axis <= range.0[dim] {
                    return None;
                }
                Some(CellId(id.0 - self.strides[dim]))
            }
            tkm_common::Monotonicity::Decreasing => {
                if axis >= range.1[dim] {
                    return None;
                }
                Some(CellId(id.0 + self.strides[dim]))
            }
        }
    }

    /// Inserts a tuple into its covering cell (coordinates are copied into
    /// the cell's point block); returns the cell id.
    // lint: hot-path
    pub fn insert_point(&mut self, coords: &[f64], id: TupleId) -> CellId {
        let cell = self.locate(coords);
        self.cell_mut(cell).push_point(id, coords);
        cell
    }

    /// Removes a tuple from its covering cell; returns the cell id.
    // lint: hot-path
    pub fn remove_point(&mut self, coords: &[f64], id: TupleId) -> Result<CellId> {
        let cell = self.locate(coords);
        self.cell_mut(cell).remove_point(id)?;
        Ok(cell)
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.bounds.capacity() * std::mem::size_of::<f64>()
            + self.axes.capacity() * std::mem::size_of::<u32>()
            + self.cells.iter().map(Cell::space_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn linear2(w1: f64, w2: f64) -> ScoreFn {
        ScoreFn::linear(vec![w1, w2]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Grid::new(0, 4, CellMode::Fifo).is_err());
        assert!(Grid::new(2, 0, CellMode::Fifo).is_err());
        assert!(Grid::new(8, 100, CellMode::Fifo).is_err(), "cell cap");
        let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
        assert_eq!(g.num_cells(), 49);
        assert!((g.delta() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cell_budget_matches_paper_rule() {
        // d=4 with a 12^4 budget → 12 cells per axis; d=2 → 144 per axis;
        // d=6 → ~5 per axis.
        let budget = 12usize.pow(4);
        assert_eq!(
            Grid::with_cell_budget(4, budget, CellMode::Fifo)
                .unwrap()
                .per_dim(),
            12
        );
        assert_eq!(
            Grid::with_cell_budget(2, budget, CellMode::Fifo)
                .unwrap()
                .per_dim(),
            144
        );
        assert_eq!(
            Grid::with_cell_budget(6, budget, CellMode::Fifo)
                .unwrap()
                .per_dim(),
            5
        );
    }

    #[test]
    fn locate_and_bounds_roundtrip() {
        let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
        // Figure 5: in a 7×7 grid the top-right cell is c_{6,6}.
        let top_right = g.locate(&[0.99, 0.99]);
        assert_eq!(g.cell_coords(top_right)[..2], [6, 6]);
        // Coordinate exactly 1.0 still maps inside the grid.
        assert_eq!(g.locate(&[1.0, 1.0]), top_right);
        let origin = g.locate(&[0.0, 0.0]);
        assert_eq!(g.cell_coords(origin)[..2], [0, 0]);
    }

    #[test]
    fn best_corner_follows_monotonicity() {
        let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
        // Increasing on both axes: start top-right (Figure 5).
        let f = linear2(1.0, 2.0);
        assert_eq!(g.cell_coords(g.best_corner(&f))[..2], [6, 6]);
        // f = x1 - x2 (Figure 7a): start bottom-right.
        let f = linear2(1.0, -1.0);
        assert_eq!(g.cell_coords(g.best_corner(&f))[..2], [6, 0]);
    }

    #[test]
    fn step_worse_direction_and_boundary() {
        let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
        let f = linear2(1.0, -1.0);
        let start = g.best_corner(&f); // (6, 0)
                                       // Worse along x1 (increasing): index decreases.
        let a = g.step_worse(start, 0, &f).unwrap();
        assert_eq!(g.cell_coords(a)[..2], [5, 0]);
        // Worse along x2 (decreasing): index increases (Figure 7a en-heaps
        // c_{i,j+1} instead of c_{i,j-1}).
        let b = g.step_worse(start, 1, &f).unwrap();
        assert_eq!(g.cell_coords(b)[..2], [6, 1]);
        // Boundary cells have no worse neighbour.
        let worst = g.cell_from_coords(&[0, 6]);
        assert_eq!(g.step_worse(worst, 0, &f), None);
        assert_eq!(g.step_worse(worst, 1, &f), None);
    }

    #[test]
    fn maxscore_is_preferred_corner() {
        let g = Grid::new(2, 4, CellMode::Fifo).unwrap();
        let f = linear2(1.0, 2.0);
        let c = g.locate(&[0.3, 0.6]); // cell [0.25,0.5] × [0.5,0.75]
        assert!((g.maxscore(c, &f) - (0.5 + 2.0 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn constrained_range_and_corner() {
        let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
        // Figure 12: constrained top-1 with R in the middle-right area.
        let rect = Rect::new(vec![0.55, 0.35], vec![0.85, 0.75]).unwrap();
        let range = g.cell_range(&rect);
        assert_eq!(range.0[..2], [3, 2]);
        assert_eq!(range.1[..2], [5, 5]);
        let f = linear2(1.0, 2.0);
        let start = g.best_corner_in(&range, &f);
        assert_eq!(g.cell_coords(start)[..2], [5, 5]);
        // Stepping stays inside the range.
        assert!(g.step_worse_in(start, 0, &f, &range).is_some());
        let lo_corner = g.cell_from_coords(&[3, 2]);
        assert_eq!(g.step_worse_in(lo_corner, 0, &f, &range), None);
        assert_eq!(g.step_worse_in(lo_corner, 1, &f, &range), None);
    }

    /// The construction-time bounds table must agree exactly (bitwise, not
    /// within epsilon) with the index-arithmetic derivation it replaced —
    /// `axis_index`'s floating-point guard depends on the same products —
    /// except each axis' last cell, whose upper bound is pinned to 1.0.
    #[test]
    fn precomputed_bounds_match_index_arithmetic() {
        for dims in 1..=3usize {
            let g = Grid::new(dims, 7, CellMode::Fifo).unwrap();
            for c in 0..g.num_cells() as u32 {
                let id = CellId(c);
                let cc = g.cell_coords(id);
                let (lo, hi) = g.cell_lo_hi(id);
                for dim in 0..dims {
                    assert_eq!(lo[dim], cc[dim] as f64 * g.delta());
                    if cc[dim] + 1 == g.per_dim() {
                        assert_eq!(hi[dim], 1.0);
                    } else {
                        assert_eq!(hi[dim], (cc[dim] + 1) as f64 * g.delta());
                    }
                }
            }
        }
    }

    /// Regression: resolutions where `per_dim · fl(1/per_dim)` rounds
    /// below 1.0 (49 is one) used to let the float guard step *past* the
    /// last cell for coordinates at the workspace boundary — panicking on
    /// insert for corner points and silently mis-indexing mixed ones. The
    /// boundary coordinate must land in the last cell, whose pinned
    /// closed bounds contain it.
    #[test]
    fn workspace_boundary_lands_in_last_cell() {
        for per_dim in [7usize, 49, 98, 103, 144] {
            let mut g = Grid::new(2, per_dim, CellMode::Fifo).unwrap();
            let corner = g.locate(&[1.0, 1.0]);
            assert_eq!(
                g.cell_coords(corner)[..2],
                [per_dim - 1, per_dim - 1],
                "per_dim {per_dim}"
            );
            let mixed = g.insert_point(&[1.0, 0.5], TupleId(0));
            let (lo, hi) = g.cell_lo_hi(mixed);
            assert!(lo[0] <= 1.0 && 1.0 <= hi[0], "per_dim {per_dim}");
            assert!(lo[1] <= 0.5 && 0.5 <= hi[1], "per_dim {per_dim}");
            // The traversal's soundness invariant at the boundary: the
            // point's score never exceeds its cell's maxscore.
            let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
            assert!(f.score(&[1.0, 0.5]) <= g.maxscore(mixed, &f));
            g.remove_point(&[1.0, 0.5], TupleId(0)).unwrap();
        }
    }

    #[test]
    fn point_lifecycle() {
        let mut g = Grid::new(2, 4, CellMode::Fifo).unwrap();
        let c1 = g.insert_point(&[0.1, 0.1], TupleId(0));
        let c2 = g.insert_point(&[0.9, 0.9], TupleId(1));
        assert_ne!(c1, c2);
        assert_eq!(g.cell(c1).points().len(), 1);
        assert_eq!(g.remove_point(&[0.1, 0.1], TupleId(0)).unwrap(), c1);
        assert!(g.cell(c1).points().is_empty());
        assert!(g.remove_point(&[0.9, 0.9], TupleId(5)).is_err());
    }

    #[test]
    fn three_dimensional_linearisation() {
        let g = Grid::new(3, 5, CellMode::Fifo).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                for w in 0..5 {
                    let id = g.cell_from_coords(&[i, j, w]);
                    assert_eq!(g.cell_coords(id)[..3], [i, j, w]);
                }
            }
        }
        // In 3-d, a cell has three worse neighbours (paper: after
        // processing c_{i,j,w}, en-heap c_{i-1,j,w}, c_{i,j-1,w},
        // c_{i,j,w-1}).
        let f = ScoreFn::linear(vec![1.0, 1.0, 1.0]).unwrap();
        let c = g.cell_from_coords(&[2, 2, 2]);
        let neighbours: Vec<[usize; 3]> = (0..3)
            .map(|dim| {
                let n = g.step_worse(c, dim, &f).unwrap();
                let cc = g.cell_coords(n);
                [cc[0], cc[1], cc[2]]
            })
            .collect();
        assert_eq!(neighbours, vec![[1, 2, 2], [2, 1, 2], [2, 2, 1]]);
    }

    #[test]
    fn maxscore_in_clips_to_rect() {
        let g = Grid::new(2, 4, CellMode::Fifo).unwrap();
        let f = linear2(1.0, 1.0);
        // Cell [0.25,0.5]×[0.25,0.5]; constraint only covers its lower-left
        // quarter.
        let c = g.locate(&[0.3, 0.3]);
        let r = Rect::new(vec![0.0, 0.0], vec![0.375, 0.375]).unwrap();
        assert!((g.maxscore(c, &f) - 1.0).abs() < 1e-12);
        assert!((g.maxscore_in(c, &f, &r) - 0.75).abs() < 1e-12);
        // Disjoint rect → nothing can qualify.
        let far = Rect::new(vec![0.9, 0.9], vec![1.0, 1.0]).unwrap();
        assert_eq!(g.maxscore_in(c, &f, &far), f64::NEG_INFINITY);
    }

    proptest! {
        /// `maxscore_in` bounds every contained point inside cell ∩ rect
        /// and never exceeds the unclipped bound.
        #[test]
        fn maxscore_in_is_tight_and_sound(
            x in 0.0f64..=1.0,
            y in 0.0f64..=1.0,
            lo1 in 0.0f64..0.8,
            lo2 in 0.0f64..0.8,
            ext in 0.05f64..0.9,
            w1 in -2.0f64..2.0,
            w2 in -2.0f64..2.0,
            m in 1usize..12,
        ) {
            let g = Grid::new(2, m, CellMode::Fifo).unwrap();
            let f = linear2(w1, w2);
            let rect = Rect::new(
                vec![lo1, lo2],
                vec![(lo1 + ext).min(1.0), (lo2 + ext).min(1.0)],
            ).unwrap();
            let cell = g.locate(&[x, y]);
            let clipped = g.maxscore_in(cell, &f, &rect);
            prop_assert!(clipped <= g.maxscore(cell, &f) + 1e-12);
            if rect.contains(&[x, y]) {
                prop_assert!(f.score(&[x, y]) <= clipped + 1e-9);
            }
        }

        /// `cell_range` covers exactly the cells overlapping the rectangle:
        /// every in-rect point's cell lies inside the range.
        #[test]
        fn cell_range_covers_contained_points(
            lo1 in 0.0f64..0.9,
            lo2 in 0.0f64..0.9,
            ext1 in 0.01f64..0.5,
            ext2 in 0.01f64..0.5,
            px in 0.0f64..=1.0,
            py in 0.0f64..=1.0,
            m in 1usize..15,
        ) {
            let g = Grid::new(2, m, CellMode::Fifo).unwrap();
            let rect = Rect::new(
                vec![lo1, lo2],
                vec![(lo1 + ext1).min(1.0), (lo2 + ext2).min(1.0)],
            ).unwrap();
            let range = g.cell_range(&rect);
            if rect.contains(&[px, py]) {
                let cc = g.cell_coords(g.locate(&[px, py]));
                for dim in 0..2 {
                    prop_assert!(
                        cc[dim] >= range.0[dim] && cc[dim] <= range.1[dim],
                        "cell {:?} outside range {:?}..{:?}",
                        &cc[..2], &range.0[..2], &range.1[..2]
                    );
                }
            }
        }

        /// Every point scores at most the maxscore of its covering cell —
        /// the invariant the whole traversal rests on.
        #[test]
        fn maxscore_bounds_points(
            x in 0.0f64..=1.0,
            y in 0.0f64..=1.0,
            w1 in -2.0f64..2.0,
            w2 in -2.0f64..2.0,
            m in 1usize..20,
        ) {
            let g = Grid::new(2, m, CellMode::Fifo).unwrap();
            let f = linear2(w1, w2);
            let cell = g.locate(&[x, y]);
            prop_assert!(f.score(&[x, y]) <= g.maxscore(cell, &f) + 1e-9);
        }

        /// `locate` is consistent with `cell_bounds` (closed bounds).
        #[test]
        fn locate_consistent_with_bounds(
            x in 0.0f64..=1.0,
            y in 0.0f64..=1.0,
            m in 1usize..20,
        ) {
            let g = Grid::new(2, m, CellMode::Fifo).unwrap();
            let cell = g.locate(&[x, y]);
            let mut lo = [0.0; MAX_DIMS];
            let mut hi = [0.0; MAX_DIMS];
            g.cell_bounds(cell, &mut lo, &mut hi);
            prop_assert!(lo[0] <= x && x <= hi[0]);
            prop_assert!(lo[1] <= y && y <= hi[1]);
        }

        /// Worse-step neighbours never have a higher maxscore.
        #[test]
        fn step_worse_never_improves(
            i in 0usize..7,
            j in 0usize..7,
            w1 in -2.0f64..2.0,
            w2 in -2.0f64..2.0,
        ) {
            let g = Grid::new(2, 7, CellMode::Fifo).unwrap();
            let f = linear2(w1, w2);
            let c = g.cell_from_coords(&[i, j]);
            for dim in 0..2 {
                if let Some(n) = g.step_worse(c, dim, &f) {
                    prop_assert!(g.maxscore(n, &f) <= g.maxscore(c, &f) + 1e-12);
                }
            }
        }
    }
}
