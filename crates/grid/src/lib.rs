#![warn(missing_docs)]

//! In-memory regular grid index (paper §4.1).
//!
//! The valid tuples are indexed by a regular grid: cell `c_{i,j,…}` covers
//! `[i·δ, (i+1)·δ) × [j·δ, (j+1)·δ) × …` of the unit workspace. Each cell
//! keeps
//!
//! * a *point list* of the valid tuples inside it — FIFO for sliding
//!   windows (per-cell arrival order equals per-cell expiry order), or a
//!   hash set for the §7 explicit-deletion stream model; and
//! * an *influence list*: the ids of the queries whose influence region
//!   intersects the cell, stored as a hash set for O(1)
//!   search/insert/delete exactly as the paper prescribes.
//!
//! The grid also provides the geometric primitives the top-k computation
//! module needs: locating a tuple's cell in O(1), the `maxscore` of a cell
//! under a monotone scoring function, the best-corner start cell and the
//! per-dimension "one step worse" neighbours that drive the minimal-cell
//! traversal of Figure 6.

pub mod cell;
pub mod grid;
pub mod visit;

pub use cell::{Cell, CellMode, PointList};
pub use grid::{CellId, Grid};
pub use visit::VisitStamps;
