#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! In-memory regular grid index (paper §4.1).
//!
//! The valid tuples are indexed by a regular grid: cell `c_{i,j,…}` covers
//! `[i·δ, (i+1)·δ) × [j·δ, (j+1)·δ) × …` of the unit workspace. Each cell
//! keeps
//!
//! * a coordinate-inline *point block* of the valid tuples inside it — a
//!   structure-of-arrays pair of id and packed-coordinate arrays, so cell
//!   scans never chase pointers back into the window ring. Deletion is a
//!   FIFO head-offset ring for sliding windows (per-cell arrival order
//!   equals per-cell expiry order) or an id-indexed swap-remove for the §7
//!   explicit-deletion stream model.
//!
//! The paper's per-cell *influence lists* (the ids of the queries whose
//! influence region intersects a cell, hash sets for O(1)
//! search/insert/delete) are kept in a parallel [`InfluenceTable`] indexed
//! by cell id rather than inside the cells themselves: query maintenance
//! then only ever *reads* the grid, so one shared grid can serve many
//! maintenance shards concurrently while each shard owns the lists for its
//! own queries.
//!
//! The grid also provides the geometric primitives the top-k computation
//! module needs: locating a tuple's cell in O(1), the `maxscore` of a cell
//! under a monotone scoring function, the best-corner start cell and the
//! per-dimension "one step worse" neighbours that drive the minimal-cell
//! traversal of Figure 6.

pub mod cell;
pub mod grid;
pub mod influence;
pub mod visit;

pub use cell::{Cell, CellMode, PointList};
pub use grid::{CellId, Grid};
pub use influence::InfluenceTable;
pub use visit::VisitStamps;
