//! Reusable per-traversal visited markers.
//!
//! The top-k computation module and the influence-list clean-up walks must
//! en-heap / en-list every cell at most once per traversal. Clearing a
//! boolean array of `m^d` cells for every query would dominate the cost of
//! small traversals, so we use the classic generation-stamp trick: a `u32`
//! per cell plus an epoch counter; bumping the epoch invalidates all marks
//! in O(1).

use crate::grid::CellId;

/// Visited markers over the cells of one grid, reusable across traversals.
#[derive(Debug)]
pub struct VisitStamps {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitStamps {
    /// Creates markers for a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> VisitStamps {
        VisitStamps {
            stamps: vec![0; num_cells],
            epoch: 0,
        }
    }

    /// Starts a new traversal, invalidating all previous marks.
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: physically reset once every 2^32 traversals.
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks a cell; returns `true` if it was not yet marked in this
    /// traversal.
    #[inline]
    pub fn mark(&mut self, cell: CellId) -> bool {
        let slot = &mut self.stamps[cell.0 as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether the cell is marked in the current traversal.
    #[inline]
    pub fn is_marked(&self, cell: CellId) -> bool {
        self.stamps[cell.0 as usize] == self.epoch
    }

    /// Number of cells covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the marker set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.stamps.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_once_per_epoch() {
        let mut v = VisitStamps::new(10);
        v.begin();
        assert!(v.mark(CellId(3)));
        assert!(!v.mark(CellId(3)));
        assert!(v.is_marked(CellId(3)));
        assert!(!v.is_marked(CellId(4)));

        v.begin();
        assert!(!v.is_marked(CellId(3)), "new epoch clears marks");
        assert!(v.mark(CellId(3)));
    }

    #[test]
    fn epoch_wrap_resets_physically() {
        let mut v = VisitStamps::new(4);
        v.epoch = u32::MAX - 1;
        v.begin(); // epoch = MAX
        assert!(v.mark(CellId(0)));
        v.begin(); // wrap: fill(0), epoch = 1
        assert_eq!(v.epoch, 1);
        assert!(v.mark(CellId(0)), "stamp from before the wrap is invalid");
    }
}
