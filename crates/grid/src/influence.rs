//! Per-cell influence lists, stored *beside* the grid rather than inside it.
//!
//! The paper attaches an influence list to every grid cell. Keeping those
//! lists out of [`crate::Cell`] — in a parallel table indexed by
//! [`CellId`] — preserves the same O(1) search/insert/delete while making
//! the grid itself immutable during query maintenance. That split is what
//! allows a single shared grid (point lists + geometry) to serve many
//! maintenance shards concurrently: each shard owns its own
//! `InfluenceTable` for its own queries and only ever *reads* the grid.
//!
//! The lists hold **dense query slots** (`QuerySlot`, 4 bytes) rather than
//! `QueryId`s, and each cell stores them as a sorted small-vector: up to
//! [`INLINE_CAP`] slots live inline in the table itself, longer lists
//! spill to a heap `Vec`. The replay hot path iterates a cell's list as
//! one contiguous scan — no hash-set probing, no pointer chase for the
//! common short lists — while membership tests stay O(log n) via binary
//! search.
//!
//! Spilled lists that shrink back keep their allocation as long as it is
//! small ([`RETAIN_CAP`]): influence regions breathe with the stream, and
//! the same boundary cells flip between empty and occupied constantly, so
//! freeing eagerly would realloc every few ticks. Only lists whose
//! capacity outgrew `RETAIN_CAP` are returned to the allocator when they
//! fit inline again; retained capacity is counted by
//! [`InfluenceTable::space_bytes`].

use crate::grid::CellId;
use tkm_common::QuerySlot;

/// Slots stored inline (inside the table's cell array) before a list
/// spills to the heap. Three slots keep the whole per-cell variant at 16
/// bytes — the empty-table footprint is what every event probe walks, so
/// it is kept as small as the inline optimisation allows.
pub const INLINE_CAP: usize = 3;

/// Hysteresis threshold for [`InfluenceTable::remove`]: a spilled list
/// that shrinks to inline size keeps its heap buffer unless its capacity
/// exceeds this many slots.
pub const RETAIN_CAP: usize = 64;

/// One cell's influence list: a sorted set of dense query slots.
#[derive(Debug)]
enum CellList {
    /// At most [`INLINE_CAP`] slots, stored in place (sorted ascending).
    Inline {
        len: u8,
        ids: [QuerySlot; INLINE_CAP],
    },
    /// Spilled to the heap (sorted ascending). Boxed so the variant stays
    /// 16 bytes wide (a bare `Vec` would widen every cell to 32); long
    /// lists pay one extra pointer hop, short ones never leave the table.
    #[allow(clippy::box_collection)]
    Spilled(Box<Vec<QuerySlot>>),
}

/// Every cell pays this footprint even when empty; keep it one sixteenth
/// of a cache line.
const _: () = assert!(std::mem::size_of::<CellList>() == 16);

impl CellList {
    const EMPTY: CellList = CellList::Inline {
        len: 0,
        ids: [QuerySlot(0); INLINE_CAP],
    };

    #[inline]
    fn as_slice(&self) -> &[QuerySlot] {
        match self {
            CellList::Inline { len, ids } => &ids[..*len as usize],
            CellList::Spilled(v) => v,
        }
    }

    fn insert(&mut self, q: QuerySlot) -> bool {
        match self {
            CellList::Inline { len, ids } => {
                let n = *len as usize;
                let Err(pos) = ids[..n].binary_search(&q) else {
                    return false;
                };
                if n < INLINE_CAP {
                    ids.copy_within(pos..n, pos + 1);
                    ids[pos] = q;
                    *len += 1;
                } else {
                    // Spill: move the inline slots plus the newcomer to the
                    // heap, preserving sorted order.
                    let mut v = Vec::with_capacity(INLINE_CAP * 2 + 2);
                    v.extend_from_slice(&ids[..pos]);
                    v.push(q);
                    v.extend_from_slice(&ids[pos..]);
                    *self = CellList::Spilled(Box::new(v));
                }
                true
            }
            CellList::Spilled(v) => {
                let Err(pos) = v.binary_search(&q) else {
                    return false;
                };
                v.insert(pos, q);
                true
            }
        }
    }

    fn remove(&mut self, q: QuerySlot) -> bool {
        match self {
            CellList::Inline { len, ids } => {
                let n = *len as usize;
                let Ok(pos) = ids[..n].binary_search(&q) else {
                    return false;
                };
                ids.copy_within(pos + 1..n, pos);
                *len -= 1;
                true
            }
            CellList::Spilled(v) => {
                let Ok(pos) = v.binary_search(&q) else {
                    return false;
                };
                v.remove(pos);
                // Hysteresis: keep the buffer for the next re-expansion
                // unless it grew genuinely large.
                if v.len() <= INLINE_CAP && v.capacity() > RETAIN_CAP {
                    let mut ids = [QuerySlot(0); INLINE_CAP];
                    ids[..v.len()].copy_from_slice(v);
                    *self = CellList::Inline {
                        len: v.len() as u8,
                        ids,
                    };
                }
                true
            }
        }
    }

    #[inline]
    fn heap_bytes(&self) -> usize {
        match self {
            CellList::Inline { .. } => 0,
            CellList::Spilled(v) => v.capacity() * std::mem::size_of::<QuerySlot>(),
        }
    }
}

/// Influence lists for every cell of one grid, owned by one maintenance
/// domain (a whole engine, or one shard of a sharded monitor).
#[derive(Debug)]
pub struct InfluenceTable {
    cells: Vec<CellList>,
}

impl InfluenceTable {
    /// Creates an empty table covering a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> InfluenceTable {
        let mut cells = Vec::with_capacity(num_cells);
        cells.resize_with(num_cells, || CellList::EMPTY);
        InfluenceTable { cells }
    }

    /// Number of cells covered (must match the grid).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Registers a query slot in the cell's influence list; returns
    /// `false` if already present.
    pub fn insert(&mut self, cell: CellId, q: QuerySlot) -> bool {
        self.cells[cell.0 as usize].insert(q)
    }

    /// Deregisters a query slot from the cell; returns `true` if it was
    /// present. Shrunk lists retain their allocation below the
    /// [`RETAIN_CAP`] hysteresis threshold (boundary cells flip between
    /// empty and occupied every few ticks under a sliding window).
    pub fn remove(&mut self, cell: CellId, q: QuerySlot) -> bool {
        self.cells[cell.0 as usize].remove(q)
    }

    /// Whether the query slot is registered in this cell.
    #[inline]
    pub fn contains(&self, cell: CellId, q: QuerySlot) -> bool {
        self.as_slice(cell).binary_search(&q).is_ok()
    }

    /// Number of queries influenced by this cell.
    #[inline]
    pub fn cell_len(&self, cell: CellId) -> usize {
        self.as_slice(cell).len()
    }

    /// The cell's influence list as a sorted contiguous slice — the
    /// replay hot path iterates this directly.
    #[inline]
    pub fn as_slice(&self, cell: CellId) -> &[QuerySlot] {
        self.cells[cell.0 as usize].as_slice()
    }

    /// Iterates the query slots registered in one cell (ascending).
    pub fn iter(&self, cell: CellId) -> impl Iterator<Item = QuerySlot> + '_ {
        self.as_slice(cell).iter().copied()
    }

    /// Total number of (cell, query) entries across all cells.
    pub fn total_entries(&self) -> usize {
        self.cells.iter().map(|s| s.as_slice().len()).sum()
    }

    /// Deep size estimate in bytes, including heap capacity retained by
    /// the remove hysteresis.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cells.capacity() * std::mem::size_of::<CellList>()
            + self.cells.iter().map(CellList::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = InfluenceTable::new(4);
        assert_eq!(t.num_cells(), 4);
        assert_eq!(t.cell_len(CellId(1)), 0);
        assert!(t.insert(CellId(1), QuerySlot(7)));
        assert!(!t.insert(CellId(1), QuerySlot(7)), "duplicate registration");
        assert!(t.insert(CellId(1), QuerySlot(8)));
        assert!(t.insert(CellId(3), QuerySlot(7)));
        assert!(t.contains(CellId(1), QuerySlot(7)));
        assert!(!t.contains(CellId(0), QuerySlot(7)));
        assert_eq!(t.cell_len(CellId(1)), 2);
        assert_eq!(t.total_entries(), 3);
        let ids: Vec<u32> = t.iter(CellId(1)).map(|q| q.0).collect();
        assert_eq!(ids, vec![7, 8], "sorted contiguous scan");
        assert!(t.remove(CellId(1), QuerySlot(7)));
        assert!(!t.remove(CellId(1), QuerySlot(7)));
        assert!(t.remove(CellId(1), QuerySlot(8)));
        assert_eq!(t.cell_len(CellId(1)), 0);
    }

    #[test]
    fn lists_stay_sorted_across_spill() {
        let mut t = InfluenceTable::new(1);
        // Insert out of order, past the inline capacity.
        for q in [9u32, 3, 7, 1, 5, 8, 2, 6, 0, 4] {
            assert!(t.insert(CellId(0), QuerySlot(q)));
        }
        let ids: Vec<u32> = t.iter(CellId(0)).map(|q| q.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(t.as_slice(CellId(0)).len(), 10);
        for q in 0..10 {
            assert!(t.contains(CellId(0), QuerySlot(q)));
        }
        assert!(!t.contains(CellId(0), QuerySlot(10)));
        // Removing from the middle keeps order.
        assert!(t.remove(CellId(0), QuerySlot(4)));
        let ids: Vec<u32> = t.iter(CellId(0)).map(|q| q.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn inline_lists_need_no_heap() {
        let mut t = InfluenceTable::new(64);
        let empty = t.space_bytes();
        for cell in 0..64u32 {
            for q in 0..INLINE_CAP as u32 {
                t.insert(CellId(cell), QuerySlot(q));
            }
        }
        assert_eq!(
            t.space_bytes(),
            empty,
            "up to {INLINE_CAP} slots per cell stay inline"
        );
    }

    /// Satellite regression: a spilled list that shrinks back keeps its
    /// buffer (no realloc churn on flip-flopping boundary cells), and the
    /// retained capacity is visible in `space_bytes`.
    #[test]
    fn remove_hysteresis_retains_small_buffers() {
        let mut t = InfluenceTable::new(1);
        for q in 0..(INLINE_CAP as u32 + 2) {
            t.insert(CellId(0), QuerySlot(q));
        }
        let spilled = t.space_bytes();
        assert!(
            spilled > InfluenceTable::new(1).space_bytes(),
            "heap in use"
        );
        for q in 0..(INLINE_CAP as u32 + 2) {
            t.remove(CellId(0), QuerySlot(q));
        }
        assert_eq!(t.cell_len(CellId(0)), 0);
        assert_eq!(
            t.space_bytes(),
            spilled,
            "small buffer retained after emptying (hysteresis)"
        );
        // Re-inserting after the flip reuses the retained buffer.
        assert!(t.insert(CellId(0), QuerySlot(3)));
        assert_eq!(t.space_bytes(), spilled);
    }

    /// The hysteresis is bounded: buffers that outgrew `RETAIN_CAP` are
    /// freed once the list fits inline again.
    #[test]
    fn remove_hysteresis_frees_large_buffers() {
        let mut t = InfluenceTable::new(1);
        let n = RETAIN_CAP as u32 * 2;
        for q in 0..n {
            t.insert(CellId(0), QuerySlot(q));
        }
        let spilled = t.space_bytes();
        for q in 0..n {
            t.remove(CellId(0), QuerySlot(q));
        }
        assert!(
            t.space_bytes() < spilled,
            "oversized buffer freed when back to inline size"
        );
        assert_eq!(
            t.space_bytes(),
            InfluenceTable::new(1).space_bytes(),
            "list is inline again"
        );
    }

    #[test]
    fn empty_table_is_flat() {
        let t = InfluenceTable::new(1 << 12);
        assert_eq!(
            t.space_bytes() - std::mem::size_of::<InfluenceTable>(),
            (1 << 12) * std::mem::size_of::<CellList>(),
            "no per-cell heap allocation while empty"
        );
    }
}
