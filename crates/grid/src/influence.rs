//! Per-cell influence lists, stored *beside* the grid rather than inside it.
//!
//! The paper attaches an influence list to every grid cell. Keeping those
//! lists out of [`crate::Cell`] — in a parallel table indexed by
//! [`CellId`] — preserves the same O(1) search/insert/delete while making
//! the grid itself immutable during query maintenance. That split is what
//! allows a single shared grid (point lists + geometry) to serve many
//! maintenance shards concurrently: each shard owns its own
//! `InfluenceTable` for its own queries and only ever *reads* the grid.
//!
//! The lists are lazily boxed exactly like the old in-cell representation:
//! the vast majority of cells influence no query at any given time, so an
//! `Option<Box<…>>` keeps empty slots one pointer wide.

use crate::grid::CellId;
use tkm_common::{FxHashSet, QueryId};

/// Influence lists for every cell of one grid, owned by one maintenance
/// domain (a whole engine, or one shard of a sharded monitor).
#[derive(Debug)]
pub struct InfluenceTable {
    cells: Vec<Option<Box<FxHashSet<QueryId>>>>,
}

impl InfluenceTable {
    /// Creates an empty table covering a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> InfluenceTable {
        let mut cells = Vec::with_capacity(num_cells);
        cells.resize_with(num_cells, || None);
        InfluenceTable { cells }
    }

    /// Number of cells covered (must match the grid).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Registers a query in the cell's influence list; returns `false` if
    /// already present.
    pub fn insert(&mut self, cell: CellId, q: QueryId) -> bool {
        self.cells[cell.0 as usize]
            .get_or_insert_with(Default::default)
            .insert(q)
    }

    /// Deregisters a query from the cell; returns `true` if it was present.
    /// Frees the backing set when it becomes empty.
    pub fn remove(&mut self, cell: CellId, q: QueryId) -> bool {
        let slot = &mut self.cells[cell.0 as usize];
        let Some(set) = slot.as_mut() else {
            return false;
        };
        let removed = set.remove(&q);
        if set.is_empty() {
            *slot = None;
        }
        removed
    }

    /// Whether the query is registered in this cell.
    #[inline]
    pub fn contains(&self, cell: CellId, q: QueryId) -> bool {
        self.cells[cell.0 as usize]
            .as_ref()
            .is_some_and(|s| s.contains(&q))
    }

    /// Number of queries influenced by this cell.
    #[inline]
    pub fn cell_len(&self, cell: CellId) -> usize {
        self.cells[cell.0 as usize].as_ref().map_or(0, |s| s.len())
    }

    /// Iterates the query ids registered in one cell.
    pub fn iter(&self, cell: CellId) -> impl Iterator<Item = QueryId> + '_ {
        self.cells[cell.0 as usize]
            .iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Total number of (cell, query) entries across all cells.
    pub fn total_entries(&self) -> usize {
        self.cells
            .iter()
            .map(|s| s.as_ref().map_or(0, |s| s.len()))
            .sum()
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.cells.capacity() * std::mem::size_of::<Option<Box<FxHashSet<QueryId>>>>()
            + self
                .cells
                .iter()
                .flatten()
                .map(|s| {
                    std::mem::size_of::<FxHashSet<QueryId>>()
                        + s.capacity() * (std::mem::size_of::<QueryId>() + 8)
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = InfluenceTable::new(4);
        assert_eq!(t.num_cells(), 4);
        assert_eq!(t.cell_len(CellId(1)), 0);
        assert!(t.insert(CellId(1), QueryId(7)));
        assert!(!t.insert(CellId(1), QueryId(7)), "duplicate registration");
        assert!(t.insert(CellId(1), QueryId(8)));
        assert!(t.insert(CellId(3), QueryId(7)));
        assert!(t.contains(CellId(1), QueryId(7)));
        assert!(!t.contains(CellId(0), QueryId(7)));
        assert_eq!(t.cell_len(CellId(1)), 2);
        assert_eq!(t.total_entries(), 3);
        let mut ids: Vec<u64> = t.iter(CellId(1)).map(|q| q.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 8]);
        assert!(t.remove(CellId(1), QueryId(7)));
        assert!(!t.remove(CellId(1), QueryId(7)));
        assert!(t.remove(CellId(1), QueryId(8)));
        assert!(t.cells[1].is_none(), "empty influence set is freed");
    }

    #[test]
    fn empty_table_is_one_pointer_per_cell() {
        let t = InfluenceTable::new(1 << 12);
        assert_eq!(
            t.space_bytes() - std::mem::size_of::<InfluenceTable>(),
            (1 << 12) * std::mem::size_of::<usize>()
        );
    }
}
