//! Grid cells: coordinate-inline point blocks.
//!
//! Influence lists live *outside* the cells (see
//! [`crate::influence::InfluenceTable`]) so that the grid stays immutable
//! during query maintenance and can be shared read-only across maintenance
//! shards.
//!
//! Each cell stores its points as a structure-of-arrays block: a dense
//! `Vec<TupleId>` of ids plus a packed `Vec<f64>` of coordinates (`d`
//! consecutive values per point, parallel to the ids). The top-k traversal
//! streams `(id, coords)` pairs straight out of the cell — no per-tuple
//! indirection into the window ring or slab — so a cell scan is two
//! contiguous reads that the dim-specialized scoring kernels can
//! auto-vectorize over.
//!
//! The two deletion disciplines map onto the same block:
//!
//! * **FIFO** (sliding windows, §4.1): per-cell insertions and deletions
//!   both happen in arrival order, so the block is a head-offset ring —
//!   removal bumps `head`, and the dead prefix is compacted away whenever
//!   it outgrows the live suffix (amortized O(1) per removal, and the live
//!   region always stays a single contiguous run for the scan kernels).
//! * **Hash** (explicit-deletion update streams, §7): deletions strike
//!   anywhere, so an id → block-index map enables O(1) swap-remove; the
//!   scan side is identical.

use tkm_common::{FxHashMap, Result, TkmError, TupleId};

/// How a cell deletes from its point block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellMode {
    /// Head-offset ring — sliding windows, where per-cell insertions and
    /// deletions both happen in arrival order (amortized O(1) each, §4.1).
    Fifo,
    /// Id-indexed swap-remove — explicit-deletion update streams (§7),
    /// where deletions strike anywhere in the cell.
    Hash,
}

/// Minimum dead-prefix length before a FIFO block is compacted. Compaction
/// copies the live suffix to the front; deferring it until the dead prefix
/// outgrows both the live suffix and this floor keeps the copy amortized
/// O(1) per removal without thrashing small cells.
const COMPACT_MIN: u32 = 8;

/// Coordinate-inline point block of one cell (structure-of-arrays).
#[derive(Debug)]
pub struct PointList {
    /// Tuple ids; `head..` are live (arrival order in FIFO mode).
    ids: Vec<TupleId>,
    /// Packed coordinates, `dims` per point, parallel to `ids`.
    coords: Vec<f64>,
    /// Offset (in points) of the logical front; always 0 in Hash mode.
    head: u32,
    /// Coordinates per point.
    dims: u32,
    /// Hash mode only: id → index into `ids`.
    index: Option<Box<FxHashMap<TupleId, u32>>>,
}

impl PointList {
    fn new(mode: CellMode, dims: usize) -> PointList {
        PointList {
            ids: Vec::new(),
            coords: Vec::new(),
            head: 0,
            dims: dims as u32,
            index: match mode {
                CellMode::Fifo => None,
                CellMode::Hash => Some(Box::default()),
            },
        }
    }

    /// Coordinates per point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims as usize
    }

    /// Number of live points in the cell.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len() - self.head as usize
    }

    /// Whether the cell is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live tuple ids (front = oldest for FIFO cells).
    #[inline]
    pub fn ids(&self) -> &[TupleId] {
        &self.ids[self.head as usize..]
    }

    /// The packed coordinates of the live tuples, `dims` consecutive values
    /// per point, aligned with [`PointList::ids`].
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords[self.head as usize * self.dims as usize..]
    }

    /// Iterates `(id, coords)` pairs (arrival order for FIFO cells).
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[f64])> {
        self.ids()
            .iter()
            .copied()
            .zip(self.coords().chunks_exact(self.dims as usize))
    }

    /// Physical point capacity of the id array (diagnostics / space tests).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ids.capacity()
    }

    /// Usable capacity of the Hash-mode id index (0 for FIFO cells).
    #[inline]
    pub fn index_capacity(&self) -> usize {
        self.index.as_ref().map_or(0, |m| m.capacity())
    }

    fn push(&mut self, id: TupleId, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dims as usize);
        if let Some(index) = &mut self.index {
            let prev = index.insert(id, self.ids.len() as u32);
            debug_assert!(prev.is_none(), "duplicate insert of {id:?}");
        }
        self.ids.push(id);
        // Element-wise pushes: `extend_from_slice` lowers to a memcpy call
        // for runtime-length slices, which costs more than d stores for
        // the tiny d of a point.
        for &c in coords {
            self.coords.push(c);
        }
    }

    fn remove(&mut self, id: TupleId) -> Result<()> {
        match &mut self.index {
            None => {
                // FIFO: only the front may leave.
                match self.ids.get(self.head as usize) {
                    Some(front) if *front == id => {
                        self.head += 1;
                        self.maybe_compact();
                        Ok(())
                    }
                    _ => Err(TkmError::UnknownTuple(id)),
                }
            }
            Some(index) => {
                let Some(pos) = index.remove(&id) else {
                    return Err(TkmError::UnknownTuple(id));
                };
                let pos = pos as usize;
                let last = self.ids.len() - 1;
                let d = self.dims as usize;
                if pos != last {
                    let moved = self.ids[last];
                    self.ids[pos] = moved;
                    self.coords.copy_within(last * d..(last + 1) * d, pos * d);
                    index.insert(moved, pos as u32);
                }
                self.ids.pop();
                self.coords.truncate(last * d);
                Ok(())
            }
        }
    }

    /// Drops the dead prefix of a FIFO block once it outgrows the live
    /// suffix: the copy moves `live` points after at least `live` removals
    /// since the previous compaction, so each removal pays O(1) amortized.
    fn maybe_compact(&mut self) {
        let head = self.head as usize;
        let live = self.ids.len() - head;
        if live == 0 {
            self.ids.clear();
            self.coords.clear();
            self.head = 0;
        } else if self.head >= COMPACT_MIN && head > live {
            let d = self.dims as usize;
            self.ids.copy_within(head.., 0);
            self.ids.truncate(live);
            self.coords.copy_within(head * d.., 0);
            self.coords.truncate(live * d);
            self.head = 0;
        }
    }
}

/// One grid cell: its coordinate-inline point block.
#[derive(Debug)]
pub struct Cell {
    points: PointList,
}

impl Cell {
    pub(crate) fn new(mode: CellMode, dims: usize) -> Cell {
        Cell {
            points: PointList::new(mode, dims),
        }
    }

    /// The cell's point block.
    #[inline]
    pub fn points(&self) -> &PointList {
        &self.points
    }

    /// Adds a tuple and its coordinates to the block (tail position for
    /// FIFO cells — callers must insert in arrival order).
    pub fn push_point(&mut self, id: TupleId, coords: &[f64]) {
        self.points.push(id, coords);
    }

    /// Removes a tuple.
    ///
    /// For FIFO cells the id must be the cell's front (sliding windows
    /// expire tuples in arrival order, so per-cell expiry is FIFO too);
    /// anything else indicates engine corruption and is reported as an
    /// error rather than silently breaking the index.
    // lint: hot-path
    pub fn remove_point(&mut self, id: TupleId) -> Result<()> {
        self.points.remove(id)
    }

    /// Deep size estimate in bytes: the cell header plus its point
    /// block's retained capacity.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.points.space_bytes()
    }
}

impl PointList {
    /// Heap bytes retained by the block: id + coordinate capacity plus
    /// the Hash-mode index table (bucket array at its real load factor,
    /// not just the live entries). Excludes `size_of::<PointList>`
    /// itself, which the owning [`Cell`] accounts for inline.
    pub fn space_bytes(&self) -> usize {
        let mut bytes = self.ids.capacity() * std::mem::size_of::<TupleId>()
            + self.coords.capacity() * std::mem::size_of::<f64>();
        if let Some(index) = &self.index {
            bytes +=
                std::mem::size_of::<FxHashMap<TupleId, u32>>() + hash_index_bytes(index.capacity());
        }
        bytes
    }
}

/// Heap footprint of a hashbrown-style table with the given *usable*
/// capacity: the bucket array is sized to the next power of two above
/// `capacity / 0.875` (the 7/8 load factor), and each bucket pays its
/// `(TupleId, u32)` entry plus one control byte.
pub(crate) fn hash_index_bytes(capacity: usize) -> usize {
    if capacity == 0 {
        return 0;
    }
    let buckets = (capacity * 8 / 7 + 1).next_power_of_two();
    buckets * (std::mem::size_of::<(TupleId, u32)>() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_point_list_enforces_order() {
        let mut c = Cell::new(CellMode::Fifo, 2);
        c.push_point(TupleId(1), &[0.1, 0.2]);
        c.push_point(TupleId(5), &[0.3, 0.4]);
        assert_eq!(c.points().len(), 2);
        // Removing a non-front id is an engine bug and must be caught.
        assert!(c.remove_point(TupleId(5)).is_err());
        assert!(c.remove_point(TupleId(1)).is_ok());
        assert_eq!(c.points().ids(), &[TupleId(5)]);
        assert_eq!(c.points().coords(), &[0.3, 0.4]);
        assert!(c.remove_point(TupleId(5)).is_ok());
        assert!(c.points().is_empty());
    }

    #[test]
    fn hash_point_list_random_removal() {
        let mut c = Cell::new(CellMode::Hash, 1);
        for i in 0..5 {
            c.push_point(TupleId(i), &[i as f64 / 10.0]);
        }
        assert!(c.remove_point(TupleId(3)).is_ok());
        assert!(c.remove_point(TupleId(3)).is_err());
        assert_eq!(c.points().len(), 4);
        let mut pts: Vec<(u64, f64)> = c.points().iter().map(|(t, c)| (t.0, c[0])).collect();
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(pts, vec![(0, 0.0), (1, 0.1), (2, 0.2), (4, 0.4)]);
    }

    /// The ids and coords arrays must stay aligned across swap-removes.
    #[test]
    fn hash_swap_remove_keeps_blocks_aligned() {
        let mut c = Cell::new(CellMode::Hash, 2);
        for i in 0..10u64 {
            c.push_point(TupleId(i), &[i as f64 / 10.0, i as f64 / 20.0]);
        }
        // Remove in an arbitrary (non-FIFO) order.
        for victim in [4u64, 0, 9, 5, 1] {
            assert!(c.remove_point(TupleId(victim)).is_ok());
        }
        assert_eq!(c.points().len(), 5);
        for (id, coords) in c.points().iter() {
            assert_eq!(coords, &[id.0 as f64 / 10.0, id.0 as f64 / 20.0]);
        }
    }

    /// FIFO blocks compact their dead prefix: after draining far more
    /// points than remain live, the retained buffers must not keep
    /// growing with the total insert count.
    #[test]
    fn fifo_ring_compacts_dead_prefix() {
        let mut c = Cell::new(CellMode::Fifo, 2);
        for i in 0..4096u64 {
            c.push_point(TupleId(i), &[0.5, 0.5]);
            if i >= 4 {
                c.remove_point(TupleId(i - 4)).unwrap();
            }
        }
        assert_eq!(c.points().len(), 4);
        assert!(
            c.points().capacity() < 4096,
            "dead prefix never compacted: capacity {}",
            c.points().capacity()
        );
        // The live window survived the compactions intact.
        let ids: Vec<u64> = c.points().ids().iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![4092, 4093, 4094, 4095]);
    }

    #[test]
    fn empty_cell_is_small() {
        // Hot memory matters: millions of cells may exist. With influence
        // lists in `InfluenceTable` and the Hash index boxed, a cell is two
        // Vecs plus the head/dims words and one optional pointer.
        assert!(std::mem::size_of::<Cell>() <= 64);
    }

    /// `space_bytes` must track the *retained* capacities of the SoA block
    /// and charge the Hash index at its bucket-array size (load-factor
    /// overhead included), not the naive entry count.
    #[test]
    fn space_bytes_pins_layout_accounting() {
        let dims = 3;
        let mut fifo = Cell::new(CellMode::Fifo, dims);
        let mut hash = Cell::new(CellMode::Hash, dims);
        assert_eq!(fifo.space_bytes(), std::mem::size_of::<Cell>());
        for i in 0..100u64 {
            fifo.push_point(TupleId(i), &[0.1, 0.2, 0.3]);
            hash.push_point(TupleId(i), &[0.1, 0.2, 0.3]);
        }
        // FIFO: exactly the two Vec capacities.
        assert_eq!(
            fifo.space_bytes(),
            std::mem::size_of::<Cell>()
                + fifo.points().capacity() * std::mem::size_of::<TupleId>()
                + fifo.points().coords.capacity() * std::mem::size_of::<f64>()
        );
        // Hash: additionally the boxed map struct + its bucket array.
        let expect_index = std::mem::size_of::<FxHashMap<TupleId, u32>>()
            + hash_index_bytes(hash.points().index_capacity());
        assert_eq!(
            hash.space_bytes(),
            std::mem::size_of::<Cell>()
                + hash.points().capacity() * std::mem::size_of::<TupleId>()
                + hash.points().coords.capacity() * std::mem::size_of::<f64>()
                + expect_index
        );
        // Load-factor overhead: the bucket array estimate must exceed the
        // naive entries × entry-size figure the old accounting used.
        let naive = 100 * (std::mem::size_of::<TupleId>() + std::mem::size_of::<u32>());
        assert!(hash_index_bytes(hash.points().index_capacity()) > naive);
        // And the bucket count actually covers the usable capacity.
        let cap = hash.points().index_capacity();
        assert!(hash_index_bytes(cap) >= cap * std::mem::size_of::<(TupleId, u32)>());
    }
}
