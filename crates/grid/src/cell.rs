//! Grid cells: point lists.
//!
//! Influence lists live *outside* the cells (see
//! [`crate::influence::InfluenceTable`]) so that the grid stays immutable
//! during query maintenance and can be shared read-only across maintenance
//! shards.

use std::collections::VecDeque;

use tkm_common::{FxHashSet, Result, TkmError, TupleId};

/// How a cell stores its point list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellMode {
    /// FIFO deque — sliding windows, where per-cell insertions and
    /// deletions both happen in arrival order (O(1) each, §4.1).
    Fifo,
    /// Hash set — explicit-deletion update streams (§7), where deletions
    /// strike anywhere in the cell.
    Hash,
}

/// Point list of one cell.
#[derive(Debug)]
pub enum PointList {
    /// Arrival-ordered ids (front = oldest).
    Fifo(VecDeque<TupleId>),
    /// Unordered ids.
    Hash(FxHashSet<TupleId>),
}

impl PointList {
    fn new(mode: CellMode) -> PointList {
        match mode {
            CellMode::Fifo => PointList::Fifo(VecDeque::new()),
            CellMode::Hash => PointList::Hash(FxHashSet::default()),
        }
    }

    /// Number of points in the cell.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PointList::Fifo(d) => d.len(),
            PointList::Hash(s) => s.len(),
        }
    }

    /// Whether the cell is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the ids in the cell (arrival order for FIFO cells).
    pub fn iter(&self) -> PointIter<'_> {
        match self {
            PointList::Fifo(d) => PointIter::Fifo(d.iter()),
            PointList::Hash(s) => PointIter::Hash(s.iter()),
        }
    }
}

/// Iterator over the tuple ids of one cell.
pub enum PointIter<'a> {
    /// FIFO backing.
    Fifo(std::collections::vec_deque::Iter<'a, TupleId>),
    /// Hash backing.
    Hash(std::collections::hash_set::Iter<'a, TupleId>),
}

impl Iterator for PointIter<'_> {
    type Item = TupleId;

    #[inline]
    fn next(&mut self) -> Option<TupleId> {
        match self {
            PointIter::Fifo(it) => it.next().copied(),
            PointIter::Hash(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PointIter::Fifo(it) => it.size_hint(),
            PointIter::Hash(it) => it.size_hint(),
        }
    }
}

/// One grid cell: its point list.
#[derive(Debug)]
pub struct Cell {
    points: PointList,
}

impl Cell {
    pub(crate) fn new(mode: CellMode) -> Cell {
        Cell {
            points: PointList::new(mode),
        }
    }

    /// The cell's point list.
    #[inline]
    pub fn points(&self) -> &PointList {
        &self.points
    }

    /// Adds a tuple to the point list (tail position for FIFO cells —
    /// callers must insert in arrival order).
    pub fn push_point(&mut self, id: TupleId) {
        match &mut self.points {
            PointList::Fifo(d) => d.push_back(id),
            PointList::Hash(s) => {
                s.insert(id);
            }
        }
    }

    /// Removes a tuple.
    ///
    /// For FIFO cells the id must be the cell's front (sliding windows
    /// expire tuples in arrival order, so per-cell expiry is FIFO too);
    /// anything else indicates engine corruption and is reported as an
    /// error rather than silently breaking the index.
    pub fn remove_point(&mut self, id: TupleId) -> Result<()> {
        match &mut self.points {
            PointList::Fifo(d) => match d.front() {
                Some(front) if *front == id => {
                    d.pop_front();
                    Ok(())
                }
                _ => Err(TkmError::UnknownTuple(id)),
            },
            PointList::Hash(s) => {
                if s.remove(&id) {
                    Ok(())
                } else {
                    Err(TkmError::UnknownTuple(id))
                }
            }
        }
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        let points = match &self.points {
            PointList::Fifo(d) => d.capacity() * std::mem::size_of::<TupleId>(),
            PointList::Hash(s) => s.capacity() * (std::mem::size_of::<TupleId>() + 8),
        };
        std::mem::size_of::<Self>() + points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_point_list_enforces_order() {
        let mut c = Cell::new(CellMode::Fifo);
        c.push_point(TupleId(1));
        c.push_point(TupleId(5));
        assert_eq!(c.points().len(), 2);
        // Removing a non-front id is an engine bug and must be caught.
        assert!(c.remove_point(TupleId(5)).is_err());
        assert!(c.remove_point(TupleId(1)).is_ok());
        assert!(c.remove_point(TupleId(5)).is_ok());
        assert!(c.points().is_empty());
    }

    #[test]
    fn hash_point_list_random_removal() {
        let mut c = Cell::new(CellMode::Hash);
        for i in 0..5 {
            c.push_point(TupleId(i));
        }
        assert!(c.remove_point(TupleId(3)).is_ok());
        assert!(c.remove_point(TupleId(3)).is_err());
        assert_eq!(c.points().len(), 4);
        let mut ids: Vec<u64> = c.points().iter().map(|t| t.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 4]);
    }

    #[test]
    fn empty_cell_is_small() {
        // Hot memory matters: millions of cells may exist. With influence
        // lists moved to `InfluenceTable`, a cell is just its point list.
        assert!(std::mem::size_of::<Cell>() <= 48);
    }
}
