#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Analytical performance model (paper §6).
//!
//! Closed-form estimates of the cost and space of TMA and SMA under the
//! paper's assumptions: `N` tuples uniformly distributed in the unit
//! d-dimensional workspace, arrival rate `r` per cycle, `Q` queries with
//! result size `k`, grid cell extent `δ` per axis. The `model_vs_measured`
//! experiment compares these formulas against counters collected from the
//! running engines.
//!
//! All quantities are *unit-free operation counts*, not seconds: the paper
//! uses them for asymptotic comparison (e.g. `Pr_rec · T_comp` explains why
//! TMA falls behind SMA as `k` grows).

/// Model parameters (defaults = the paper's default setting, Table 1).
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Average number of valid tuples `N`.
    pub n: f64,
    /// Dimensionality `d`.
    pub d: f64,
    /// Arrivals per processing cycle `r`.
    pub r: f64,
    /// Number of running queries `Q`.
    pub q: f64,
    /// Result cardinality `k`.
    pub k: f64,
    /// Grid cell extent per axis `δ`.
    pub delta: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        // Table 1 defaults: d = 4, N = 1M, r = 10K, Q = 1K, k = 20 and the
        // best grid of 12⁴ cells (δ = 1/12).
        ModelParams {
            n: 1.0e6,
            d: 4.0,
            r: 1.0e4,
            q: 1.0e3,
            k: 20.0,
            delta: 1.0 / 12.0,
        }
    }
}

impl ModelParams {
    /// Average number of tuples per cell, `N · δ^d`.
    pub fn tuples_per_cell(&self) -> f64 {
        self.n * self.delta.powf(self.d)
    }

    /// Expected number of cells intersecting one query's influence region:
    /// `C = ⌈k / (N·δ^d)⌉` (the region holds k of the N uniform tuples, so
    /// its volume is k/N).
    pub fn cells_per_query(&self) -> f64 {
        (self.k / self.tuples_per_cell()).ceil().max(1.0)
    }

    /// Points inside the processed cells, `|C| = C · N · δ^d`.
    pub fn points_per_query(&self) -> f64 {
        self.cells_per_query() * self.tuples_per_cell()
    }

    /// Cost of one top-k computation,
    /// `T_comp = O(C·log C + |C|·log k)`.
    pub fn t_comp(&self) -> f64 {
        let c = self.cells_per_query();
        let pts = self.points_per_query();
        c * c.log2().max(1.0) + pts * self.k.log2().max(1.0)
    }

    /// Upper bound for the probability that a query must be recomputed in
    /// a cycle: `Pr_rec ≤ 1 − (1 − r/N)^k` (the probability that at least
    /// one of the k result tuples expires).
    pub fn pr_rec(&self) -> f64 {
        1.0 - (1.0 - (self.r / self.n).min(1.0)).powf(self.k)
    }

    /// Per-cycle running time of TMA:
    /// `T_TMA = O(r + Q·(C·r·δ^d + k·r·log k/N + Pr_rec·T_comp))`.
    pub fn t_tma(&self) -> f64 {
        let events = self.cells_per_query() * self.r * self.delta.powf(self.d);
        let updates = self.k * self.r * self.k.log2().max(1.0) / self.n;
        self.r + self.q * (events + updates + self.pr_rec() * self.t_comp())
    }

    /// Per-cycle running time of SMA:
    /// `T_SMA = O(r + Q·(C·r·δ^d + k²·r/N))` — no recomputation term under
    /// uniform data.
    pub fn t_sma(&self) -> f64 {
        let events = self.cells_per_query() * self.r * self.delta.powf(self.d);
        let updates = self.k * self.k * self.r / self.n;
        self.r + self.q * (events + updates)
    }

    /// Space of TMA in "slots":
    /// `S_TMA = O(N·(d+1) + Q·(C + d + 2k))`.
    pub fn s_tma(&self) -> f64 {
        self.n * (self.d + 1.0) + self.q * (self.cells_per_query() + self.d + 2.0 * self.k)
    }

    /// Space of SMA in "slots":
    /// `S_SMA = O(N·(d+1) + Q·(C + d + 3k))` — the extra `k` stores the
    /// dominance counters.
    pub fn s_sma(&self) -> f64 {
        self.n * (self.d + 1.0) + self.q * (self.cells_per_query() + self.d + 3.0 * self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn defaults_match_table1() {
        let m = p();
        assert_eq!(m.n, 1.0e6);
        assert_eq!(m.k, 20.0);
        // 12^4 cells with 1M tuples → ~48 tuples per cell.
        assert!((m.tuples_per_cell() - 48.2).abs() < 0.5);
        // Influence region of a default query fits in one cell.
        assert_eq!(m.cells_per_query(), 1.0);
    }

    #[test]
    fn pr_rec_behaviour() {
        let m = p();
        // r/N = 1%, k = 20 → Pr_rec ≈ 1 − 0.99^20 ≈ 0.182.
        assert!((m.pr_rec() - 0.182).abs() < 0.005);
        // Monotone in k and r.
        let mut hk = m;
        hk.k = 100.0;
        assert!(hk.pr_rec() > m.pr_rec());
        let mut hr = m;
        hr.r = 1.0e5;
        assert!(hr.pr_rec() > m.pr_rec());
        // Bounded by 1.
        hr.r = 1.0e7;
        assert!(hr.pr_rec() <= 1.0);
    }

    #[test]
    fn sma_beats_tma_at_default_and_gap_grows_with_k() {
        let m = p();
        assert!(m.t_sma() < m.t_tma());
        let ratio_at = |k: f64| {
            let mut m = p();
            m.k = k;
            m.t_tma() / m.t_sma()
        };
        assert!(
            ratio_at(100.0) > ratio_at(1.0),
            "the TMA/SMA gap must widen with k (Figure 19)"
        );
    }

    #[test]
    fn space_ordering() {
        let m = p();
        assert!(m.s_sma() > m.s_tma(), "skyband costs an extra k per query");
        // Both are dominated by the N·(d+1) tuple storage.
        assert!(m.s_tma() > m.n * m.d);
    }

    #[test]
    fn costs_scale_with_load() {
        let m = p();
        for (field, grow) in [
            ("q", {
                let mut x = p();
                x.q *= 10.0;
                x
            }),
            ("r", {
                let mut x = p();
                x.r *= 10.0;
                x
            }),
            ("k", {
                let mut x = p();
                x.k *= 5.0;
                x
            }),
        ] {
            assert!(grow.t_tma() > m.t_tma(), "T_TMA not increasing in {field}");
            assert!(grow.t_sma() > m.t_sma(), "T_SMA not increasing in {field}");
        }
    }
}
