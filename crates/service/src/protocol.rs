//! The line-oriented wire protocol.
//!
//! Everything on the wire is UTF-8 text, one message per `\n`-terminated
//! line, tokens separated by spaces. Three message classes exist:
//!
//! * **requests** (client → server): [`Request`] — `REGISTER`,
//!   `UNREGISTER`, `SUBSCRIBE`, `UNSUBSCRIBE`, `SNAPSHOT`, `TICK`,
//!   `TICKAT`, `STATS`, `PING`, `QUIT`;
//! * **replies** (server → client, exactly one per request, in request
//!   order): [`Reply`] — lines starting `OK` or `ERR`;
//! * **pushes** (server → subscriber, asynchronous): [`Push`] — lines
//!   starting `DELTA`, `SNAPSHOT` or `RESYNC`.
//!
//! Replies and pushes share one ordered stream per connection, so a client
//! that issues a request is guaranteed to see every push enqueued before
//! the reply first — [`parse_server_line`] classifies a received line into
//! [`ServerLine::Reply`] vs [`ServerLine::Push`] unambiguously by its first
//! token.
//!
//! Scored entries are encoded `t<id>:<score>` with the score printed by
//! Rust's shortest-round-trip `f64` formatter, so `encode → parse` is
//! bit-exact and a subscriber can reconstruct results oracle-identically.
//! The full verb-by-verb grammar is documented in the README's *Serving*
//! section; the round-trip property is pinned by this module's tests.

use std::fmt;

use tkm_common::{QueryId, Scored, Timestamp, TupleId};
use tkm_core::ResultDelta;
use tkm_window::WindowSpec;

/// Scoring-function family selector of a `REGISTER` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `Σ wᵢ·xᵢ` (the default).
    Linear,
    /// `Π (wᵢ + xᵢ)`.
    Product,
    /// `Σ wᵢ·xᵢ²`.
    Quadratic,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Family::Linear => "linear",
            Family::Product => "product",
            Family::Quadratic => "quadratic",
        })
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `REGISTER k=<K> weights=<w,..> [fn=<family>] [range=<lo:hi,..>]
    /// [window=count:<N>|time:<T>]` — registers a continuous query.
    ///
    /// The optional `window` argument is a deployment assertion: the
    /// server rejects the registration unless it matches the window it
    /// was started with, so a client cannot silently monitor a different
    /// window than it believes it does.
    Register {
        /// Result cardinality.
        k: usize,
        /// Per-dimension function parameters (weights/offsets).
        weights: Vec<f64>,
        /// Scoring-function family.
        family: Family,
        /// Optional per-dimension `(lo, hi)` constraint region (§7).
        range: Option<Vec<(f64, f64)>>,
        /// Optional window assertion.
        window: Option<WireWindow>,
    },
    /// `UNREGISTER q<ID>` — terminates a query.
    Unregister(QueryId),
    /// `SUBSCRIBE q<ID>` — starts streaming the query's result changes to
    /// this connection; a baseline `SNAPSHOT` push is enqueued immediately
    /// before the `OK` reply.
    Subscribe(QueryId),
    /// `UNSUBSCRIBE q<ID>` — stops the stream (idempotent).
    Unsubscribe(QueryId),
    /// `SNAPSHOT q<ID>` — one-shot read of the current result.
    Snapshot(QueryId),
    /// `TICK [v1 v2 ..]` — queues arrivals (one tuple per `dims` values)
    /// for the next processing cycle. Under manual ticking the cycle runs
    /// immediately; under interval ticking all arrivals queued during the
    /// interval are batched into one cycle.
    Tick {
        /// Flat coordinate buffer of the queued arrivals.
        arrivals: Vec<f64>,
    },
    /// `TICKAT @<ts> [v1 v2 ..]` — like `TICK` with an explicit
    /// (non-decreasing) logical timestamp. Manual ticking only.
    TickAt {
        /// Logical timestamp of the cycle.
        at: Timestamp,
        /// Flat coordinate buffer of the queued arrivals.
        arrivals: Vec<f64>,
    },
    /// `STATS` — server counters as `key=value` pairs.
    Stats,
    /// `PING` — heartbeat; the server replies `OK pong`. Keeps a
    /// connection that is silent in both directions alive under the
    /// server's idle deadline.
    Ping,
    /// `QUIT` — server replies `OK bye` and closes the connection.
    Quit,
}

/// The window shape carried by a `REGISTER … window=` assertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireWindow {
    /// `count:<N>` — the `N` most recent tuples.
    Count(usize),
    /// `time:<T>` — tuples younger than `T` ticks.
    Time(u64),
}

impl WireWindow {
    /// Whether the assertion matches a server's configured window.
    /// `TimeSized` is a `Time` window with a pre-allocation hint, so it
    /// matches `time:<T>` on equal duration.
    pub fn matches(self, spec: WindowSpec) -> bool {
        match (self, spec) {
            (WireWindow::Count(n), WindowSpec::Count(m)) => n == m,
            (WireWindow::Time(t), WindowSpec::Time(u)) => t == u,
            (WireWindow::Time(t), WindowSpec::TimeSized { duration, .. }) => t == duration,
            _ => false,
        }
    }
}

impl fmt::Display for WireWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireWindow::Count(n) => write!(f, "count:{n}"),
            WireWindow::Time(t) => write!(f, "time:{t}"),
        }
    }
}

/// Machine-readable error class of an `ERR` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line did not parse.
    Parse,
    /// An argument was syntactically valid but semantically rejected.
    BadArg,
    /// The query id is not registered.
    UnknownQuery,
    /// A `REGISTER … window=` assertion did not match the server window.
    WindowMismatch,
    /// The operation is not supported in this server mode.
    Unsupported,
    /// The server is overloaded and shed this request before it reached
    /// the engine; the request had no effect and can be retried.
    Busy,
    /// The engine reported an internal error.
    Internal,
}

impl ErrCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::BadArg => "bad-arg",
            ErrCode::UnknownQuery => "unknown-query",
            ErrCode::WindowMismatch => "window-mismatch",
            ErrCode::Unsupported => "unsupported",
            ErrCode::Busy => "busy",
            ErrCode::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Option<ErrCode> {
        Some(match s {
            "parse" => ErrCode::Parse,
            "bad-arg" => ErrCode::BadArg,
            "unknown-query" => ErrCode::UnknownQuery,
            "window-mismatch" => ErrCode::WindowMismatch,
            "unsupported" => ErrCode::Unsupported,
            "busy" => ErrCode::Busy,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server reply — exactly one per request, in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// `OK q<ID>` — the query id affected by a
    /// register/unregister/subscribe/unsubscribe.
    OkQuery(QueryId),
    /// `OK @<t> queued=<n>` — tick accepted; `t` is the logical time
    /// after any flush, `n` the tuples queued by this request.
    OkTick {
        /// Logical time after the request was processed.
        now: Timestamp,
        /// Number of tuples this request queued.
        queued: usize,
    },
    /// `OK SNAPSHOT q<ID> @<t> [entries..]` — a one-shot result read.
    OkSnapshot {
        /// The query read.
        query: QueryId,
        /// Logical time of the read.
        at: Timestamp,
        /// The current result, best first.
        entries: Vec<Scored>,
    },
    /// `OK STATS key=value ..` — server counters.
    OkStats(Vec<(String, String)>),
    /// `OK pong` — heartbeat answer to `PING`.
    OkPong,
    /// `OK bye` — connection closing after `QUIT`.
    OkBye,
    /// `ERR <code> <message>` — the request failed.
    Err {
        /// Machine-readable error class.
        code: ErrCode,
        /// Human-readable explanation.
        message: String,
    },
}

/// An asynchronous server push to a subscribed connection.
#[derive(Clone, Debug, PartialEq)]
pub enum Push {
    /// `DELTA q<ID> @<t> [+entry].. [-entry]..` — the query's result
    /// changed at tick `t`; apply added (`+`) and removed (`-`) entries to
    /// the mirrored list.
    Delta {
        /// Logical time of the change.
        at: Timestamp,
        /// The change itself.
        delta: ResultDelta,
    },
    /// `SNAPSHOT q<ID> @<t> [entries..]` — a full result baseline: sent
    /// right after `SUBSCRIBE` and during a backpressure resync. Replaces
    /// the mirrored list wholesale.
    Snapshot {
        /// The query whose state this is.
        query: QueryId,
        /// Logical time of the baseline.
        at: Timestamp,
        /// The full result, best first.
        entries: Vec<Scored>,
    },
    /// `RESYNC <n>` — this connection consumed pushes too slowly and its
    /// backlog was dropped; the server has enqueued `n` fresh `SNAPSHOT`
    /// pushes (one per subscription) to re-baseline it.
    ///
    /// `n` is advisory, not a framing guarantee: if the consumer is
    /// *still* too slow, an in-flight resync can itself be superseded by
    /// a further `RESYNC` before all `n` snapshots were delivered. A
    /// conforming client therefore treats every `SNAPSHOT` push as an
    /// authoritative replacement of that query's mirror (as
    /// [`apply_push`](crate::client::apply_push) does) and uses `RESYNC`
    /// only to detect that intermediate states were lost.
    Resync {
        /// Number of `SNAPSHOT` pushes enqueued behind this marker.
        count: usize,
    },
}

/// A classified server-to-client line.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerLine {
    /// A reply to a request this connection sent.
    Reply(Reply),
    /// An asynchronous push.
    Push(Push),
}

// ---------------------------------------------------------------- encoding

fn write_entries(out: &mut String, entries: &[Scored], sign: &str) {
    for e in entries {
        out.push(' ');
        out.push_str(sign);
        out.push_str(&format!("t{}:{}", e.id.0, e.score.get()));
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Register {
                k,
                weights,
                family,
                range,
                window,
            } => {
                write!(f, "REGISTER k={k} weights={}", join_floats(weights))?;
                if *family != Family::Linear {
                    write!(f, " fn={family}")?;
                }
                if let Some(r) = range {
                    let spans: Vec<String> =
                        r.iter().map(|(lo, hi)| format!("{lo}:{hi}")).collect();
                    write!(f, " range={}", spans.join(","))?;
                }
                if let Some(w) = window {
                    write!(f, " window={w}")?;
                }
                Ok(())
            }
            Request::Unregister(q) => write!(f, "UNREGISTER {q}"),
            Request::Subscribe(q) => write!(f, "SUBSCRIBE {q}"),
            Request::Unsubscribe(q) => write!(f, "UNSUBSCRIBE {q}"),
            Request::Snapshot(q) => write!(f, "SNAPSHOT {q}"),
            Request::Tick { arrivals } => {
                write!(f, "TICK")?;
                for v in arrivals {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            Request::TickAt { at, arrivals } => {
                write!(f, "TICKAT {at}")?;
                for v in arrivals {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            Request::Stats => f.write_str("STATS"),
            Request::Ping => f.write_str("PING"),
            Request::Quit => f.write_str("QUIT"),
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::OkQuery(q) => write!(f, "OK {q}"),
            Reply::OkTick { now, queued } => write!(f, "OK {now} queued={queued}"),
            Reply::OkSnapshot { query, at, entries } => {
                let mut line = format!("OK SNAPSHOT {query} {at}");
                write_entries(&mut line, entries, "");
                f.write_str(&line)
            }
            Reply::OkStats(pairs) => {
                write!(f, "OK STATS")?;
                for (k, v) in pairs {
                    write!(f, " {k}={v}")?;
                }
                Ok(())
            }
            Reply::OkPong => f.write_str("OK pong"),
            Reply::OkBye => f.write_str("OK bye"),
            Reply::Err { code, message } => write!(f, "ERR {code} {message}"),
        }
    }
}

impl fmt::Display for Push {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Push::Delta { at, delta } => {
                let mut line = format!("DELTA {} {at}", delta.query);
                write_entries(&mut line, &delta.added, "+");
                write_entries(&mut line, &delta.removed, "-");
                f.write_str(&line)
            }
            Push::Snapshot { query, at, entries } => {
                let mut line = format!("SNAPSHOT {query} {at}");
                write_entries(&mut line, entries, "");
                f.write_str(&line)
            }
            Push::Resync { count } => write!(f, "RESYNC {count}"),
        }
    }
}

impl fmt::Display for ServerLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerLine::Reply(r) => r.fmt(f),
            ServerLine::Push(p) => p.fmt(f),
        }
    }
}

fn join_floats(vals: &[f64]) -> String {
    vals.iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

// ----------------------------------------------------------------- parsing

fn parse_qid(tok: &str) -> Result<QueryId, String> {
    let digits = tok.strip_prefix('q').unwrap_or(tok);
    digits
        .parse::<u64>()
        .map(QueryId)
        .map_err(|_| format!("expected query id, got `{tok}`"))
}

fn parse_ts(tok: &str) -> Result<Timestamp, String> {
    let digits = tok.strip_prefix('@').unwrap_or(tok);
    digits
        .parse::<u64>()
        .map(Timestamp)
        .map_err(|_| format!("expected timestamp, got `{tok}`"))
}

fn parse_f64(tok: &str) -> Result<f64, String> {
    let v: f64 = tok
        .parse()
        .map_err(|_| format!("expected number, got `{tok}`"))?;
    if !v.is_finite() {
        return Err(format!("non-finite value `{tok}`"));
    }
    Ok(v)
}

fn parse_entry(tok: &str) -> Result<Scored, String> {
    let body = tok
        .strip_prefix('t')
        .ok_or_else(|| format!("expected t<id>:<score>, got `{tok}`"))?;
    let (id, score) = body
        .split_once(':')
        .ok_or_else(|| format!("expected t<id>:<score>, got `{tok}`"))?;
    let id = id
        .parse::<u64>()
        .map_err(|_| format!("bad tuple id in `{tok}`"))?;
    Ok(Scored::new(parse_f64(score)?, TupleId(id)))
}

fn parse_floats(csv: &str) -> Result<Vec<f64>, String> {
    if csv.is_empty() {
        return Err("empty number list".into());
    }
    csv.split(',').map(parse_f64).collect()
}

fn one_arg<'a>(toks: &[&'a str], verb: &str) -> Result<&'a str, String> {
    match toks {
        [arg] => Ok(arg),
        _ => Err(format!("{verb} takes exactly one argument")),
    }
}

fn parse_register(toks: &[&str]) -> Result<Request, String> {
    let mut k = None;
    let mut weights = None;
    let mut family = Family::Linear;
    let mut range = None;
    let mut window = None;
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("REGISTER arguments are key=value, got `{tok}`"))?;
        match key {
            "k" => {
                let v: usize = value.parse().map_err(|_| format!("bad k `{value}`"))?;
                k = Some(v);
            }
            "weights" => weights = Some(parse_floats(value)?),
            "fn" => {
                family = match value {
                    "linear" => Family::Linear,
                    "product" => Family::Product,
                    "quadratic" => Family::Quadratic,
                    _ => return Err(format!("unknown fn family `{value}`")),
                }
            }
            "range" => {
                let spans: Result<Vec<(f64, f64)>, String> = value
                    .split(',')
                    .map(|span| {
                        let (lo, hi) = span
                            .split_once(':')
                            .ok_or_else(|| format!("range spans are lo:hi, got `{span}`"))?;
                        Ok((parse_f64(lo)?, parse_f64(hi)?))
                    })
                    .collect();
                range = Some(spans?);
            }
            "window" => {
                let (kind, size) = value
                    .split_once(':')
                    .ok_or_else(|| format!("window is count:<N> or time:<T>, got `{value}`"))?;
                let n: u64 = size
                    .parse()
                    .map_err(|_| format!("bad window size `{size}`"))?;
                window = Some(match kind {
                    "count" => WireWindow::Count(n as usize),
                    "time" => WireWindow::Time(n),
                    _ => return Err(format!("unknown window kind `{kind}`")),
                });
            }
            _ => return Err(format!("unknown REGISTER argument `{key}`")),
        }
    }
    Ok(Request::Register {
        k: k.ok_or("REGISTER requires k=")?,
        weights: weights.ok_or("REGISTER requires weights=")?,
        family,
        range,
        window,
    })
}

/// Parses one client request line.
///
/// Returns a human-readable description of the first problem found; the
/// serving layer wraps it into an `ERR parse` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or("empty request")?;
    let rest: Vec<&str> = toks.collect();
    match verb {
        "REGISTER" => parse_register(&rest),
        "UNREGISTER" => Ok(Request::Unregister(parse_qid(one_arg(&rest, verb)?)?)),
        "SUBSCRIBE" => Ok(Request::Subscribe(parse_qid(one_arg(&rest, verb)?)?)),
        "UNSUBSCRIBE" => Ok(Request::Unsubscribe(parse_qid(one_arg(&rest, verb)?)?)),
        "SNAPSHOT" => Ok(Request::Snapshot(parse_qid(one_arg(&rest, verb)?)?)),
        "TICK" => Ok(Request::Tick {
            arrivals: rest
                .iter()
                .map(|t| parse_f64(t))
                .collect::<Result<_, _>>()?,
        }),
        "TICKAT" => {
            let (at, vals) = rest.split_first().ok_or("TICKAT requires a timestamp")?;
            Ok(Request::TickAt {
                at: parse_ts(at)?,
                arrivals: vals
                    .iter()
                    .map(|t| parse_f64(t))
                    .collect::<Result<_, _>>()?,
            })
        }
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        _ => Err(format!("unknown verb `{verb}`")),
    }
}

fn parse_signed_entries(toks: &[&str]) -> Result<(Vec<Scored>, Vec<Scored>), String> {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for tok in toks {
        if let Some(body) = tok.strip_prefix('+') {
            added.push(parse_entry(body)?);
        } else if let Some(body) = tok.strip_prefix('-') {
            removed.push(parse_entry(body)?);
        } else {
            return Err(format!("DELTA entries are +t..:.. or -t..:.., got `{tok}`"));
        }
    }
    Ok((added, removed))
}

/// Parses one server-to-client line into a reply or a push.
pub fn parse_server_line(line: &str) -> Result<ServerLine, String> {
    let mut toks = line.split_whitespace();
    let head = toks.next().ok_or("empty server line")?;
    let rest: Vec<&str> = toks.collect();
    match head {
        "OK" => parse_ok(&rest).map(ServerLine::Reply),
        "ERR" => {
            let (code, msg) = rest.split_first().ok_or("ERR requires a code")?;
            let code =
                ErrCode::from_str(code).ok_or_else(|| format!("unknown ERR code `{code}`"))?;
            Ok(ServerLine::Reply(Reply::Err {
                code,
                message: msg.join(" "),
            }))
        }
        "DELTA" => {
            let (query, rest) = rest.split_first().ok_or("DELTA requires a query id")?;
            let (at, entries) = rest.split_first().ok_or("DELTA requires a timestamp")?;
            let (added, removed) = parse_signed_entries(entries)?;
            Ok(ServerLine::Push(Push::Delta {
                at: parse_ts(at)?,
                delta: ResultDelta {
                    query: parse_qid(query)?,
                    added,
                    removed,
                },
            }))
        }
        "SNAPSHOT" => {
            let (query, at, entries) = parse_snapshot_body(&rest)?;
            Ok(ServerLine::Push(Push::Snapshot { query, at, entries }))
        }
        "RESYNC" => {
            let count: usize = one_arg(&rest, "RESYNC")?
                .parse()
                .map_err(|_| "bad RESYNC count".to_string())?;
            Ok(ServerLine::Push(Push::Resync { count }))
        }
        _ => Err(format!("unknown server line `{head}`")),
    }
}

fn parse_snapshot_body(toks: &[&str]) -> Result<(QueryId, Timestamp, Vec<Scored>), String> {
    let (query, rest) = toks.split_first().ok_or("SNAPSHOT requires a query id")?;
    let (at, entries) = rest.split_first().ok_or("SNAPSHOT requires a timestamp")?;
    let entries: Result<Vec<Scored>, String> = entries.iter().map(|t| parse_entry(t)).collect();
    Ok((parse_qid(query)?, parse_ts(at)?, entries?))
}

fn parse_ok(toks: &[&str]) -> Result<Reply, String> {
    match toks {
        ["bye"] => Ok(Reply::OkBye),
        ["pong"] => Ok(Reply::OkPong),
        ["SNAPSHOT", rest @ ..] => {
            let (query, at, entries) = parse_snapshot_body(rest)?;
            Ok(Reply::OkSnapshot { query, at, entries })
        }
        ["STATS", pairs @ ..] => {
            let pairs: Result<Vec<(String, String)>, String> = pairs
                .iter()
                .map(|tok| {
                    tok.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .ok_or_else(|| format!("STATS pairs are key=value, got `{tok}`"))
                })
                .collect();
            Ok(Reply::OkStats(pairs?))
        }
        [ts, queued] if queued.starts_with("queued=") => Ok(Reply::OkTick {
            now: parse_ts(ts)?,
            queued: queued["queued=".len()..]
                .parse()
                .map_err(|_| "bad queued count".to_string())?,
        }),
        [qid] => Ok(Reply::OkQuery(parse_qid(qid)?)),
        _ => Err(format!("unparseable OK reply `{}`", toks.join(" "))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Register {
                k: 5,
                weights: vec![1.0, -0.25],
                family: Family::Linear,
                range: None,
                window: Some(WireWindow::Count(1000)),
            },
            Request::Register {
                k: 1,
                weights: vec![0.5, 0.5, 0.125],
                family: Family::Quadratic,
                range: Some(vec![(0.0, 0.5), (0.25, 1.0), (0.0, 1.0)]),
                window: Some(WireWindow::Time(60)),
            },
            Request::Unregister(QueryId(3)),
            Request::Subscribe(QueryId(0)),
            Request::Unsubscribe(QueryId(9)),
            Request::Snapshot(QueryId(2)),
            Request::Tick {
                arrivals: vec![0.5, 0.75, 0.125, 1.0],
            },
            Request::Tick { arrivals: vec![] },
            Request::TickAt {
                at: Timestamp(17),
                arrivals: vec![0.5, -0.5],
            },
            Request::Stats,
            Request::Ping,
            Request::Quit,
        ];
        for req in cases {
            let line = req.to_string();
            assert_eq!(parse_request(&line), Ok(req.clone()), "line: {line}");
        }
    }

    #[test]
    fn server_line_round_trips() {
        let cases = vec![
            ServerLine::Reply(Reply::OkQuery(QueryId(4))),
            ServerLine::Reply(Reply::OkTick {
                now: Timestamp(12),
                queued: 8,
            }),
            ServerLine::Reply(Reply::OkSnapshot {
                query: QueryId(1),
                at: Timestamp(3),
                entries: vec![s(0.875, 10), s(-0.5, 2)],
            }),
            ServerLine::Reply(Reply::OkSnapshot {
                query: QueryId(1),
                at: Timestamp(3),
                entries: vec![],
            }),
            ServerLine::Reply(Reply::OkStats(vec![
                ("engine".into(), "SMA".into()),
                ("queries".into(), "3".into()),
            ])),
            ServerLine::Reply(Reply::OkPong),
            ServerLine::Reply(Reply::OkBye),
            ServerLine::Reply(Reply::Err {
                code: ErrCode::UnknownQuery,
                message: "unknown query q7".into(),
            }),
            ServerLine::Reply(Reply::Err {
                code: ErrCode::Busy,
                message: "server inbox full".into(),
            }),
            ServerLine::Push(Push::Delta {
                at: Timestamp(9),
                delta: ResultDelta {
                    query: QueryId(2),
                    added: vec![s(0.75, 40)],
                    removed: vec![s(0.25, 3), s(0.125, 4)],
                },
            }),
            ServerLine::Push(Push::Snapshot {
                query: QueryId(5),
                at: Timestamp(100),
                entries: vec![s(1.5, 7)],
            }),
            ServerLine::Push(Push::Resync { count: 3 }),
        ];
        for line in cases {
            let text = line.to_string();
            assert_eq!(parse_server_line(&text), Ok(line.clone()), "text: {text}");
        }
    }

    #[test]
    fn scores_round_trip_bit_exactly() {
        // Shortest-round-trip formatting: parse(to_string(x)) == x exactly.
        for &score in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -987654.321,
            0.30000000000000004,
        ] {
            let push = Push::Snapshot {
                query: QueryId(0),
                at: Timestamp(0),
                entries: vec![s(score, 1)],
            };
            let ServerLine::Push(Push::Snapshot { entries, .. }) =
                parse_server_line(&push.to_string()).unwrap()
            else {
                panic!("wrong shape");
            };
            assert_eq!(entries[0].score.get().to_bits(), score.to_bits());
        }
    }

    #[test]
    fn parse_rejections() {
        for bad in [
            "",
            "FROB",
            "REGISTER",
            "REGISTER k=3",
            "REGISTER k=x weights=1",
            "REGISTER k=3 weights=",
            "REGISTER k=3 weights=1 window=century:5",
            "REGISTER k=3 weights=1 fn=cubic",
            "SUBSCRIBE",
            "SUBSCRIBE q1 q2",
            "UNREGISTER qq",
            "TICK 0.5 nan",
            "TICKAT",
        ] {
            assert!(parse_request(bad).is_err(), "should reject `{bad}`");
        }
        for bad in [
            "",
            "OK",
            "WHAT 1",
            "ERR",
            "ERR weird msg",
            "DELTA q1 @2 t3:4",
        ] {
            assert!(parse_server_line(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn window_assertion_matching() {
        assert!(WireWindow::Count(5).matches(WindowSpec::Count(5)));
        assert!(!WireWindow::Count(5).matches(WindowSpec::Count(6)));
        assert!(!WireWindow::Count(5).matches(WindowSpec::Time(5)));
        assert!(WireWindow::Time(60).matches(WindowSpec::Time(60)));
        assert!(WireWindow::Time(60).matches(WindowSpec::TimeSized {
            duration: 60,
            capacity: 1000
        }));
    }
}
