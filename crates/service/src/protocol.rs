//! The line-oriented wire protocol.
//!
//! Everything on the wire is UTF-8 text, one message per `\n`-terminated
//! line, tokens separated by spaces. Three message classes exist:
//!
//! * **requests** (client → server): [`Request`] — `REGISTER`,
//!   `UNREGISTER`, `SUBSCRIBE`, `UNSUBSCRIBE`, `SNAPSHOT`, `TICK`,
//!   `TICKAT`, `STATS`, `PING`, `QUIT`, plus the distributed-tier verbs
//!   `SITE` (a site enrolls on its coordinator uplink), `SITEDELTA` (a
//!   site ships its local result change) and `SITETICK` (cycle marker /
//!   site-local ingestion — see [`Request::SiteCycle`] and
//!   [`Request::SiteIngest`]);
//! * **replies** (server → client, exactly one per request, in request
//!   order): [`Reply`] — lines starting `OK` or `ERR`;
//! * **pushes** (server → subscriber, asynchronous): [`Push`] — lines
//!   starting `DELTA`, `SNAPSHOT`, `RESYNC`, `ADOPT` (coordinator →
//!   site: install/retire a query) or `DEGRADED` (coordinator →
//!   subscriber: which sites a query is currently missing).
//!
//! Replies and pushes share one ordered stream per connection, so a client
//! that issues a request is guaranteed to see every push enqueued before
//! the reply first — [`parse_server_line`] classifies a received line into
//! [`ServerLine::Reply`] vs [`ServerLine::Push`] unambiguously by its first
//! token.
//!
//! Scored entries are encoded `t<id>:<score>` with the score printed by
//! Rust's shortest-round-trip `f64` formatter, so `encode → parse` is
//! bit-exact and a subscriber can reconstruct results oracle-identically.
//! That determinism is also what makes the fan-out path's encode-once
//! sharing sound: each `DELTA` is serialized exactly once per cycle and
//! the same bytes are delivered to every subscriber of the query, so no
//! two subscribers can ever observe differently-rendered scores.
//! The full verb-by-verb grammar is documented in the README's *Serving*
//! section; the round-trip property is pinned by this module's tests.

use std::fmt;

use tkm_common::{QueryId, Scored, Timestamp, TupleId};
use tkm_core::ResultDelta;
use tkm_window::WindowSpec;

/// Scoring-function family selector of a `REGISTER` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `Σ wᵢ·xᵢ` (the default).
    Linear,
    /// `Π (wᵢ + xᵢ)`.
    Product,
    /// `Σ wᵢ·xᵢ²`.
    Quadratic,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Family::Linear => "linear",
            Family::Product => "product",
            Family::Quadratic => "quadratic",
        })
    }
}

/// The query-shape arguments shared by `REGISTER` requests and `ADOPT`
/// pushes: `k=<K> weights=<w,..> [fn=<family>] [range=<lo:hi,..>]`.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// Result cardinality.
    pub k: usize,
    /// Per-dimension function parameters (weights/offsets).
    pub weights: Vec<f64>,
    /// Scoring-function family.
    pub family: Family,
    /// Optional per-dimension `(lo, hi)` constraint region (§7).
    pub range: Option<Vec<(f64, f64)>>,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `REGISTER k=<K> weights=<w,..> [fn=<family>] [range=<lo:hi,..>]
    /// [window=count:<N>|time:<T>]` — registers a continuous query.
    ///
    /// The optional `window` argument is a deployment assertion: the
    /// server rejects the registration unless it matches the window it
    /// was started with, so a client cannot silently monitor a different
    /// window than it believes it does.
    Register {
        /// The query shape.
        spec: QuerySpec,
        /// Optional window assertion.
        window: Option<WireWindow>,
    },
    /// `UNREGISTER q<ID>` — terminates a query.
    Unregister(QueryId),
    /// `SUBSCRIBE q<ID>` — starts streaming the query's result changes to
    /// this connection; a baseline `SNAPSHOT` push is enqueued immediately
    /// before the `OK` reply.
    Subscribe(QueryId),
    /// `UNSUBSCRIBE q<ID>` — stops the stream (idempotent).
    Unsubscribe(QueryId),
    /// `SNAPSHOT q<ID>` — one-shot read of the current result.
    Snapshot(QueryId),
    /// `TICK [v1 v2 ..]` — queues arrivals (one tuple per `dims` values)
    /// for the next processing cycle. Under manual ticking the cycle runs
    /// immediately; under interval ticking all arrivals queued during the
    /// interval are batched into one cycle.
    Tick {
        /// Flat coordinate buffer of the queued arrivals.
        arrivals: Vec<f64>,
    },
    /// `TICKAT @<ts> [v1 v2 ..]` — like `TICK` with an explicit
    /// (non-decreasing) logical timestamp. Manual ticking only.
    TickAt {
        /// Logical timestamp of the cycle.
        at: Timestamp,
        /// Flat coordinate buffer of the queued arrivals.
        arrivals: Vec<f64>,
    },
    /// `STATS` — server counters as `key=value` pairs.
    Stats,
    /// `PING` — heartbeat; the server replies `OK pong`. Keeps a
    /// connection that is silent in both directions alive under the
    /// server's idle deadline.
    Ping,
    /// `QUIT` — server replies `OK bye` and closes the connection.
    Quit,
    /// `SITE <id> dims=<d>` — a site enrolls (or re-enrolls after a
    /// failure) on its uplink connection to a coordinator. The
    /// coordinator replies `OK s<id>`, preceded by one `ADOPT` push per
    /// currently registered query, so a site that drains pushes until
    /// the reply holds the full query set synchronously.
    SiteHello {
        /// The site's stable identifier (survives reconnects).
        site: u64,
        /// The site engine's dimensionality; must match the coordinator.
        dims: usize,
    },
    /// `SITEDELTA q<ID> @<ts> [+entry].. [-entry]..` — a site ships the
    /// change of its *local* top-k for one query at local cycle `ts`.
    /// Entry tuple ids are global (the site translates before shipping),
    /// so the coordinator can merge pools from different sites with the
    /// exact global tie-break order.
    SiteDelta {
        /// The site's local cycle timestamp.
        at: Timestamp,
        /// The local result change, in global tuple ids.
        delta: ResultDelta,
    },
    /// `SITETICK @<ts> base=<gid> [v1 v2 ..]` — drives one local cycle
    /// of a *site-role* server: the arrivals (one tuple per `dims`
    /// values) carry the global tuple ids `base`, `base+1`, … in order.
    /// The site runs the cycle at `ts` and ships any `SITEDELTA`s plus a
    /// bare `SITETICK @<ts>` marker up its coordinator uplink.
    SiteIngest {
        /// Logical timestamp of the cycle (global clock).
        at: Timestamp,
        /// Global tuple id of the first arrival in this batch.
        base: u64,
        /// Flat coordinate buffer of the batch.
        arrivals: Vec<f64>,
    },
    /// `SITETICK @<ts>` — the cycle marker a site sends its coordinator
    /// *after* the cycle's `SITEDELTA`s: "my local engine is now at
    /// `ts`". The coordinator advances the site's watermark; when the
    /// minimum watermark over live sites advances, it merges and
    /// publishes. Doubles as the site's lease heartbeat.
    SiteCycle {
        /// The site's local cycle timestamp.
        at: Timestamp,
    },
}

impl Request {
    /// The wire verb of this request — the first token of its encoding.
    /// Used by the overload-shedding metrics to attribute `ERR busy`
    /// sheds per verb.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Register { .. } => "REGISTER",
            Request::Unregister(_) => "UNREGISTER",
            Request::Subscribe(_) => "SUBSCRIBE",
            Request::Unsubscribe(_) => "UNSUBSCRIBE",
            Request::Snapshot(_) => "SNAPSHOT",
            Request::Tick { .. } => "TICK",
            Request::TickAt { .. } => "TICKAT",
            Request::Stats => "STATS",
            Request::Ping => "PING",
            Request::Quit => "QUIT",
            Request::SiteHello { .. } => "SITE",
            Request::SiteDelta { .. } => "SITEDELTA",
            Request::SiteIngest { .. } | Request::SiteCycle { .. } => "SITETICK",
        }
    }
}

/// The window shape carried by a `REGISTER … window=` assertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireWindow {
    /// `count:<N>` — the `N` most recent tuples.
    Count(usize),
    /// `time:<T>` — tuples younger than `T` ticks.
    Time(u64),
}

impl WireWindow {
    /// Whether the assertion matches a server's configured window.
    /// `TimeSized` is a `Time` window with a pre-allocation hint, so it
    /// matches `time:<T>` on equal duration.
    pub fn matches(self, spec: WindowSpec) -> bool {
        match (self, spec) {
            (WireWindow::Count(n), WindowSpec::Count(m)) => n == m,
            (WireWindow::Time(t), WindowSpec::Time(u)) => t == u,
            (WireWindow::Time(t), WindowSpec::TimeSized { duration, .. }) => t == duration,
            _ => false,
        }
    }
}

impl fmt::Display for WireWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireWindow::Count(n) => write!(f, "count:{n}"),
            WireWindow::Time(t) => write!(f, "time:{t}"),
        }
    }
}

/// Machine-readable error class of an `ERR` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line did not parse.
    Parse,
    /// An argument was syntactically valid but semantically rejected.
    BadArg,
    /// The query id is not registered.
    UnknownQuery,
    /// A `REGISTER … window=` assertion did not match the server window.
    WindowMismatch,
    /// The operation is not supported in this server mode.
    Unsupported,
    /// The server is overloaded and shed this request before it reached
    /// the engine; the request had no effect and can be retried.
    Busy,
    /// The engine reported an internal error.
    Internal,
}

impl ErrCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrCode::Parse => "parse",
            ErrCode::BadArg => "bad-arg",
            ErrCode::UnknownQuery => "unknown-query",
            ErrCode::WindowMismatch => "window-mismatch",
            ErrCode::Unsupported => "unsupported",
            ErrCode::Busy => "busy",
            ErrCode::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Option<ErrCode> {
        Some(match s {
            "parse" => ErrCode::Parse,
            "bad-arg" => ErrCode::BadArg,
            "unknown-query" => ErrCode::UnknownQuery,
            "window-mismatch" => ErrCode::WindowMismatch,
            "unsupported" => ErrCode::Unsupported,
            "busy" => ErrCode::Busy,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server reply — exactly one per request, in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// `OK q<ID>` — the query id affected by a
    /// register/unregister/subscribe/unsubscribe.
    OkQuery(QueryId),
    /// `OK @<t> queued=<n>` — tick accepted; `t` is the logical time
    /// after any flush, `n` the tuples queued by this request.
    OkTick {
        /// Logical time after the request was processed.
        now: Timestamp,
        /// Number of tuples this request queued.
        queued: usize,
    },
    /// `OK SNAPSHOT q<ID> @<t> [entries..]` — a one-shot result read.
    OkSnapshot {
        /// The query read.
        query: QueryId,
        /// Logical time of the read.
        at: Timestamp,
        /// The current result, best first.
        entries: Vec<Scored>,
    },
    /// `OK STATS key=value ..` — server counters.
    OkStats(Vec<(String, String)>),
    /// `OK pong` — heartbeat answer to `PING`.
    OkPong,
    /// `OK bye` — connection closing after `QUIT`.
    OkBye,
    /// `OK s<ID>` — a coordinator accepted a `SITE` enrollment.
    OkSite(u64),
    /// `ERR <code> <message>` — the request failed.
    Err {
        /// Machine-readable error class.
        code: ErrCode,
        /// Human-readable explanation.
        message: String,
    },
}

/// An asynchronous server push to a subscribed connection.
#[derive(Clone, Debug, PartialEq)]
pub enum Push {
    /// `DELTA q<ID> @<t> [+entry].. [-entry]..` — the query's result
    /// changed at tick `t`; apply added (`+`) and removed (`-`) entries to
    /// the mirrored list.
    Delta {
        /// Logical time of the change.
        at: Timestamp,
        /// The change itself.
        delta: ResultDelta,
    },
    /// `SNAPSHOT q<ID> @<t> [entries..]` — a full result baseline: sent
    /// right after `SUBSCRIBE` and during a backpressure resync. Replaces
    /// the mirrored list wholesale.
    Snapshot {
        /// The query whose state this is.
        query: QueryId,
        /// Logical time of the baseline.
        at: Timestamp,
        /// The full result, best first.
        entries: Vec<Scored>,
    },
    /// `RESYNC <n>` — this connection consumed pushes too slowly and its
    /// backlog was dropped; the server has enqueued `n` fresh `SNAPSHOT`
    /// pushes (one per subscription) to re-baseline it.
    ///
    /// `n` is advisory, not a framing guarantee: if the consumer is
    /// *still* too slow, an in-flight resync can itself be superseded by
    /// a further `RESYNC` before all `n` snapshots were delivered. A
    /// conforming client therefore treats every `SNAPSHOT` push as an
    /// authoritative replacement of that query's mirror (as
    /// [`apply_push`](crate::client::apply_push) does) and uses `RESYNC`
    /// only to detect that intermediate states were lost.
    Resync {
        /// Number of `SNAPSHOT` pushes enqueued behind this marker.
        count: usize,
    },
    /// `ADOPT q<ID> (retire | k=<K> weights=<..> [fn=..] [range=..])` —
    /// coordinator → site: install (or retire, when `spec` is `None`)
    /// the query under the coordinator's *global* query id. Pushed to
    /// every enrolled site when a query is registered/unregistered, and
    /// replayed in full ahead of the `OK s<id>` reply when a site
    /// (re-)enrolls.
    Adopt {
        /// The coordinator's id for the query.
        query: QueryId,
        /// The query shape, or `None` to retire it.
        spec: Option<QuerySpec>,
    },
    /// `DEGRADED q<ID> [s<1> s<2> ..]` — coordinator → subscriber: the
    /// query's published result is currently merged *without* the listed
    /// sites (they missed their lease or dropped their uplink). An empty
    /// site list marks the query healed: every enrolled site contributes
    /// again. Mirrors are unaffected — this is a data-quality marker,
    /// not a result change.
    Degraded {
        /// The affected query.
        query: QueryId,
        /// Sites currently missing from the merge (ascending, empty =
        /// healed).
        sites: Vec<u64>,
    },
}

/// A classified server-to-client line.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerLine {
    /// A reply to a request this connection sent.
    Reply(Reply),
    /// An asynchronous push.
    Push(Push),
}

// ---------------------------------------------------------------- encoding

fn write_entries(out: &mut String, entries: &[Scored], sign: &str) {
    for e in entries {
        out.push(' ');
        out.push_str(sign);
        out.push_str(&format!("t{}:{}", e.id.0, e.score.get()));
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={} weights={}", self.k, join_floats(&self.weights))?;
        if self.family != Family::Linear {
            write!(f, " fn={}", self.family)?;
        }
        if let Some(r) = &self.range {
            let spans: Vec<String> = r.iter().map(|(lo, hi)| format!("{lo}:{hi}")).collect();
            write!(f, " range={}", spans.join(","))?;
        }
        Ok(())
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Register { spec, window } => {
                write!(f, "REGISTER {spec}")?;
                if let Some(w) = window {
                    write!(f, " window={w}")?;
                }
                Ok(())
            }
            Request::Unregister(q) => write!(f, "UNREGISTER {q}"),
            Request::Subscribe(q) => write!(f, "SUBSCRIBE {q}"),
            Request::Unsubscribe(q) => write!(f, "UNSUBSCRIBE {q}"),
            Request::Snapshot(q) => write!(f, "SNAPSHOT {q}"),
            Request::Tick { arrivals } => {
                write!(f, "TICK")?;
                for v in arrivals {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            Request::TickAt { at, arrivals } => {
                write!(f, "TICKAT {at}")?;
                for v in arrivals {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            Request::Stats => f.write_str("STATS"),
            Request::Ping => f.write_str("PING"),
            Request::Quit => f.write_str("QUIT"),
            Request::SiteHello { site, dims } => write!(f, "SITE {site} dims={dims}"),
            Request::SiteDelta { at, delta } => {
                let mut line = format!("SITEDELTA {} {at}", delta.query);
                write_entries(&mut line, &delta.added, "+");
                write_entries(&mut line, &delta.removed, "-");
                f.write_str(&line)
            }
            Request::SiteIngest { at, base, arrivals } => {
                write!(f, "SITETICK {at} base={base}")?;
                for v in arrivals {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            Request::SiteCycle { at } => write!(f, "SITETICK {at}"),
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reply::OkQuery(q) => write!(f, "OK {q}"),
            Reply::OkTick { now, queued } => write!(f, "OK {now} queued={queued}"),
            Reply::OkSnapshot { query, at, entries } => {
                let mut line = format!("OK SNAPSHOT {query} {at}");
                write_entries(&mut line, entries, "");
                f.write_str(&line)
            }
            Reply::OkStats(pairs) => {
                write!(f, "OK STATS")?;
                for (k, v) in pairs {
                    write!(f, " {k}={v}")?;
                }
                Ok(())
            }
            Reply::OkPong => f.write_str("OK pong"),
            Reply::OkBye => f.write_str("OK bye"),
            Reply::OkSite(id) => write!(f, "OK s{id}"),
            Reply::Err { code, message } => write!(f, "ERR {code} {message}"),
        }
    }
}

impl fmt::Display for Push {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Push::Delta { at, delta } => {
                let mut line = format!("DELTA {} {at}", delta.query);
                write_entries(&mut line, &delta.added, "+");
                write_entries(&mut line, &delta.removed, "-");
                f.write_str(&line)
            }
            Push::Snapshot { query, at, entries } => {
                let mut line = format!("SNAPSHOT {query} {at}");
                write_entries(&mut line, entries, "");
                f.write_str(&line)
            }
            Push::Resync { count } => write!(f, "RESYNC {count}"),
            Push::Adopt { query, spec } => match spec {
                Some(spec) => write!(f, "ADOPT {query} {spec}"),
                None => write!(f, "ADOPT {query} retire"),
            },
            Push::Degraded { query, sites } => {
                write!(f, "DEGRADED {query}")?;
                for sid in sites {
                    write!(f, " s{sid}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ServerLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerLine::Reply(r) => r.fmt(f),
            ServerLine::Push(p) => p.fmt(f),
        }
    }
}

fn join_floats(vals: &[f64]) -> String {
    vals.iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

// ----------------------------------------------------------------- parsing

fn parse_qid(tok: &str) -> Result<QueryId, String> {
    let digits = tok.strip_prefix('q').unwrap_or(tok);
    digits
        .parse::<u64>()
        .map(QueryId)
        .map_err(|_| format!("expected query id, got `{tok}`"))
}

fn parse_ts(tok: &str) -> Result<Timestamp, String> {
    let digits = tok.strip_prefix('@').unwrap_or(tok);
    digits
        .parse::<u64>()
        .map(Timestamp)
        .map_err(|_| format!("expected timestamp, got `{tok}`"))
}

fn parse_f64(tok: &str) -> Result<f64, String> {
    let v: f64 = tok
        .parse()
        .map_err(|_| format!("expected number, got `{tok}`"))?;
    if !v.is_finite() {
        return Err(format!("non-finite value `{tok}`"));
    }
    Ok(v)
}

fn parse_entry(tok: &str) -> Result<Scored, String> {
    let body = tok
        .strip_prefix('t')
        .ok_or_else(|| format!("expected t<id>:<score>, got `{tok}`"))?;
    let (id, score) = body
        .split_once(':')
        .ok_or_else(|| format!("expected t<id>:<score>, got `{tok}`"))?;
    let id = id
        .parse::<u64>()
        .map_err(|_| format!("bad tuple id in `{tok}`"))?;
    Ok(Scored::new(parse_f64(score)?, TupleId(id)))
}

fn parse_floats(csv: &str) -> Result<Vec<f64>, String> {
    if csv.is_empty() {
        return Err("empty number list".into());
    }
    csv.split(',').map(parse_f64).collect()
}

fn one_arg<'a>(toks: &[&'a str], verb: &str) -> Result<&'a str, String> {
    match toks {
        [arg] => Ok(arg),
        _ => Err(format!("{verb} takes exactly one argument")),
    }
}

/// Parses the shared `k= weights= [fn=] [range=]` query-shape grammar of
/// `REGISTER` (which additionally allows `window=`) and `ADOPT` (which
/// rejects it: the window is the coordinator's, not per-query).
fn parse_query_args(
    toks: &[&str],
    verb: &str,
    allow_window: bool,
) -> Result<(QuerySpec, Option<WireWindow>), String> {
    let mut k = None;
    let mut weights = None;
    let mut family = Family::Linear;
    let mut range = None;
    let mut window = None;
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("{verb} arguments are key=value, got `{tok}`"))?;
        match key {
            "k" => {
                let v: usize = value.parse().map_err(|_| format!("bad k `{value}`"))?;
                k = Some(v);
            }
            "weights" => weights = Some(parse_floats(value)?),
            "fn" => {
                family = match value {
                    "linear" => Family::Linear,
                    "product" => Family::Product,
                    "quadratic" => Family::Quadratic,
                    _ => return Err(format!("unknown fn family `{value}`")),
                }
            }
            "range" => {
                let spans: Result<Vec<(f64, f64)>, String> = value
                    .split(',')
                    .map(|span| {
                        let (lo, hi) = span
                            .split_once(':')
                            .ok_or_else(|| format!("range spans are lo:hi, got `{span}`"))?;
                        Ok((parse_f64(lo)?, parse_f64(hi)?))
                    })
                    .collect();
                range = Some(spans?);
            }
            "window" if allow_window => {
                let (kind, size) = value
                    .split_once(':')
                    .ok_or_else(|| format!("window is count:<N> or time:<T>, got `{value}`"))?;
                let n: u64 = size
                    .parse()
                    .map_err(|_| format!("bad window size `{size}`"))?;
                window = Some(match kind {
                    "count" => WireWindow::Count(n as usize),
                    "time" => WireWindow::Time(n),
                    _ => return Err(format!("unknown window kind `{kind}`")),
                });
            }
            _ => return Err(format!("unknown {verb} argument `{key}`")),
        }
    }
    let spec = QuerySpec {
        k: k.ok_or_else(|| format!("{verb} requires k="))?,
        weights: weights.ok_or_else(|| format!("{verb} requires weights="))?,
        family,
        range,
    };
    Ok((spec, window))
}

/// Parses one client request line.
///
/// Returns a human-readable description of the first problem found; the
/// serving layer wraps it into an `ERR parse` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or("empty request")?;
    let rest: Vec<&str> = toks.collect();
    match verb {
        "REGISTER" => {
            let (spec, window) = parse_query_args(&rest, "REGISTER", true)?;
            Ok(Request::Register { spec, window })
        }
        "UNREGISTER" => Ok(Request::Unregister(parse_qid(one_arg(&rest, verb)?)?)),
        "SUBSCRIBE" => Ok(Request::Subscribe(parse_qid(one_arg(&rest, verb)?)?)),
        "UNSUBSCRIBE" => Ok(Request::Unsubscribe(parse_qid(one_arg(&rest, verb)?)?)),
        "SNAPSHOT" => Ok(Request::Snapshot(parse_qid(one_arg(&rest, verb)?)?)),
        "TICK" => Ok(Request::Tick {
            arrivals: rest
                .iter()
                .map(|t| parse_f64(t))
                .collect::<Result<_, _>>()?,
        }),
        "TICKAT" => {
            let (at, vals) = rest.split_first().ok_or("TICKAT requires a timestamp")?;
            Ok(Request::TickAt {
                at: parse_ts(at)?,
                arrivals: vals
                    .iter()
                    .map(|t| parse_f64(t))
                    .collect::<Result<_, _>>()?,
            })
        }
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "SITE" => {
            let (site, args) = rest.split_first().ok_or("SITE requires a site id")?;
            let site = site
                .parse::<u64>()
                .map_err(|_| format!("expected site id, got `{site}`"))?;
            let dims_arg = one_arg(args, "SITE <id>")?;
            let dims = dims_arg
                .strip_prefix("dims=")
                .and_then(|d| d.parse::<usize>().ok())
                .ok_or_else(|| format!("expected dims=<d>, got `{dims_arg}`"))?;
            if dims == 0 {
                return Err("SITE dims must be positive".into());
            }
            Ok(Request::SiteHello { site, dims })
        }
        "SITEDELTA" => {
            let (query, rest) = rest.split_first().ok_or("SITEDELTA requires a query id")?;
            let (at, entries) = rest.split_first().ok_or("SITEDELTA requires a timestamp")?;
            let (added, removed) = parse_signed_entries(entries)?;
            Ok(Request::SiteDelta {
                at: parse_ts(at)?,
                delta: ResultDelta {
                    query: parse_qid(query)?,
                    added,
                    removed,
                },
            })
        }
        "SITETICK" => {
            let (at, rest) = rest.split_first().ok_or("SITETICK requires a timestamp")?;
            let at = parse_ts(at)?;
            match rest.split_first() {
                None => Ok(Request::SiteCycle { at }),
                Some((first, vals)) => {
                    let base = first
                        .strip_prefix("base=")
                        .and_then(|d| d.parse::<u64>().ok())
                        .ok_or_else(|| format!("expected base=<gid>, got `{first}`"))?;
                    Ok(Request::SiteIngest {
                        at,
                        base,
                        arrivals: vals
                            .iter()
                            .map(|t| parse_f64(t))
                            .collect::<Result<_, _>>()?,
                    })
                }
            }
        }
        _ => Err(format!("unknown verb `{verb}`")),
    }
}

fn parse_signed_entries(toks: &[&str]) -> Result<(Vec<Scored>, Vec<Scored>), String> {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for tok in toks {
        if let Some(body) = tok.strip_prefix('+') {
            added.push(parse_entry(body)?);
        } else if let Some(body) = tok.strip_prefix('-') {
            removed.push(parse_entry(body)?);
        } else {
            return Err(format!("DELTA entries are +t..:.. or -t..:.., got `{tok}`"));
        }
    }
    Ok((added, removed))
}

/// Parses one server-to-client line into a reply or a push.
pub fn parse_server_line(line: &str) -> Result<ServerLine, String> {
    let mut toks = line.split_whitespace();
    let head = toks.next().ok_or("empty server line")?;
    let rest: Vec<&str> = toks.collect();
    match head {
        "OK" => parse_ok(&rest).map(ServerLine::Reply),
        "ERR" => {
            let (code, msg) = rest.split_first().ok_or("ERR requires a code")?;
            let code =
                ErrCode::from_str(code).ok_or_else(|| format!("unknown ERR code `{code}`"))?;
            Ok(ServerLine::Reply(Reply::Err {
                code,
                message: msg.join(" "),
            }))
        }
        "DELTA" => {
            let (query, rest) = rest.split_first().ok_or("DELTA requires a query id")?;
            let (at, entries) = rest.split_first().ok_or("DELTA requires a timestamp")?;
            let (added, removed) = parse_signed_entries(entries)?;
            Ok(ServerLine::Push(Push::Delta {
                at: parse_ts(at)?,
                delta: ResultDelta {
                    query: parse_qid(query)?,
                    added,
                    removed,
                },
            }))
        }
        "SNAPSHOT" => {
            let (query, at, entries) = parse_snapshot_body(&rest)?;
            Ok(ServerLine::Push(Push::Snapshot { query, at, entries }))
        }
        "RESYNC" => {
            let count: usize = one_arg(&rest, "RESYNC")?
                .parse()
                .map_err(|_| "bad RESYNC count".to_string())?;
            Ok(ServerLine::Push(Push::Resync { count }))
        }
        "ADOPT" => {
            let (query, args) = rest.split_first().ok_or("ADOPT requires a query id")?;
            let query = parse_qid(query)?;
            let spec = match args {
                ["retire"] => None,
                args => Some(parse_query_args(args, "ADOPT", false)?.0),
            };
            Ok(ServerLine::Push(Push::Adopt { query, spec }))
        }
        "DEGRADED" => {
            let (query, rest) = rest.split_first().ok_or("DEGRADED requires a query id")?;
            let sites: Result<Vec<u64>, String> = rest.iter().map(|t| parse_site_id(t)).collect();
            Ok(ServerLine::Push(Push::Degraded {
                query: parse_qid(query)?,
                sites: sites?,
            }))
        }
        _ => Err(format!("unknown server line `{head}`")),
    }
}

fn parse_site_id(tok: &str) -> Result<u64, String> {
    tok.strip_prefix('s')
        .and_then(|d| d.parse::<u64>().ok())
        .ok_or_else(|| format!("expected site id s<N>, got `{tok}`"))
}

fn parse_snapshot_body(toks: &[&str]) -> Result<(QueryId, Timestamp, Vec<Scored>), String> {
    let (query, rest) = toks.split_first().ok_or("SNAPSHOT requires a query id")?;
    let (at, entries) = rest.split_first().ok_or("SNAPSHOT requires a timestamp")?;
    let entries: Result<Vec<Scored>, String> = entries.iter().map(|t| parse_entry(t)).collect();
    Ok((parse_qid(query)?, parse_ts(at)?, entries?))
}

fn parse_ok(toks: &[&str]) -> Result<Reply, String> {
    match toks {
        ["bye"] => Ok(Reply::OkBye),
        ["pong"] => Ok(Reply::OkPong),
        ["SNAPSHOT", rest @ ..] => {
            let (query, at, entries) = parse_snapshot_body(rest)?;
            Ok(Reply::OkSnapshot { query, at, entries })
        }
        ["STATS", pairs @ ..] => {
            let pairs: Result<Vec<(String, String)>, String> = pairs
                .iter()
                .map(|tok| {
                    tok.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .ok_or_else(|| format!("STATS pairs are key=value, got `{tok}`"))
                })
                .collect();
            Ok(Reply::OkStats(pairs?))
        }
        [ts, queued] if queued.starts_with("queued=") => Ok(Reply::OkTick {
            now: parse_ts(ts)?,
            queued: queued["queued=".len()..]
                .parse()
                .map_err(|_| "bad queued count".to_string())?,
        }),
        [tok] => match parse_site_id(tok) {
            Ok(id) => Ok(Reply::OkSite(id)),
            Err(_) => Ok(Reply::OkQuery(parse_qid(tok)?)),
        },
        _ => Err(format!("unparseable OK reply `{}`", toks.join(" "))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Register {
                spec: QuerySpec {
                    k: 5,
                    weights: vec![1.0, -0.25],
                    family: Family::Linear,
                    range: None,
                },
                window: Some(WireWindow::Count(1000)),
            },
            Request::Register {
                spec: QuerySpec {
                    k: 1,
                    weights: vec![0.5, 0.5, 0.125],
                    family: Family::Quadratic,
                    range: Some(vec![(0.0, 0.5), (0.25, 1.0), (0.0, 1.0)]),
                },
                window: Some(WireWindow::Time(60)),
            },
            Request::Unregister(QueryId(3)),
            Request::Subscribe(QueryId(0)),
            Request::Unsubscribe(QueryId(9)),
            Request::Snapshot(QueryId(2)),
            Request::Tick {
                arrivals: vec![0.5, 0.75, 0.125, 1.0],
            },
            Request::Tick { arrivals: vec![] },
            Request::TickAt {
                at: Timestamp(17),
                arrivals: vec![0.5, -0.5],
            },
            Request::Stats,
            Request::Ping,
            Request::Quit,
            Request::SiteHello { site: 2, dims: 3 },
            Request::SiteDelta {
                at: Timestamp(41),
                delta: ResultDelta {
                    query: QueryId(6),
                    added: vec![s(0.75, 1_000_000)],
                    removed: vec![s(0.5, 3)],
                },
            },
            Request::SiteDelta {
                at: Timestamp(0),
                delta: ResultDelta {
                    query: QueryId(0),
                    added: vec![],
                    removed: vec![],
                },
            },
            Request::SiteIngest {
                at: Timestamp(7),
                base: 9_000,
                arrivals: vec![0.25, 0.5, 0.75, 1.0],
            },
            Request::SiteIngest {
                at: Timestamp(8),
                base: 0,
                arrivals: vec![],
            },
            Request::SiteCycle { at: Timestamp(12) },
        ];
        for req in cases {
            let line = req.to_string();
            assert_eq!(parse_request(&line), Ok(req.clone()), "line: {line}");
        }
    }

    #[test]
    fn server_line_round_trips() {
        let cases = vec![
            ServerLine::Reply(Reply::OkQuery(QueryId(4))),
            ServerLine::Reply(Reply::OkTick {
                now: Timestamp(12),
                queued: 8,
            }),
            ServerLine::Reply(Reply::OkSnapshot {
                query: QueryId(1),
                at: Timestamp(3),
                entries: vec![s(0.875, 10), s(-0.5, 2)],
            }),
            ServerLine::Reply(Reply::OkSnapshot {
                query: QueryId(1),
                at: Timestamp(3),
                entries: vec![],
            }),
            ServerLine::Reply(Reply::OkStats(vec![
                ("engine".into(), "SMA".into()),
                ("queries".into(), "3".into()),
            ])),
            ServerLine::Reply(Reply::OkPong),
            ServerLine::Reply(Reply::OkBye),
            ServerLine::Reply(Reply::Err {
                code: ErrCode::UnknownQuery,
                message: "unknown query q7".into(),
            }),
            ServerLine::Reply(Reply::Err {
                code: ErrCode::Busy,
                message: "server inbox full".into(),
            }),
            ServerLine::Push(Push::Delta {
                at: Timestamp(9),
                delta: ResultDelta {
                    query: QueryId(2),
                    added: vec![s(0.75, 40)],
                    removed: vec![s(0.25, 3), s(0.125, 4)],
                },
            }),
            ServerLine::Push(Push::Snapshot {
                query: QueryId(5),
                at: Timestamp(100),
                entries: vec![s(1.5, 7)],
            }),
            ServerLine::Push(Push::Resync { count: 3 }),
            ServerLine::Reply(Reply::OkSite(7)),
            ServerLine::Push(Push::Adopt {
                query: QueryId(3),
                spec: Some(QuerySpec {
                    k: 4,
                    weights: vec![0.5, 0.25],
                    family: Family::Product,
                    range: Some(vec![(0.0, 1.0), (-0.5, 0.5)]),
                }),
            }),
            ServerLine::Push(Push::Adopt {
                query: QueryId(9),
                spec: None,
            }),
            ServerLine::Push(Push::Degraded {
                query: QueryId(2),
                sites: vec![0, 4],
            }),
            ServerLine::Push(Push::Degraded {
                query: QueryId(2),
                sites: vec![],
            }),
        ];
        for line in cases {
            let text = line.to_string();
            assert_eq!(parse_server_line(&text), Ok(line.clone()), "text: {text}");
        }
    }

    #[test]
    fn scores_round_trip_bit_exactly() {
        // Shortest-round-trip formatting: parse(to_string(x)) == x exactly.
        for &score in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -987654.321,
            0.30000000000000004,
        ] {
            let push = Push::Snapshot {
                query: QueryId(0),
                at: Timestamp(0),
                entries: vec![s(score, 1)],
            };
            let ServerLine::Push(Push::Snapshot { entries, .. }) =
                parse_server_line(&push.to_string()).unwrap()
            else {
                panic!("wrong shape");
            };
            assert_eq!(entries[0].score.get().to_bits(), score.to_bits());
        }
    }

    #[test]
    fn parse_rejections() {
        for bad in [
            "",
            "FROB",
            "REGISTER",
            "REGISTER k=3",
            "REGISTER k=x weights=1",
            "REGISTER k=3 weights=",
            "REGISTER k=3 weights=1 window=century:5",
            "REGISTER k=3 weights=1 fn=cubic",
            "SUBSCRIBE",
            "SUBSCRIBE q1 q2",
            "UNREGISTER qq",
            "TICK 0.5 nan",
            "TICKAT",
            "SITE",
            "SITE 3",
            "SITE x dims=2",
            "SITE 3 dims=0",
            "SITE 3 dims=two",
            "SITE 3 dims=2 extra",
            "SITEDELTA",
            "SITEDELTA q1",
            "SITEDELTA q1 @2 t3:4",
            "SITETICK",
            "SITETICK @3 0.5",
            "SITETICK @3 base=x 0.5",
            "SITETICK @3 base=7 nan",
        ] {
            assert!(parse_request(bad).is_err(), "should reject `{bad}`");
        }
        for bad in [
            "",
            "OK",
            "WHAT 1",
            "ERR",
            "ERR weird msg",
            "DELTA q1 @2 t3:4",
            "ADOPT",
            "ADOPT q1",
            "ADOPT q1 retire extra",
            "ADOPT q1 k=3 weights=1 window=count:5",
            "DEGRADED",
            "DEGRADED q1 7",
            "DEGRADED q1 sX",
        ] {
            assert!(parse_server_line(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn window_assertion_matching() {
        assert!(WireWindow::Count(5).matches(WindowSpec::Count(5)));
        assert!(!WireWindow::Count(5).matches(WindowSpec::Count(6)));
        assert!(!WireWindow::Count(5).matches(WindowSpec::Time(5)));
        assert!(WireWindow::Time(60).matches(WindowSpec::Time(60)));
        assert!(WireWindow::Time(60).matches(WindowSpec::TimeSized {
            duration: 60,
            capacity: 1000
        }));
    }
}
