//! Deterministic fault injection over the session transport.
//!
//! The serving layer's sessions read and write through the [`Transport`]
//! trait-object seam instead of assuming [`TcpStream`], so a test or the
//! chaos benchmark can interpose a [`FaultyStream`]: a wrapper that
//! injects, from a seeded schedule, read/write stalls, abrupt resets,
//! partial writes, byte garbling, and mid-line truncation.
//!
//! Faults are scripted by a [`FaultPlan`] — a list of [`FaultRule`]s keyed
//! on the connection's I/O-operation counter (the only clock visible at
//! the transport layer), each firing once or periodically. Plans are built
//! programmatically or parsed from a compact DSL:
//!
//! ```text
//! reset@40                 kill the connection at its 40th I/O op
//! stall-write@10+10:200    from op 10, every 10 ops, stall a write 200ms
//! garble@25+40             from op 25, every 40 ops, flip one outbound byte
//! ```
//!
//! A [`FaultSchedule`] assigns one plan per accepted-connection index
//! ("kill subscriber 3 at op 40") and is handed to the service via
//! [`ServiceConfig::with_faults`](crate::ServiceConfig::with_faults); the
//! schedule and every stochastic choice inside it (garble positions) are
//! fully determined by the configured seed.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The I/O seam the session layer runs on.
///
/// Implemented by [`TcpStream`] (the production transport) and by
/// [`FaultyStream`] (any transport wrapped in a fault schedule). Reader
/// and writer threads each own one boxed half; both halves of one
/// connection must agree on [`Transport::shutdown_both`] so either side
/// can poison the whole session.
pub trait Transport: Read + Write + Send {
    /// Best-effort shutdown of both directions; unblocks the peer half.
    fn shutdown_both(&self);
    /// Bounds how long one read may block (None = forever).
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()>;
    /// Bounds how long one write may block (None = forever).
    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn shutdown_both(&self) {
        let _ = TcpStream::shutdown(self, Shutdown::Both);
    }
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, t)
    }
    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, t)
    }
}

/// SplitMix64: the deterministic generator behind garble positions and
/// client backoff jitter (kept dependency-free on purpose).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this many milliseconds before the next read proceeds.
    StallRead(u64),
    /// Sleep this many milliseconds before the next write proceeds.
    StallWrite(u64),
    /// Abruptly shut the connection down; all subsequent I/O fails with
    /// `ConnectionReset`.
    Reset,
    /// XOR-flip one byte (seeded position) of the next outbound chunk.
    Garble,
    /// Write only the first half of the next outbound chunk, then reset —
    /// the peer observes a line cut mid-token.
    Truncate,
    /// Accept only the first half of the next outbound chunk (a short
    /// write); the rest arrives through the caller's retry loop.
    Partial,
}

impl FaultKind {
    /// Whether the fault fires on read ops, write ops, or both.
    fn applies(self, write_op: bool) -> bool {
        match self {
            FaultKind::StallRead(_) => !write_op,
            FaultKind::StallWrite(_)
            | FaultKind::Garble
            | FaultKind::Truncate
            | FaultKind::Partial => write_op,
            FaultKind::Reset => true,
        }
    }
}

/// A fault keyed on the connection's I/O-operation counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// First operation index (1-based, reads + writes combined) at which
    /// the rule fires.
    pub at: u64,
    /// Recurrence period in operations; `0` fires exactly once.
    pub every: u64,
}

impl FaultRule {
    /// Whether this rule fires at operation `op` of the given direction.
    fn fires(&self, op: u64, write_op: bool) -> bool {
        self.kind.applies(write_op)
            && op >= self.at
            && if self.every == 0 {
                op == self.at
            } else {
                (op - self.at).is_multiple_of(self.every)
            }
    }
}

/// A scripted sequence of faults for one connection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rules, all consulted at every operation.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds one rule (builder style).
    pub fn with(mut self, kind: FaultKind, at: u64, every: u64) -> FaultPlan {
        self.rules.push(FaultRule { kind, at, every });
        self
    }

    /// Parses the plan DSL: whitespace/`;`-separated rules of the form
    /// `kind@at[+every][:ms]`, e.g. `reset@40`,
    /// `stall-write@10+10:200`, `garble@25+40`. Kinds: `stall-read` /
    /// `stall-write` (require `:ms`), `reset`, `garble`, `truncate`,
    /// `partial`. Errors name the offending token and its byte offset in
    /// the input.
    pub fn parse(dsl: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        // Every separator is one byte, so token offsets can be tracked
        // through the split without re-scanning the input.
        let mut off = 0usize;
        for tok in dsl.split([';', ' ', '\t', '\n']) {
            let pos = off;
            off += tok.len() + 1;
            if tok.is_empty() {
                continue;
            }
            plan.rules.push(parse_rule(tok, pos)?);
        }
        Ok(plan)
    }
}

/// Parses one `kind@at[+every][:ms]` rule token found at byte `pos` of
/// its DSL input (the offset every error message points at).
fn parse_rule(tok: &str, pos: usize) -> Result<FaultRule, String> {
    let (kind, sched) = tok.split_once('@').ok_or_else(|| {
        format!("fault rules are kind@at[+every][:ms], got `{tok}` at byte {pos}")
    })?;
    let (sched, ms) = match sched.split_once(':') {
        Some((s, ms)) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad stall ms `{ms}` in `{tok}` at byte {pos}"))?;
            (s, Some(ms))
        }
        None => (sched, None),
    };
    let (at, every) = match sched.split_once('+') {
        Some((at, every)) => (
            at.parse()
                .map_err(|_| format!("bad op index `{at}` in `{tok}` at byte {pos}"))?,
            every
                .parse()
                .map_err(|_| format!("bad recurrence `{every}` in `{tok}` at byte {pos}"))?,
        ),
        None => (
            sched
                .parse()
                .map_err(|_| format!("bad op index `{sched}` in `{tok}` at byte {pos}"))?,
            0,
        ),
    };
    let kind = match (kind, ms) {
        ("stall-read", Some(ms)) => FaultKind::StallRead(ms),
        ("stall-write", Some(ms)) => FaultKind::StallWrite(ms),
        ("stall-read" | "stall-write", None) => {
            return Err(format!(
                "`{tok}` at byte {pos} needs a stall duration, e.g. `{kind}@{sched}:100`"
            ))
        }
        ("reset", None) => FaultKind::Reset,
        ("garble", None) => FaultKind::Garble,
        ("truncate", None) => FaultKind::Truncate,
        ("partial", None) => FaultKind::Partial,
        _ => {
            return Err(format!(
                "unknown fault kind `{kind}` in `{tok}` at byte {pos}"
            ))
        }
    };
    Ok(FaultRule { kind, at, every })
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            let (name, ms) = match r.kind {
                FaultKind::StallRead(ms) => ("stall-read", Some(ms)),
                FaultKind::StallWrite(ms) => ("stall-write", Some(ms)),
                FaultKind::Reset => ("reset", None),
                FaultKind::Garble => ("garble", None),
                FaultKind::Truncate => ("truncate", None),
                FaultKind::Partial => ("partial", None),
            };
            write!(f, "{name}@{}", r.at)?;
            if r.every > 0 {
                write!(f, "+{}", r.every)?;
            }
            if let Some(ms) = ms {
                write!(f, ":{ms}")?;
            }
        }
        Ok(())
    }
}

/// Assigns a [`FaultPlan`] to each accepted-connection index.
///
/// Connection indices are the service's session ids: the nth accepted
/// connection (0-based) matches an entry with that index, else the
/// fallback (if any), else runs fault-free. Given the same seed and the
/// same connection order the injected schedule is identical run to run.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    entries: Vec<(u64, FaultPlan)>,
    fallback: Option<FaultPlan>,
    /// Seed for every stochastic choice inside the injected faults.
    pub seed: u64,
}

impl FaultSchedule {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            entries: Vec::new(),
            fallback: None,
            seed,
        }
    }

    /// Assigns `plan` to connection index `conn` (builder style).
    pub fn with_plan(mut self, conn: u64, plan: FaultPlan) -> FaultSchedule {
        self.entries.push((conn, plan));
        self
    }

    /// Assigns `plan` to every connection without an explicit entry.
    pub fn with_fallback(mut self, plan: FaultPlan) -> FaultSchedule {
        self.fallback = Some(plan);
        self
    }

    /// Parses a schedule: `|`-separated `conn=plan` entries where `conn`
    /// is a connection index or `*` (the fallback), and `plan` is the
    /// [`FaultPlan::parse`] DSL. Example:
    /// `2=reset@40|5=garble@60+30|*=stall-write@50+100:80`.
    pub fn parse(dsl: &str, seed: u64) -> Result<FaultSchedule, String> {
        let mut sched = FaultSchedule::new(seed);
        let mut off = 0usize;
        for entry in dsl.split('|') {
            let pos = off;
            off += entry.len() + 1;
            if entry.trim().is_empty() {
                continue;
            }
            let (conn, plan) = entry.split_once('=').ok_or_else(|| {
                format!("schedule entries are conn=plan, got `{entry}` at byte {pos}")
            })?;
            // Plan errors carry offsets relative to the plan substring;
            // anchor them to the entry so they locate in the full input.
            let plan = FaultPlan::parse(plan)
                .map_err(|e| format!("in schedule entry at byte {pos}: {e}"))?;
            if conn.trim() == "*" {
                sched.fallback = Some(plan);
            } else {
                let idx: u64 = conn
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad connection index `{conn}` at byte {pos}"))?;
                sched.entries.push((idx, plan));
            }
        }
        Ok(sched)
    }

    /// The plan for connection index `conn`, if any.
    pub fn plan_for(&self, conn: u64) -> Option<&FaultPlan> {
        self.entries
            .iter()
            .find(|(c, _)| *c == conn)
            .map(|(_, p)| p)
            .or(self.fallback.as_ref())
    }
}

/// Shared mutable state of one faulted connection (both halves).
struct FaultState {
    plan: FaultPlan,
    /// 1-based count of I/O operations so far (reads + writes).
    ops: u64,
    /// SplitMix64 state for garble positions/masks.
    rng: u64,
    /// A `Reset`/`Truncate` fired: all subsequent I/O fails.
    dead: bool,
}

/// What the injection seam does to the current operation.
pub(crate) enum Injected {
    /// Proceed untouched.
    None,
    /// Delay the operation by this much before proceeding. The blocking
    /// [`FaultyStream`] sleeps; the reactor defers the connection's
    /// readiness deadline instead (the event loop must never sleep).
    Stall(Duration),
    /// The connection is (now) dead: fail with `ConnectionReset`.
    Reset,
    /// Flip the byte at `pos % len` of the outbound chunk with `mask`.
    Garble {
        /// Seeded byte-position selector (reduced modulo the chunk length).
        pos: u64,
        /// XOR mask, never zero.
        mask: u8,
    },
    /// Write only the first half of the chunk, then kill the connection.
    Truncate,
    /// Accept only the first half of the chunk (a short write).
    Partial,
}

/// The decision core of one faulted connection, shareable between any
/// number of I/O halves: a seeded [`FaultPlan`] plus the connection's
/// operation counter and liveness flag.
///
/// [`FaultyStream`] wraps one of these around a blocking [`Transport`];
/// the reactor consults one directly on every nonblocking read/write
/// attempt and realises the injections itself.
pub(crate) struct FaultDecider {
    state: Arc<Mutex<FaultState>>,
    /// Global injected-fault tally (service metrics), if any.
    tally: Option<Arc<AtomicU64>>,
}

impl Clone for FaultDecider {
    fn clone(&self) -> FaultDecider {
        FaultDecider {
            state: Arc::clone(&self.state),
            tally: self.tally.clone(),
        }
    }
}

impl FaultDecider {
    /// A fresh decider for one connection.
    pub(crate) fn new(plan: FaultPlan, seed: u64, tally: Option<Arc<AtomicU64>>) -> FaultDecider {
        FaultDecider {
            state: Arc::new(Mutex::new(FaultState {
                plan,
                ops: 0,
                rng: seed,
                dead: false,
            })),
            tally,
        }
    }

    /// Locks the shared state, recovering from poisoning (a panicking
    /// holder cannot corrupt the plain counters inside).
    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether a `Reset`/`Truncate` already fired.
    pub(crate) fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Advances the op counter and decides what to inject for this op.
    pub(crate) fn decide(&self, write_op: bool) -> Injected {
        let mut st = self.lock();
        if st.dead {
            return Injected::Reset;
        }
        st.ops += 1;
        let op = st.ops;
        let Some(rule) = st.plan.rules.iter().find(|r| r.fires(op, write_op)) else {
            return Injected::None;
        };
        let kind = rule.kind;
        let injected = match kind {
            FaultKind::StallRead(ms) | FaultKind::StallWrite(ms) => {
                Injected::Stall(Duration::from_millis(ms))
            }
            FaultKind::Reset => {
                st.dead = true;
                Injected::Reset
            }
            FaultKind::Garble => {
                let word = splitmix64(&mut st.rng);
                Injected::Garble {
                    pos: word >> 8,
                    // Never a zero mask: the flip must be visible.
                    mask: (word as u8) | 1,
                }
            }
            FaultKind::Truncate => {
                st.dead = true;
                Injected::Truncate
            }
            FaultKind::Partial => Injected::Partial,
        };
        if let Some(tally) = &self.tally {
            tally.fetch_add(1, Ordering::Relaxed);
        }
        injected
    }

    /// The error every operation on a dead connection reports.
    pub(crate) fn reset_err() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

/// A [`Transport`] wrapped in a seeded [`FaultPlan`].
///
/// Both halves of a connection share one operation counter and one
/// liveness flag, so a `Reset` injected on either half kills both.
pub struct FaultyStream<T: Transport> {
    inner: T,
    decider: FaultDecider,
}

impl<T: Transport> FaultyStream<T> {
    /// Wraps the two halves of one connection in a shared fault plan.
    pub fn pair(
        read_half: T,
        write_half: T,
        plan: FaultPlan,
        seed: u64,
        tally: Option<Arc<AtomicU64>>,
    ) -> (FaultyStream<T>, FaultyStream<T>) {
        let decider = FaultDecider::new(plan, seed, tally);
        (
            FaultyStream {
                inner: read_half,
                decider: decider.clone(),
            },
            FaultyStream {
                inner: write_half,
                decider,
            },
        )
    }

    /// Wraps a single half (client-side tests) in its own plan.
    pub fn wrap(inner: T, plan: FaultPlan, seed: u64) -> FaultyStream<T> {
        FaultyStream {
            inner,
            decider: FaultDecider::new(plan, seed, None),
        }
    }

    /// Advances the op counter and decides what to inject for this op.
    fn decide(&self, write_op: bool) -> Injected {
        self.decider.decide(write_op)
    }

    fn reset_err() -> io::Error {
        FaultDecider::reset_err()
    }
}

impl<T: Transport> Read for FaultyStream<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.decide(false) {
            Injected::None | Injected::Garble { .. } | Injected::Truncate | Injected::Partial => {
                self.inner.read(buf)
            }
            Injected::Stall(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Injected::Reset => {
                self.inner.shutdown_both();
                Err(Self::reset_err())
            }
        }
    }
}

impl<T: Transport> Write for FaultyStream<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.decide(true) {
            Injected::None => self.inner.write(buf),
            Injected::Stall(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Injected::Reset => {
                self.inner.shutdown_both();
                Err(Self::reset_err())
            }
            Injected::Garble { pos, mask } => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let mut garbled = buf.to_vec();
                let idx = (pos % garbled.len() as u64) as usize;
                garbled[idx] ^= mask;
                self.inner.write_all(&garbled)?;
                Ok(buf.len())
            }
            Injected::Truncate => {
                let half = buf.len() / 2;
                let _ = self.inner.write(&buf[..half]);
                let _ = self.inner.flush();
                self.inner.shutdown_both();
                Err(Self::reset_err())
            }
            Injected::Partial => {
                let n = buf.len().div_ceil(2).max(1).min(buf.len());
                if n == 0 {
                    return self.inner.write(buf);
                }
                self.inner.write(&buf[..n])
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.decider.is_dead() {
            return Err(Self::reset_err());
        }
        self.inner.flush()
    }
}

impl<T: Transport> Transport for FaultyStream<T> {
    fn shutdown_both(&self) {
        self.inner.shutdown_both();
    }
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(t)
    }
    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dsl_round_trips() {
        let plan = FaultPlan::new()
            .with(FaultKind::Reset, 40, 0)
            .with(FaultKind::StallWrite(200), 10, 10)
            .with(FaultKind::Garble, 25, 40)
            .with(FaultKind::StallRead(5), 3, 0)
            .with(FaultKind::Truncate, 99, 0)
            .with(FaultKind::Partial, 7, 2);
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text), Ok(plan), "dsl: {text}");
    }

    #[test]
    fn plan_dsl_rejects_malformed() {
        for bad in [
            "reset",
            "reset@x",
            "stall-read@5",
            "stall-write@5+2",
            "frob@1",
            "garble@1:20",
            "reset@1+x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn plan_errors_name_the_token_and_its_byte_offset() {
        // `garbage` is the second token, starting right after "reset@1;".
        let err = FaultPlan::parse("reset@1;garbage").unwrap_err();
        assert_eq!(
            err,
            "fault rules are kind@at[+every][:ms], got `garbage` at byte 8"
        );
        let err = FaultPlan::parse("garble@2 reset@x+3").unwrap_err();
        assert_eq!(err, "bad op index `x` in `reset@x+3` at byte 9");
        let err = FaultPlan::parse("reset@1+y").unwrap_err();
        assert_eq!(err, "bad recurrence `y` in `reset@1+y` at byte 0");
        let err = FaultPlan::parse("stall-read@5:abc").unwrap_err();
        assert_eq!(err, "bad stall ms `abc` in `stall-read@5:abc` at byte 0");
        let err = FaultPlan::parse("reset@1 stall-write@5+2").unwrap_err();
        assert_eq!(
            err,
            "`stall-write@5+2` at byte 8 needs a stall duration, e.g. `stall-write@5+2:100`"
        );
        let err = FaultPlan::parse("frob@1").unwrap_err();
        assert_eq!(err, "unknown fault kind `frob` in `frob@1` at byte 0");
    }

    #[test]
    fn schedule_errors_locate_the_entry() {
        let err = FaultSchedule::parse("2=reset@40|oops", 0).unwrap_err();
        assert_eq!(err, "schedule entries are conn=plan, got `oops` at byte 11");
        let err = FaultSchedule::parse("2=reset@40|x=garble@1", 0).unwrap_err();
        assert_eq!(err, "bad connection index `x` at byte 11");
        let err = FaultSchedule::parse("2=reset@40|3=frob@1", 0).unwrap_err();
        assert_eq!(
            err,
            "in schedule entry at byte 11: unknown fault kind `frob` in `frob@1` at byte 0"
        );
    }

    #[test]
    fn schedule_assignment_and_fallback() {
        let sched = FaultSchedule::parse("2=reset@40|*=garble@60+30", 7).expect("parse");
        assert_eq!(
            sched.plan_for(2),
            Some(&FaultPlan::new().with(FaultKind::Reset, 40, 0))
        );
        assert_eq!(
            sched.plan_for(9),
            Some(&FaultPlan::new().with(FaultKind::Garble, 60, 30))
        );
        let explicit = FaultSchedule::new(1).with_plan(0, FaultPlan::new());
        assert_eq!(explicit.plan_for(1), None, "no fallback configured");
    }

    #[test]
    fn rules_fire_deterministically() {
        let once = FaultRule {
            kind: FaultKind::Reset,
            at: 4,
            every: 0,
        };
        assert!(!once.fires(3, true));
        assert!(once.fires(4, false));
        assert!(!once.fires(5, true));
        let periodic = FaultRule {
            kind: FaultKind::Garble,
            at: 10,
            every: 5,
        };
        assert!(periodic.fires(10, true));
        assert!(!periodic.fires(12, true));
        assert!(periodic.fires(20, true));
        assert!(!periodic.fires(20, false), "garble is write-only");
    }

    /// In-memory transport: writes land in a shared buffer, reads yield
    /// nothing (enough to unit-test the write-side injections).
    struct Sink {
        data: Arc<Mutex<Vec<u8>>>,
        down: Arc<AtomicU64>,
    }

    impl Read for Sink {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Transport for Sink {
        fn shutdown_both(&self) {
            self.down.fetch_add(1, Ordering::Relaxed);
        }
        fn set_read_timeout(&self, _t: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
        fn set_write_timeout(&self, _t: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn garble_flips_exactly_one_byte() {
        let data = Arc::new(Mutex::new(Vec::new()));
        let down = Arc::new(AtomicU64::new(0));
        let sink = Sink {
            data: Arc::clone(&data),
            down,
        };
        let plan = FaultPlan::new().with(FaultKind::Garble, 2, 0);
        let mut s = FaultyStream::wrap(sink, plan, 42);
        s.write_all(b"AAAA").expect("clean write");
        s.write_all(b"BBBB").expect("garbled write");
        let got = data.lock().unwrap().clone();
        assert_eq!(&got[..4], b"AAAA");
        let flipped: Vec<usize> = (0..4).filter(|&i| got[4 + i] != b'B').collect();
        assert_eq!(flipped.len(), 1, "exactly one byte flipped: {got:?}");
    }

    #[test]
    fn reset_kills_both_halves() {
        let data = Arc::new(Mutex::new(Vec::new()));
        let down = Arc::new(AtomicU64::new(0));
        let mk = |d: &Arc<Mutex<Vec<u8>>>, s: &Arc<AtomicU64>| Sink {
            data: Arc::clone(d),
            down: Arc::clone(s),
        };
        let plan = FaultPlan::new().with(FaultKind::Reset, 2, 0);
        let (mut r, mut w) = FaultyStream::pair(mk(&data, &down), mk(&data, &down), plan, 1, None);
        w.write_all(b"ok").expect("op 1 clean");
        assert!(w.write_all(b"boom").is_err(), "op 2 resets");
        assert_eq!(down.load(Ordering::Relaxed), 1, "socket shut down");
        let mut buf = [0u8; 4];
        assert!(r.read(&mut buf).is_err(), "reader half is dead too");
    }

    #[test]
    fn deterministic_given_seed() {
        // Same plan + seed => identical garble decisions (byte positions
        // and masks) across runs.
        let run = || {
            let data = Arc::new(Mutex::new(Vec::new()));
            let down = Arc::new(AtomicU64::new(0));
            let sink = Sink {
                data: Arc::clone(&data),
                down,
            };
            let plan = FaultPlan::new().with(FaultKind::Garble, 1, 1);
            let mut s = FaultyStream::wrap(sink, plan, 0xC4A05);
            for _ in 0..8 {
                s.write_all(b"0123456789").expect("write");
            }
            let bytes = data.lock().unwrap().clone();
            bytes
        };
        assert_eq!(run(), run());
    }
}
