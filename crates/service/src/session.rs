//! Per-connection session plumbing.
//!
//! Each accepted TCP connection gets **two** threads and **one** queue:
//!
//! * a *reader* thread that parses request lines and feeds them to the
//!   single engine-owner thread over the service's bounded inbox (a slow
//!   engine therefore back-pressures every producer through plain blocking
//!   channel sends);
//! * a *writer* thread that drains this session's [`SessionOut`] queue to
//!   the socket;
//! * the [`SessionOut`] queue itself — one ordered lane shared by replies
//!   and pushes, so a client always observes every push enqueued before a
//!   reply *before* that reply.
//!
//! **Backpressure policy** (drop-to-snapshot): replies are never dropped,
//! but the number of queued *push* lines is capped. When the engine tries
//! to push a delta to a session whose cap is reached — a consumer reading
//! slower than its subscriptions produce — every queued push is discarded
//! and the engine re-baselines the session with a `RESYNC` marker followed
//! by a fresh `SNAPSHOT` per subscription. The slow client loses
//! intermediate states, never the current one, and server memory stays
//! bounded per session.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};

use crate::protocol::parse_request;
use crate::service::Event;

/// Identifier of one accepted connection, unique within a service run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A queued outbound line, classed by droppability.
enum OutLine {
    /// A reply to a request — never dropped.
    Reply(String),
    /// An asynchronous push — dropped wholesale on overflow.
    Push(String),
}

#[derive(Default)]
struct OutState {
    queue: VecDeque<OutLine>,
    /// Number of `Push` lines currently queued.
    pushes: usize,
    /// No further lines will be accepted; the writer drains and exits.
    closed: bool,
}

/// The outbound side of one session: an ordered reply/push queue drained
/// by the session's writer thread.
#[derive(Default)]
pub struct SessionOut {
    state: Mutex<OutState>,
    ready: Condvar,
}

impl SessionOut {
    /// Locks the queue state, recovering from poisoning: the queue's
    /// push/pop operations keep it structurally consistent even if a
    /// holder panicked mid-update, and losing one session's backlog is
    /// strictly better than wedging every thread that touches it.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, OutState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates an empty open queue.
    pub fn new() -> SessionOut {
        SessionOut::default()
    }

    /// Enqueues a reply line. Replies are exempt from the push cap — their
    /// volume is bounded by the client's own (flow-controlled) request
    /// rate, so they cannot grow without bound.
    pub fn send_reply(&self, line: String) {
        let mut st = self.lock_state();
        if st.closed {
            return;
        }
        st.queue.push_back(OutLine::Reply(line));
        self.ready.notify_one();
    }

    /// Tries to enqueue a push line under a cap of `cap` pending pushes.
    ///
    /// On overflow every queued push is discarded (replies are retained in
    /// order) and `false` is returned: the caller must re-baseline the
    /// session with `RESYNC` + `SNAPSHOT` pushes via
    /// [`SessionOut::force_push`].
    pub fn try_push(&self, line: String, cap: usize) -> bool {
        let mut st = self.lock_state();
        if st.closed {
            // A vanishing session needs no resync.
            return true;
        }
        if st.pushes >= cap {
            st.queue.retain(|l| matches!(l, OutLine::Reply(_)));
            st.pushes = 0;
            return false;
        }
        st.queue.push_back(OutLine::Push(line));
        st.pushes += 1;
        self.ready.notify_one();
        true
    }

    /// Enqueues a push line bypassing the cap — used only for the `RESYNC`
    /// marker and its snapshots, whose volume is bounded by the session's
    /// subscription count.
    pub fn force_push(&self, line: String) {
        let mut st = self.lock_state();
        if st.closed {
            return;
        }
        st.queue.push_back(OutLine::Push(line));
        st.pushes += 1;
        self.ready.notify_one();
    }

    /// Marks the queue closed: already-queued lines are still delivered,
    /// then the writer thread shuts the socket down and exits.
    pub fn close(&self) {
        let mut st = self.lock_state();
        st.closed = true;
        self.ready.notify_one();
    }

    /// Blocks until at least one line is available (draining up to `max`
    /// of them into `batch`) or the queue is closed and empty (returns
    /// `false`).
    fn pop_into(&self, batch: &mut Vec<String>, max: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if !st.queue.is_empty() {
                while batch.len() < max {
                    match st.queue.pop_front() {
                        Some(OutLine::Reply(l)) => batch.push(l),
                        Some(OutLine::Push(l)) => {
                            st.pushes -= 1;
                            batch.push(l);
                        }
                        None => break,
                    }
                }
                return true;
            }
            if st.closed {
                return false;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Number of currently queued push lines (test/stats hook).
    pub fn queued_pushes(&self) -> usize {
        self.lock_state().pushes
    }
}

/// Body of a session's writer thread: drains the queue to the socket in
/// batches (one flush per drain, not per line). On any write failure the
/// queue is closed; the engine learns of the death from the reader side.
pub(crate) fn run_writer(stream: &TcpStream, out: &SessionOut) {
    let mut writer = BufWriter::new(stream);
    let mut batch = Vec::new();
    while out.pop_into(&mut batch, 256) {
        for line in batch.drain(..) {
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                out.close();
                return;
            }
        }
        if writer.flush().is_err() {
            out.close();
            return;
        }
    }
    // Closed and fully drained: also unblocks this session's reader.
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Hard cap on one request line, keeping per-connection reader memory
/// bounded against a peer that never sends `\n`. Generous: a `TICK` batch
/// of ~25k 2-d tuples still fits.
pub(crate) const MAX_REQUEST_LINE: u64 = 1 << 20;

/// Reads one `\n`-terminated line of at most [`MAX_REQUEST_LINE`] bytes.
/// Returns `Ok(None)` on clean EOF and `Err` on oversized input, invalid
/// UTF-8, or socket failure.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<String>> {
    use std::io::{Error, ErrorKind, Read};
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_REQUEST_LINE)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') && n as u64 >= MAX_REQUEST_LINE {
        return Err(Error::new(ErrorKind::InvalidData, "request line too long"));
    }
    let line = std::str::from_utf8(buf)
        .map_err(|_| Error::new(ErrorKind::InvalidData, "request line is not UTF-8"))?;
    Ok(Some(line.to_string()))
}

/// Body of a session's reader thread: parses request lines and forwards
/// them to the engine-owner thread. Sends [`Event::Gone`] exactly once on
/// EOF, socket error, an oversized/non-UTF-8 line, or service shutdown.
pub(crate) fn run_reader(stream: TcpStream, sid: SessionId, inbox: &SyncSender<Event>) {
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match read_request_line(&mut reader, &mut buf) {
            Ok(None) | Err(_) => break,
            Ok(Some(line)) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let event = match parse_request(trimmed) {
                    Ok(req) => Event::Request(sid, req),
                    Err(msg) => Event::Bad(sid, msg),
                };
                if inbox.send(event).is_err() {
                    break; // Engine gone: service shut down.
                }
            }
        }
    }
    let _ = inbox.send(Event::Gone(sid));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_survive_push_overflow() {
        let out = SessionOut::new();
        out.send_reply("OK q0".into());
        assert!(out.try_push("DELTA 1".into(), 2));
        assert!(out.try_push("DELTA 2".into(), 2));
        // Third push overflows the cap of 2: pushes dropped, replies kept.
        assert!(!out.try_push("DELTA 3".into(), 2));
        out.send_reply("OK q1".into());
        out.force_push("RESYNC 1".into());
        out.close();

        let mut drained = Vec::new();
        while out.pop_into(&mut drained, 64) {}
        assert_eq!(drained, vec!["OK q0", "OK q1", "RESYNC 1"]);
    }

    #[test]
    fn pop_blocks_until_line_or_close() {
        use std::sync::Arc;
        let out = Arc::new(SessionOut::new());
        let clone = Arc::clone(&out);
        let handle = std::thread::spawn(move || {
            let mut batch = Vec::new();
            let got = clone.pop_into(&mut batch, 8);
            (got, batch)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        out.send_reply("hello".into());
        let (got, batch) = handle.join().unwrap();
        assert!(got);
        assert_eq!(batch, vec!["hello"]);

        out.close();
        let mut rest = Vec::new();
        assert!(!out.pop_into(&mut rest, 8), "closed and empty");
    }

    #[test]
    fn closed_queue_accepts_nothing() {
        let out = SessionOut::new();
        out.close();
        out.send_reply("late".into());
        assert!(out.try_push("late push".into(), 4), "no resync for corpses");
        out.force_push("late force".into());
        let mut batch = Vec::new();
        assert!(!out.pop_into(&mut batch, 8));
        assert!(batch.is_empty());
    }
}
