//! Per-connection session state: outbound byte queue and line framing.
//!
//! Since PR 10 connections are **not** driven by per-connection threads:
//! the [`crate::reactor`] event loop owns every subscriber socket and
//! drives all of them from O(shards) threads. This module provides the two
//! pieces of per-connection state the reactor (and the engine owner / the
//! fan-out shard workers feeding it) share:
//!
//! * [`SessionOut`] — one ordered outbound queue per connection, shared by
//!   replies and pushes. Producers (the engine owner, the fan-out shard
//!   workers) enqueue whole lines as reference-counted byte payloads —
//!   one tick's `DELTA` line is encoded **once** per query and the same
//!   `Arc<[u8]>` is enqueued for every subscriber — and the reactor drains
//!   it with a *partial-write cursor*: a short write leaves the front
//!   payload in place with its offset advanced, so flushing resumes
//!   mid-line at the next write-readiness wakeup without ever splicing
//!   two lines together.
//! * [`LineFramer`] — incremental request-line reassembly. The reactor
//!   reads whatever the socket has ready (possibly one byte, possibly a
//!   dozen pipelined lines, possibly a UTF-8 sequence split across two
//!   wakeups) and feeds the raw chunks in; the framer yields complete
//!   lines plus the same oversized/non-UTF-8 classifications the
//!   thread-per-connection reader used to produce.
//!
//! **Backpressure policy** (drop-to-snapshot, unchanged since PR 5):
//! replies are never dropped, but the number of queued *push* lines is
//! capped. When a producer pushes to a session whose cap is reached — a
//! consumer reading slower than its subscriptions produce — every queued
//! push is discarded and the engine re-baselines the session with a
//! `RESYNC` marker followed by a fresh `SNAPSHOT` per subscription. Two
//! subtleties are new with the reactor. First, a push the reactor has
//! *staged for a socket write* — copied out by
//! [`SessionOut::peek_coalesced`] / [`SessionOut::next_chunk`], with the
//! write itself happening lock-free and [`SessionOut::advance`]
//! accounting for it afterwards — is never discarded: dropping it would
//! desynchronize that accounting (popping lines that were never written)
//! or resume the stream mid-line and garble the next payload. Second, an
//! overflow *latches*: until the engine owner re-arms the queue with
//! [`SessionOut::clear_overflow`] right before the `RESYNC` baseline,
//! every capped push is refused outright, so a producer on another
//! fan-out shard cannot slip a delta in ahead of the pending resync.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::reactor::Waker;

/// Identifier of one accepted connection, unique within a service run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A queued outbound line, classed by droppability.
struct OutEntry {
    /// The full encoded line, terminator included. Shared (`Arc`) so a
    /// fan-out of one payload to 10⁴ subscribers enqueues 10⁴ pointers,
    /// not 10⁴ copies.
    bytes: Arc<[u8]>,
    /// `true` for asynchronous pushes (droppable on overflow), `false`
    /// for replies (never dropped).
    push: bool,
}

#[derive(Default)]
struct OutState {
    queue: VecDeque<OutEntry>,
    /// Bytes of the front entry already written to the socket.
    cursor: usize,
    /// Number of `push` entries currently queued.
    pushes: usize,
    /// Front entries currently *staged* by the reactor for a socket
    /// write: [`SessionOut::peek_coalesced`] / [`SessionOut::next_chunk`]
    /// copy their bytes out under the lock, the socket write happens with
    /// the lock released, and [`SessionOut::advance`] accounts for it
    /// afterwards by popping exactly these entries. The overflow drop
    /// must never discard a staged entry: `advance` would then pop lines
    /// enqueued *after* the drop (losing replies/`RESYNC`s) or leave the
    /// cursor mid-entry (garbling the stream).
    staged: usize,
    /// The push backlog was dropped on overflow and the engine owner has
    /// not yet re-baselined this session: further capped pushes are
    /// refused (not enqueued) so no producer can slip a delta in ahead of
    /// the pending `RESYNC`.
    overflowed: bool,
    /// No further lines will be accepted; the reactor drains what is
    /// queued and then shuts the socket down.
    closed: bool,
}

/// The outbound side of one session: an ordered reply/push byte queue
/// produced by the engine owner and the fan-out shard workers, consumed
/// by the reactor with partial-write resumption.
///
/// Consumption ([`SessionOut::next_chunk`] / [`SessionOut::advance`]) is
/// single-consumer by contract — only the reactor thread drains a
/// session — while any number of producer threads may enqueue.
#[derive(Default)]
pub struct SessionOut {
    state: Mutex<OutState>,
    /// The reactor waker (set once when the reactor adopts the
    /// connection); enqueues into an empty queue poke it so the event
    /// loop learns there are bytes to flush.
    waker: OnceLock<(Arc<Waker>, SessionId)>,
}

impl SessionOut {
    /// Locks the queue state, recovering from poisoning: the queue's
    /// push/pop operations keep it structurally consistent even if a
    /// holder panicked mid-update, and losing one session's backlog is
    /// strictly better than wedging every thread that touches it.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, OutState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates an empty open queue.
    pub fn new() -> SessionOut {
        SessionOut::default()
    }

    /// Attaches the reactor waker; called once when the reactor adopts
    /// the connection.
    pub(crate) fn attach_waker(&self, waker: Arc<Waker>, sid: SessionId) {
        let _ = self.waker.set((waker, sid));
    }

    /// Pokes the reactor (when attached) that this session has pending
    /// output or was closed.
    fn wake(&self) {
        if let Some((waker, sid)) = self.waker.get() {
            waker.wake(*sid);
        }
    }

    fn enqueue(&self, bytes: Arc<[u8]>, push: bool) {
        let was_idle = {
            let mut st = self.lock_state();
            if st.closed {
                return;
            }
            let was_idle = st.queue.is_empty();
            if push {
                st.pushes += 1;
            }
            st.queue.push_back(OutEntry { bytes, push });
            was_idle
        };
        // Only the empty→non-empty transition needs a wakeup: while the
        // queue is non-empty the reactor already holds write interest.
        if was_idle {
            self.wake();
        }
    }

    /// Enqueues a reply line (terminator appended here). Replies are
    /// exempt from the push cap — their volume is bounded by the client's
    /// own (flow-controlled) request rate, so they cannot grow without
    /// bound.
    pub fn send_reply(&self, line: String) {
        self.enqueue(line_bytes(line), false);
    }

    /// Tries to enqueue a push line under a cap of `cap` pending pushes —
    /// the string-encoding convenience over
    /// [`SessionOut::try_push_shared`].
    pub fn try_push(&self, line: String, cap: usize) -> bool {
        self.try_push_shared(line_bytes(line), cap)
    }

    /// Tries to enqueue an already-encoded push payload (terminator
    /// included) under a cap of `cap` pending pushes.
    ///
    /// On overflow every queued push is discarded — except entries the
    /// reactor has staged for (or partially completed) a socket write,
    /// which must stay so the write's accounting pops the right lines and
    /// the byte stream stays line-aligned — replies are retained in
    /// order, and `false` is returned: the caller must re-baseline the
    /// session with `RESYNC` + `SNAPSHOT` pushes via
    /// [`SessionOut::force_push`]. Until [`SessionOut::clear_overflow`]
    /// marks that re-baseline as underway, every further capped push is
    /// refused (returning `false` again) without touching the queue, so
    /// no producer — in particular no other fan-out shard — can slip a
    /// delta in ahead of the pending `RESYNC`.
    pub fn try_push_shared(&self, bytes: Arc<[u8]>, cap: usize) -> bool {
        let was_idle = {
            let mut st = self.lock_state();
            if st.closed {
                // A vanishing session needs no resync.
                return true;
            }
            if st.overflowed {
                return false;
            }
            if st.pushes >= cap {
                let protect = st.staged.max(usize::from(st.cursor > 0));
                let mut idx = 0usize;
                st.queue.retain(|l| {
                    let keep = !l.push || idx < protect;
                    idx += 1;
                    keep
                });
                st.pushes = st.queue.iter().filter(|l| l.push).count();
                st.overflowed = true;
                return false;
            }
            let was_idle = st.queue.is_empty();
            st.queue.push_back(OutEntry { bytes, push: true });
            st.pushes += 1;
            was_idle
        };
        if was_idle {
            self.wake();
        }
        true
    }

    /// Re-arms capped pushes after an overflow drop. Called by the engine
    /// owner immediately before it enqueues the `RESYNC` + `SNAPSHOT`
    /// baseline (the fan-out barrier guarantees no shard worker is
    /// pushing concurrently at that point).
    pub fn clear_overflow(&self) {
        self.lock_state().overflowed = false;
    }

    /// Enqueues a push line bypassing the cap — used only for the `RESYNC`
    /// marker and its snapshots, whose volume is bounded by the session's
    /// subscription count.
    pub fn force_push(&self, line: String) {
        self.enqueue(line_bytes(line), true);
    }

    /// Marks the queue closed: already-queued lines are still delivered,
    /// then the reactor shuts the socket down.
    pub fn close(&self) {
        {
            let mut st = self.lock_state();
            st.closed = true;
        }
        self.wake();
    }

    /// Whether [`SessionOut::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock_state().closed
    }

    /// Whether nothing is queued (a closed, drained session can be shut
    /// down).
    pub fn is_drained(&self) -> bool {
        self.lock_state().queue.is_empty()
    }

    /// The front payload and how many of its bytes were already written.
    /// Single-consumer: only the draining thread may pair this with
    /// [`SessionOut::advance`]. The front entry is recorded as staged —
    /// protected from the overflow drop — until that `advance`.
    pub fn next_chunk(&self) -> Option<(Arc<[u8]>, usize)> {
        let mut st = self.lock_state();
        st.staged = usize::from(!st.queue.is_empty());
        st.queue.front().map(|e| (Arc::clone(&e.bytes), st.cursor))
    }

    /// Copies up to `max` pending bytes (starting at the partial-write
    /// cursor, spanning entries) into `scratch`, returning how many were
    /// staged — the coalescing path that turns a burst of small push
    /// lines into one socket write. Every entry copied from is recorded
    /// as staged — protected from the overflow drop — until the
    /// [`SessionOut::advance`] that accounts for the write.
    pub fn peek_coalesced(&self, scratch: &mut Vec<u8>, max: usize) -> usize {
        scratch.clear();
        let mut st = self.lock_state();
        let mut skip = st.cursor;
        let mut staged = 0usize;
        for entry in &st.queue {
            if scratch.len() >= max {
                break;
            }
            let body = &entry.bytes[skip.min(entry.bytes.len())..];
            skip = 0;
            let room = max - scratch.len();
            scratch.extend_from_slice(&body[..body.len().min(room)]);
            staged += 1;
        }
        st.staged = staged;
        scratch.len()
    }

    /// Records `n` bytes as written, popping every entry the cursor moves
    /// past (partial progress stays in the cursor) and releasing the
    /// staged-entry protection (the write is fully accounted; anything
    /// left re-stages at the next peek).
    pub fn advance(&self, n: usize) {
        let mut st = self.lock_state();
        st.cursor += n;
        while let Some(front) = st.queue.front() {
            let len = front.bytes.len();
            let push = front.push;
            if st.cursor < len {
                break;
            }
            st.cursor -= len;
            if push {
                st.pushes -= 1;
            }
            st.queue.pop_front();
        }
        st.staged = 0;
        // An over-advance past the queue tail cannot represent bytes on
        // the wire; clamp so a buggy caller cannot wedge the cursor.
        if st.queue.is_empty() {
            st.cursor = 0;
        }
    }

    /// Number of currently queued push lines (test/stats hook).
    pub fn queued_pushes(&self) -> usize {
        self.lock_state().pushes
    }
}

/// Encodes one outbound line: the string's bytes plus the `\n`
/// terminator, as a shareable payload.
pub(crate) fn line_bytes(line: String) -> Arc<[u8]> {
    let mut bytes = line.into_bytes();
    bytes.push(b'\n');
    Arc::from(bytes)
}

/// Bidirectional last-activity clock of one connection: inbound bytes and
/// successful flushes both count (a pure subscriber is kept alive by its
/// own delta stream; a connection silent in both directions must `PING`).
pub(crate) struct Liveness {
    epoch: Instant,
    last_ms: AtomicU64,
}

impl Liveness {
    pub(crate) fn new() -> Liveness {
        Liveness {
            epoch: Instant::now(),
            last_ms: AtomicU64::new(0),
        }
    }

    /// Records activity now.
    pub(crate) fn touch(&self) {
        let ms = self.epoch.elapsed().as_millis() as u64;
        self.last_ms.fetch_max(ms, Ordering::Relaxed);
    }

    /// Time since the last recorded activity in either direction.
    pub(crate) fn idle(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }
}

/// Hard cap on one request line, keeping per-connection framing memory
/// bounded against a peer that never sends `\n`. Generous: a `TICK` batch
/// of ~25k 2-d tuples still fits.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// One framed inbound line (or its rejection), yielded by
/// [`LineFramer::next_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete UTF-8 line, terminator stripped.
    Line(String),
    /// The line exceeded the framer's byte cap; its remainder (up to the
    /// next `\n`) is silently discarded and framing resumes at the next
    /// line.
    TooLong,
    /// A complete line that is not valid UTF-8.
    NotUtf8,
}

/// Incremental `\n`-line reassembly over arbitrary read-chunk boundaries.
///
/// Feed whatever the socket produced — single bytes, half a UTF-8
/// sequence, a dozen pipelined lines — via [`LineFramer::feed`], then
/// drain complete lines with [`LineFramer::next_line`]. Memory is bounded
/// by the line cap: once a line exceeds it, the framer switches to a
/// discard mode that scans (without storing) until the terminator.
pub struct LineFramer {
    buf: Vec<u8>,
    /// An oversized line was reported; bytes are dropped until `\n`.
    discarding: bool,
    max: usize,
}

impl LineFramer {
    /// A framer with the given line cap ([`MAX_REQUEST_LINE`] for the
    /// serving layer).
    pub fn new(max: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            discarding: false,
            max: max.max(1),
        }
    }

    /// Appends one read chunk.
    pub fn feed(&mut self, mut chunk: &[u8]) {
        if self.discarding {
            match chunk.iter().position(|b| *b == b'\n') {
                Some(i) => {
                    self.discarding = false;
                    chunk = &chunk[i + 1..];
                }
                None => return,
            }
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered (partial line + any complete lines not
    /// yet drained).
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }

    /// Yields the next complete line (or cap/encoding rejection), `None`
    /// when more bytes are needed.
    pub fn next_line(&mut self) -> Option<FramedLine> {
        match self.buf.iter().position(|b| *b == b'\n') {
            Some(pos) => {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the terminator
                if line.last() == Some(&b'\r') {
                    line.pop(); // tolerate CRLF peers
                }
                if line.len() > self.max {
                    return Some(FramedLine::TooLong);
                }
                match String::from_utf8(line) {
                    Ok(s) => Some(FramedLine::Line(s)),
                    Err(_) => Some(FramedLine::NotUtf8),
                }
            }
            None => {
                if self.buf.len() > self.max {
                    // Already oversized with no terminator in sight: report
                    // once, drop what we hold, scan for the terminator.
                    self.buf.clear();
                    self.discarding = true;
                    return Some(FramedLine::TooLong);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue as a writer with unbounded appetite would.
    fn drain_all(out: &SessionOut) -> Vec<u8> {
        let mut got = Vec::new();
        while let Some((bytes, cursor)) = out.next_chunk() {
            got.extend_from_slice(&bytes[cursor..]);
            out.advance(bytes.len() - cursor);
        }
        got
    }

    #[test]
    fn replies_survive_push_overflow() {
        let out = SessionOut::new();
        out.send_reply("OK q0".into());
        assert!(out.try_push("DELTA 1".into(), 2));
        assert!(out.try_push("DELTA 2".into(), 2));
        // Third push overflows the cap of 2: pushes dropped, replies kept.
        assert!(!out.try_push("DELTA 3".into(), 2));
        out.send_reply("OK q1".into());
        out.force_push("RESYNC 1".into());
        out.close();
        assert_eq!(drain_all(&out), b"OK q0\nOK q1\nRESYNC 1\n");
        assert!(out.is_drained());
    }

    #[test]
    fn overflow_never_drops_a_partially_written_push() {
        let out = SessionOut::new();
        assert!(out.try_push("DELTA first".into(), 2));
        assert!(out.try_push("DELTA second".into(), 2));
        // Simulate a short write: 3 bytes of "DELTA first\n" on the wire.
        out.advance(3);
        assert!(!out.try_push("DELTA third".into(), 2), "cap overflow");
        out.force_push("RESYNC 1".into());
        out.close();
        // The in-flight line survives (resuming at its cursor), the rest
        // of the backlog is gone, the resync follows.
        assert_eq!(drain_all(&out), b"TA first\nRESYNC 1\n");
    }

    #[test]
    fn overflow_never_drops_staged_entries() {
        let out = SessionOut::new();
        assert!(out.try_push("DELTA a".into(), 2));
        assert!(out.try_push("DELTA b".into(), 2));
        // The reactor stages both lines for one coalesced write and is
        // now writing with the queue lock released...
        let mut scratch = Vec::new();
        let staged = out.peek_coalesced(&mut scratch, 64);
        assert_eq!(scratch, b"DELTA a\nDELTA b\n");
        // ...when a shard worker overflows the cap mid-write: the staged
        // entries must survive the drop so the pending advance() pops
        // exactly the lines that went on the wire.
        assert!(!out.try_push("DELTA c".into(), 2), "cap overflow");
        out.clear_overflow();
        out.force_push("RESYNC 1".into());
        out.advance(staged);
        out.close();
        assert_eq!(drain_all(&out), b"RESYNC 1\n");
    }

    #[test]
    fn overflow_latches_pushes_until_cleared() {
        let out = SessionOut::new();
        assert!(out.try_push("DELTA a".into(), 1));
        assert!(!out.try_push("DELTA b".into(), 1), "cap overflow");
        // Until the owner re-baselines, every capped push — e.g. a delta
        // from another fan-out shard — is refused without being queued.
        assert!(!out.try_push("DELTA c".into(), 8), "latched");
        assert_eq!(out.queued_pushes(), 0);
        out.clear_overflow();
        out.force_push("RESYNC 1".into());
        assert!(out.try_push("DELTA d".into(), 8), "re-armed");
        out.close();
        assert_eq!(drain_all(&out), b"RESYNC 1\nDELTA d\n");
    }

    #[test]
    fn partial_write_cursor_resumes_mid_line() {
        let out = SessionOut::new();
        out.send_reply("0123456789".into());
        out.send_reply("ab".into());
        let mut got = Vec::new();
        // Drain in 4-byte nibbles.
        while let Some((bytes, cursor)) = out.next_chunk() {
            let n = (bytes.len() - cursor).min(4);
            got.extend_from_slice(&bytes[cursor..cursor + n]);
            out.advance(n);
        }
        assert_eq!(got, b"0123456789\nab\n");
    }

    #[test]
    fn coalesced_peek_spans_entries_and_respects_cursor() {
        let out = SessionOut::new();
        out.send_reply("AA".into());
        out.send_reply("BB".into());
        out.send_reply("CC".into());
        out.advance(1); // "A" already on the wire
        let mut scratch = Vec::new();
        assert_eq!(out.peek_coalesced(&mut scratch, 5), 5);
        assert_eq!(scratch, b"A\nBB\n");
        out.advance(5);
        assert_eq!(out.peek_coalesced(&mut scratch, 64), 3);
        assert_eq!(scratch, b"CC\n");
    }

    #[test]
    fn closed_queue_accepts_nothing() {
        let out = SessionOut::new();
        out.close();
        out.send_reply("late".into());
        assert!(out.try_push("late push".into(), 4), "no resync for corpses");
        out.force_push("late force".into());
        assert!(out.is_drained());
        assert!(out.next_chunk().is_none());
    }

    #[test]
    fn framer_reassembles_across_arbitrary_chunks() {
        let mut framer = LineFramer::new(1024);
        for b in b"PING\nSTA" {
            framer.feed(&[*b]);
        }
        assert_eq!(framer.next_line(), Some(FramedLine::Line("PING".into())));
        assert_eq!(framer.next_line(), None);
        framer.feed(b"TS\n");
        assert_eq!(framer.next_line(), Some(FramedLine::Line("STATS".into())));
    }

    #[test]
    fn framer_splits_utf8_across_chunks() {
        let mut framer = LineFramer::new(1024);
        let line = "PING é✓\n".as_bytes();
        let (a, b) = line.split_at(6); // mid-é
        framer.feed(a);
        assert_eq!(framer.next_line(), None);
        framer.feed(b);
        assert_eq!(framer.next_line(), Some(FramedLine::Line("PING é✓".into())));
    }

    #[test]
    fn framer_rejects_oversized_then_recovers() {
        let mut framer = LineFramer::new(8);
        framer.feed(b"0123456789abcdef"); // oversized, no terminator yet
        assert_eq!(framer.next_line(), Some(FramedLine::TooLong));
        assert_eq!(framer.next_line(), None);
        framer.feed(b"junk junk\nPING\n");
        assert_eq!(framer.next_line(), Some(FramedLine::Line("PING".into())));
    }

    #[test]
    fn framer_rejects_oversized_complete_line_once() {
        let mut framer = LineFramer::new(4);
        framer.feed(b"toolongline\nok\n");
        assert_eq!(framer.next_line(), Some(FramedLine::TooLong));
        assert_eq!(framer.next_line(), Some(FramedLine::Line("ok".into())));
    }

    #[test]
    fn framer_classifies_non_utf8() {
        let mut framer = LineFramer::new(64);
        framer.feed(&[0xFF, 0xFE, b'\n', b'o', b'k', b'\n']);
        assert_eq!(framer.next_line(), Some(FramedLine::NotUtf8));
        assert_eq!(framer.next_line(), Some(FramedLine::Line("ok".into())));
    }

    #[test]
    fn liveness_tracks_latest_touch() {
        let liv = Liveness::new();
        liv.touch();
        assert!(liv.idle() < Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(30));
        assert!(liv.idle() >= Duration::from_millis(20));
        liv.touch();
        assert!(liv.idle() < Duration::from_millis(20));
    }
}
