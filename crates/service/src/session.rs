//! Per-connection session plumbing.
//!
//! Each accepted connection gets **two** threads and **one** queue:
//!
//! * a *reader* thread that parses request lines and feeds them to the
//!   single engine-owner thread over the service's bounded inbox;
//! * a *writer* thread that drains this session's [`SessionOut`] queue to
//!   the socket;
//! * the [`SessionOut`] queue itself — one ordered lane shared by replies
//!   and pushes, so a client always observes every push enqueued before a
//!   reply *before* that reply.
//!
//! Both threads run on the [`Transport`](crate::fault::Transport) seam,
//! not on `TcpStream` directly, so the fault-injection layer can wrap the
//! socket (see [`crate::fault`]).
//!
//! **Backpressure policy** (drop-to-snapshot): replies are never dropped,
//! but the number of queued *push* lines is capped. When the engine tries
//! to push a delta to a session whose cap is reached — a consumer reading
//! slower than its subscriptions produce — every queued push is discarded
//! and the engine re-baselines the session with a `RESYNC` marker followed
//! by a fresh `SNAPSHOT` per subscription. The slow client loses
//! intermediate states, never the current one, and server memory stays
//! bounded per session.
//!
//! **Failure policy** (see the README's *Failure model*):
//!
//! * *Idle reaping* — with an idle deadline configured, reads time out in
//!   short slices and a connection with no traffic in either direction for
//!   the deadline is torn down (counted in `STATS reaped=`). Liveness is
//!   bidirectional: a pure subscriber is kept alive by its own delta
//!   stream; a connection silent in both directions must `PING`.
//! * *Write deadline* — a write that blocks past the configured deadline
//!   (client stopped reading, socket buffers full) poisons the session
//!   instead of wedging the writer thread forever.
//! * *Overload shedding* — when the engine inbox stays full past the busy
//!   deadline and this session has no earlier request still in flight, the
//!   reader answers `ERR busy` itself instead of blocking. The shed
//!   request never reached the engine, so the client can always retry it.
//! * *Leak-free teardown* — whichever half dies first, the other is
//!   unblocked: the writer shuts the socket down on any write failure
//!   (waking a blocked reader into EOF), and the engine's teardown closes
//!   the queue (draining then shutting down a healthy writer). Exactly one
//!   `Gone` event reaches the engine, which drops the session's
//!   `DeltaRouter` subscriptions.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::fault::Transport;
use crate::protocol::{parse_request, ErrCode, Reply};
use crate::service::{Event, Metrics};

/// Identifier of one accepted connection, unique within a service run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A queued outbound line, classed by droppability.
enum OutLine {
    /// A reply to a request — never dropped.
    Reply(String),
    /// An asynchronous push — dropped wholesale on overflow.
    Push(String),
}

#[derive(Default)]
struct OutState {
    queue: VecDeque<OutLine>,
    /// Number of `Push` lines currently queued.
    pushes: usize,
    /// No further lines will be accepted; the writer drains and exits.
    closed: bool,
}

/// The outbound side of one session: an ordered reply/push queue drained
/// by the session's writer thread.
#[derive(Default)]
pub struct SessionOut {
    state: Mutex<OutState>,
    ready: Condvar,
}

impl SessionOut {
    /// Locks the queue state, recovering from poisoning: the queue's
    /// push/pop operations keep it structurally consistent even if a
    /// holder panicked mid-update, and losing one session's backlog is
    /// strictly better than wedging every thread that touches it.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, OutState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates an empty open queue.
    pub fn new() -> SessionOut {
        SessionOut::default()
    }

    /// Enqueues a reply line. Replies are exempt from the push cap — their
    /// volume is bounded by the client's own (flow-controlled) request
    /// rate, so they cannot grow without bound.
    pub fn send_reply(&self, line: String) {
        let mut st = self.lock_state();
        if st.closed {
            return;
        }
        st.queue.push_back(OutLine::Reply(line));
        self.ready.notify_one();
    }

    /// Tries to enqueue a push line under a cap of `cap` pending pushes.
    ///
    /// On overflow every queued push is discarded (replies are retained in
    /// order) and `false` is returned: the caller must re-baseline the
    /// session with `RESYNC` + `SNAPSHOT` pushes via
    /// [`SessionOut::force_push`].
    pub fn try_push(&self, line: String, cap: usize) -> bool {
        let mut st = self.lock_state();
        if st.closed {
            // A vanishing session needs no resync.
            return true;
        }
        if st.pushes >= cap {
            st.queue.retain(|l| matches!(l, OutLine::Reply(_)));
            st.pushes = 0;
            return false;
        }
        st.queue.push_back(OutLine::Push(line));
        st.pushes += 1;
        self.ready.notify_one();
        true
    }

    /// Enqueues a push line bypassing the cap — used only for the `RESYNC`
    /// marker and its snapshots, whose volume is bounded by the session's
    /// subscription count.
    pub fn force_push(&self, line: String) {
        let mut st = self.lock_state();
        if st.closed {
            return;
        }
        st.queue.push_back(OutLine::Push(line));
        st.pushes += 1;
        self.ready.notify_one();
    }

    /// Marks the queue closed: already-queued lines are still delivered,
    /// then the writer thread shuts the socket down and exits.
    pub fn close(&self) {
        let mut st = self.lock_state();
        st.closed = true;
        self.ready.notify_one();
    }

    /// Blocks until at least one line is available (draining up to `max`
    /// of them into `batch`) or the queue is closed and empty (returns
    /// `false`).
    fn pop_into(&self, batch: &mut Vec<String>, max: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if !st.queue.is_empty() {
                while batch.len() < max {
                    match st.queue.pop_front() {
                        Some(OutLine::Reply(l)) => batch.push(l),
                        Some(OutLine::Push(l)) => {
                            st.pushes -= 1;
                            batch.push(l);
                        }
                        None => break,
                    }
                }
                return true;
            }
            if st.closed {
                return false;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Number of currently queued push lines (test/stats hook).
    pub fn queued_pushes(&self) -> usize {
        self.lock_state().pushes
    }
}

/// Bidirectional last-activity clock of one connection, shared by its
/// reader (inbound bytes) and writer (successful flushes).
pub(crate) struct Liveness {
    epoch: Instant,
    last_ms: AtomicU64,
}

impl Liveness {
    pub(crate) fn new() -> Liveness {
        Liveness {
            epoch: Instant::now(),
            last_ms: AtomicU64::new(0),
        }
    }

    /// Records activity now.
    pub(crate) fn touch(&self) {
        let ms = self.epoch.elapsed().as_millis() as u64;
        self.last_ms.fetch_max(ms, Ordering::Relaxed);
    }

    /// Time since the last recorded activity in either direction.
    pub(crate) fn idle(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }
}

/// Reader-side deadlines, copied out of the service configuration.
#[derive(Clone, Copy)]
pub(crate) struct ReaderKnobs {
    /// Tear the connection down after this much bidirectional silence.
    pub(crate) idle: Option<Duration>,
    /// How long a full engine inbox may stall a request before the reader
    /// sheds it with `ERR busy`.
    pub(crate) busy: Duration,
}

/// Body of a session's writer thread: drains the queue to the socket in
/// batches (one flush per drain, not per line). On any write failure —
/// including a configured write deadline expiring — the queue is closed
/// **and the socket is shut down**, so a reader blocked on the same
/// connection wakes into EOF and the engine learns of the death; leaving
/// the socket open here is what used to leak the reader/subscriptions of
/// a client that vanished without closing its write half.
pub(crate) fn run_writer(
    transport: Box<dyn Transport>,
    out: &SessionOut,
    liveness: &Liveness,
    write_timeout: Option<Duration>,
) {
    if let Some(t) = write_timeout {
        let _ = transport.set_write_timeout(Some(t));
    }
    let mut writer = BufWriter::new(transport);
    let mut batch = Vec::new();
    while out.pop_into(&mut batch, 256) {
        let mut dead = false;
        for line in batch.drain(..) {
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                dead = true;
                break;
            }
        }
        if dead || writer.flush().is_err() {
            out.close();
            writer.get_ref().shutdown_both();
            return;
        }
        liveness.touch();
    }
    // Closed and fully drained: also unblocks this session's reader.
    let _ = writer.flush();
    writer.get_ref().shutdown_both();
}

/// Hard cap on one request line, keeping per-connection reader memory
/// bounded against a peer that never sends `\n`. Generous: a `TICK` batch
/// of ~25k 2-d tuples still fits.
pub(crate) const MAX_REQUEST_LINE: u64 = 1 << 20;

/// Outcome of reading one request line.
enum Line {
    /// A complete UTF-8 line (terminator included).
    Req(String),
    /// Clean EOF (or EOF mid-line).
    Eof,
    /// The line exceeded [`MAX_REQUEST_LINE`]; its remainder is unread.
    TooLong,
    /// A complete line that is not valid UTF-8.
    NotUtf8,
    /// The idle deadline expired with no traffic in either direction.
    Idle,
    /// The socket failed.
    Dead,
}

/// Reads one `\n`-terminated line of at most [`MAX_REQUEST_LINE`] bytes,
/// resuming across read-timeout slices (partial bytes stay in `buf`) and
/// watching the shared idle clock between slices.
fn read_request_line(
    reader: &mut BufReader<Box<dyn Transport>>,
    buf: &mut Vec<u8>,
    liveness: &Liveness,
    idle: Option<Duration>,
) -> Line {
    use std::io::{ErrorKind, Read};
    buf.clear();
    loop {
        let before = buf.len();
        let room = MAX_REQUEST_LINE - buf.len() as u64;
        match reader.by_ref().take(room).read_until(b'\n', buf) {
            Ok(0) => return Line::Eof,
            Ok(_) => {
                liveness.touch();
                if buf.last() == Some(&b'\n') {
                    return match std::str::from_utf8(buf) {
                        Ok(s) => Line::Req(s.to_string()),
                        Err(_) => Line::NotUtf8,
                    };
                }
                if buf.len() as u64 >= MAX_REQUEST_LINE {
                    return Line::TooLong;
                }
                // No newline, no EOF, below the cap: the take() adaptor
                // drained a buffer boundary; keep reading.
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A timed-out read_until has already pushed any bytes it
                // saw into `buf`; never clear it between slices.
                if buf.len() > before {
                    liveness.touch();
                }
                if let Some(limit) = idle {
                    if liveness.idle() >= limit {
                        return Line::Idle;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Line::Dead,
        }
    }
}

/// Consumes the unread remainder of an oversized line (bounded memory:
/// 4 KiB at a time) so the session can continue at the next line. Returns
/// `false` if the connection died or went idle first.
fn discard_line_remainder(
    reader: &mut BufReader<Box<dyn Transport>>,
    liveness: &Liveness,
    idle: Option<Duration>,
) -> bool {
    use std::io::{ErrorKind, Read};
    let mut junk = Vec::with_capacity(4096);
    loop {
        junk.clear();
        match reader.by_ref().take(4096).read_until(b'\n', &mut junk) {
            Ok(0) => return false,
            Ok(_) => {
                liveness.touch();
                if junk.last() == Some(&b'\n') {
                    return true;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if let Some(limit) = idle {
                    if liveness.idle() >= limit {
                        return false;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Forwards one event to the engine inbox with overload shedding.
///
/// The in-flight counter is the reply-ordering guard: the reader
/// increments it *before* attempting the send, the engine decrements it
/// *after* enqueuing the corresponding reply. The reader may therefore
/// answer `ERR busy` out-of-band only when the inbox has been full past
/// the busy deadline **and** its own token is the only one outstanding —
/// at that point every earlier request on this session has already been
/// replied to, so the one-reply-per-request-in-order contract holds. A
/// shed request never reached the engine, making a client retry safe.
///
/// Returns `false` only when the engine is gone (service shut down).
/// `verb` labels a shed in the per-verb breakdown (`parse` for lines
/// that never parsed into a request).
fn forward(
    event: Event,
    verb: &'static str,
    inbox: &SyncSender<Event>,
    inflight: &AtomicUsize,
    out: &SessionOut,
    busy: Duration,
    metrics: &Metrics,
) -> bool {
    inflight.fetch_add(1, Ordering::SeqCst);
    let mut ev = event;
    let mut deadline: Option<Instant> = None;
    loop {
        match inbox.try_send(ev) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => {
                inflight.fetch_sub(1, Ordering::SeqCst);
                return false;
            }
            Err(TrySendError::Full(back)) => {
                ev = back;
                let now = Instant::now();
                let limit = *deadline.get_or_insert(now + busy);
                if now >= limit && inflight.load(Ordering::SeqCst) == 1 {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    metrics.record_shed(verb);
                    out.send_reply(
                        Reply::Err {
                            code: ErrCode::Busy,
                            message: "server inbox full; request dropped, retry later".into(),
                        }
                        .to_string(),
                    );
                    return true;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// Body of a session's reader thread: parses request lines and forwards
/// them to the engine-owner thread. Sends [`Event::Gone`] exactly once on
/// EOF, socket error, idle expiry, or service shutdown. Oversized and
/// non-UTF-8 lines are answered with `ERR parse` and the session
/// continues.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_reader(
    transport: Box<dyn Transport>,
    sid: SessionId,
    inbox: &SyncSender<Event>,
    out: &SessionOut,
    inflight: &AtomicUsize,
    liveness: &Liveness,
    knobs: ReaderKnobs,
    metrics: &Metrics,
) {
    if let Some(idle) = knobs.idle {
        // Short slices so the idle clock is polled well below the
        // deadline; the exact slice only bounds reaping latency.
        let slice = (idle / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
        let _ = transport.set_read_timeout(Some(slice));
    }
    let mut reader = BufReader::new(transport);
    let mut buf = Vec::new();
    loop {
        match read_request_line(&mut reader, &mut buf, liveness, knobs.idle) {
            Line::Eof | Line::Dead => break,
            Line::Idle => {
                metrics.reaped.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Line::TooLong => {
                let bad = Event::Bad(
                    sid,
                    format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                );
                if !forward(bad, "parse", inbox, inflight, out, knobs.busy, metrics)
                    || !discard_line_remainder(&mut reader, liveness, knobs.idle)
                {
                    break;
                }
            }
            Line::NotUtf8 => {
                let bad = Event::Bad(sid, "request line is not UTF-8".into());
                if !forward(bad, "parse", inbox, inflight, out, knobs.busy, metrics) {
                    break;
                }
            }
            Line::Req(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let (event, verb) = match parse_request(trimmed) {
                    Ok(req) => {
                        let verb = req.verb();
                        (Event::Request(sid, req), verb)
                    }
                    Err(msg) => (Event::Bad(sid, msg), "parse"),
                };
                if !forward(event, verb, inbox, inflight, out, knobs.busy, metrics) {
                    break;
                }
            }
        }
    }
    let _ = inbox.send(Event::Gone(sid));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_survive_push_overflow() {
        let out = SessionOut::new();
        out.send_reply("OK q0".into());
        assert!(out.try_push("DELTA 1".into(), 2));
        assert!(out.try_push("DELTA 2".into(), 2));
        // Third push overflows the cap of 2: pushes dropped, replies kept.
        assert!(!out.try_push("DELTA 3".into(), 2));
        out.send_reply("OK q1".into());
        out.force_push("RESYNC 1".into());
        out.close();

        let mut drained = Vec::new();
        while out.pop_into(&mut drained, 64) {}
        assert_eq!(drained, vec!["OK q0", "OK q1", "RESYNC 1"]);
    }

    #[test]
    fn pop_blocks_until_line_or_close() {
        use std::sync::Arc;
        let out = Arc::new(SessionOut::new());
        let clone = Arc::clone(&out);
        let handle = std::thread::spawn(move || {
            let mut batch = Vec::new();
            let got = clone.pop_into(&mut batch, 8);
            (got, batch)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        out.send_reply("hello".into());
        let (got, batch) = handle.join().unwrap();
        assert!(got);
        assert_eq!(batch, vec!["hello"]);

        out.close();
        let mut rest = Vec::new();
        assert!(!out.pop_into(&mut rest, 8), "closed and empty");
    }

    #[test]
    fn closed_queue_accepts_nothing() {
        let out = SessionOut::new();
        out.close();
        out.send_reply("late".into());
        assert!(out.try_push("late push".into(), 4), "no resync for corpses");
        out.force_push("late force".into());
        let mut batch = Vec::new();
        assert!(!out.pop_into(&mut batch, 8));
        assert!(batch.is_empty());
    }

    #[test]
    fn liveness_tracks_latest_touch() {
        let liv = Liveness::new();
        liv.touch();
        assert!(liv.idle() < Duration::from_millis(100));
        std::thread::sleep(Duration::from_millis(30));
        assert!(liv.idle() >= Duration::from_millis(20));
        liv.touch();
        assert!(liv.idle() < Duration::from_millis(20));
    }
}
