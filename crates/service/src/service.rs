//! The serving event loop.
//!
//! One [`Service`] owns one [`MonitorServer`] and any number of TCP
//! clients. Sockets are driven by the [`crate::reactor`] event loop (one
//! thread owning every connection); all engine access is serialized
//! through
//! a single **engine-owner thread** fed by a bounded inbox channel. The
//! owner thread:
//!
//! 1. executes requests in arrival order, replying on the issuing
//!    session's queue;
//! 2. accumulates `TICK`/`TICKAT` arrivals and flushes them as **one**
//!    `tick_at` per processing cycle — immediately under
//!    [`TickPolicy::Manual`], or once per wall-clock interval under
//!    [`TickPolicy::Interval`], so a burst of ingest requests inside one
//!    interval becomes a single engine cycle;
//! 3. drains the cycle's [`tkm_core::ResultDelta`]s, encodes each one
//!    **once** into a shared byte payload, and hands the payloads to a
//!    pool of **fan-out shard workers** (queries partitioned by id, like
//!    the engine's own `SharedParallelMonitor` shards) that enqueue the
//!    shared bytes onto every subscribed session, applying the
//!    drop-to-snapshot backpressure policy to slow consumers. The owner
//!    waits for every shard's report before answering the tick — the
//!    barrier that keeps pushes ordered before the tick's own reply.

use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::distrib::{CoordState, Role, SiteState};
use crate::fault::FaultSchedule;
use crate::protocol::{ErrCode, Family, Push, QuerySpec, Reply, Request};
use crate::reactor::{Reactor, ReactorCfg, Waker};
use crate::session::{line_bytes, SessionId, SessionOut};
use tkm_common::{QueryId, Rect, Result, ScoreFn, Scored, Timestamp, TkmError};
use tkm_core::{DeltaRouter, MonitorServer, Query, ResultDelta, ServerConfig};

/// When queued arrivals are flushed into an engine cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickPolicy {
    /// Every `TICK`/`TICKAT` request flushes immediately — deterministic,
    /// the mode used by tests and the loopback bench.
    Manual,
    /// Arrivals queue up; a timer flushes them as one `tick_at` per
    /// interval. `TICKAT` is rejected in this mode (the timer owns the
    /// clock).
    Interval(Duration),
}

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The engine configuration. Delta tracking is forced on — the serving
    /// layer is built around per-tick result changes.
    pub server: ServerConfig,
    /// When queued arrivals become engine cycles.
    pub tick: TickPolicy,
    /// Per-session cap on queued push lines before the drop-to-snapshot
    /// policy kicks in.
    pub push_queue: usize,
    /// Bound of the engine-owner inbox (requests in flight across all
    /// sessions); senders block when full, back-pressuring readers — until
    /// the [`ServiceConfig::busy_timeout`] shedding deadline.
    pub inbox: usize,
    /// Tear down a connection with no traffic in either direction for
    /// this long (`None` = never reap). Silent clients stay alive by
    /// sending `PING`.
    pub idle_timeout: Option<Duration>,
    /// Tear down a session whose queued output has made no progress for
    /// this long (`None` = wait forever). A peer that stops draining its
    /// socket produces no write readiness, so the reactor enforces this
    /// deadline from its timer pass, not from `epoll`.
    pub write_timeout: Option<Duration>,
    /// How long a full engine inbox may stall a request before the
    /// session sheds it with `ERR busy` (only when no earlier request of
    /// the same session is still awaiting its reply).
    pub busy_timeout: Duration,
    /// Fault-injection schedule wrapped around accepted connections
    /// (tests and the chaos bench; `None` in production).
    pub faults: Option<FaultSchedule>,
    /// The part this server plays in a deployment (see
    /// [`crate::distrib`]); standalone unless configured otherwise.
    pub role: Role,
    /// Number of fan-out shard workers (queries are partitioned over them
    /// by id, mirroring the engine's shard layout). `0` (the default)
    /// follows the engine's own shard count.
    pub fanout_shards: usize,
}

impl ServiceConfig {
    /// A manual-tick service over the given engine configuration, with a
    /// 1024-line push cap, a 1024-event inbox, no idle/write deadlines,
    /// a 250 ms shedding deadline, and no fault injection.
    pub fn new(server: ServerConfig) -> ServiceConfig {
        ServiceConfig {
            server: server.with_delta_tracking(true),
            tick: TickPolicy::Manual,
            push_queue: 1024,
            inbox: 1024,
            idle_timeout: None,
            write_timeout: None,
            busy_timeout: Duration::from_millis(250),
            faults: None,
            role: Role::Standalone,
            fanout_shards: 0,
        }
    }

    /// Selects the tick policy.
    pub fn with_tick(mut self, tick: TickPolicy) -> ServiceConfig {
        self.tick = tick;
        self
    }

    /// Selects the per-session push cap (minimum 1).
    pub fn with_push_queue(mut self, cap: usize) -> ServiceConfig {
        self.push_queue = cap.max(1);
        self
    }

    /// Selects the idle-reaping deadline.
    pub fn with_idle_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.idle_timeout = Some(deadline);
        self
    }

    /// Selects the per-write deadline.
    pub fn with_write_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.write_timeout = Some(deadline);
        self
    }

    /// Selects the overload-shedding deadline.
    pub fn with_busy_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.busy_timeout = deadline;
        self
    }

    /// Wraps accepted connections in a fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> ServiceConfig {
        self.faults = Some(faults);
        self
    }

    /// Selects the deployment role (site or coordinator).
    pub fn with_role(mut self, role: Role) -> ServiceConfig {
        self.role = role;
        self
    }

    /// Selects the fan-out shard-worker count (`0` = follow the engine's
    /// shard count).
    pub fn with_fanout_shards(mut self, shards: usize) -> ServiceConfig {
        self.fanout_shards = shards;
        self
    }

    /// The resolved fan-out worker count.
    pub(crate) fn resolved_fanout_shards(&self) -> usize {
        if self.fanout_shards == 0 {
            self.server.shards.max(1)
        } else {
            self.fanout_shards
        }
    }
}

/// Verbs a session can shed with `ERR busy`, in the order their counters
/// appear in [`Metrics::shed_by_verb`]; `parse` stands for lines that
/// never parsed into a verb at all.
pub(crate) const SHED_VERBS: [&str; 14] = [
    "REGISTER",
    "UNREGISTER",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "SNAPSHOT",
    "TICK",
    "TICKAT",
    "STATS",
    "PING",
    "SITE",
    "SITEDELTA",
    "SITETICK",
    "QUIT",
    "parse",
];

/// Robustness counters shared by the session threads (which record) and
/// the engine owner (which reports them via `STATS`).
pub(crate) struct Metrics {
    /// Connections torn down by the idle deadline.
    pub(crate) reaped: AtomicU64,
    /// Requests answered `ERR busy` without reaching the engine.
    pub(crate) shed: AtomicU64,
    /// The same sheds broken down per verb (indexed like [`SHED_VERBS`]),
    /// so shedding of site uplink traffic is distinguishable from
    /// shedding of subscriber traffic.
    pub(crate) shed_by_verb: [AtomicU64; SHED_VERBS.len()],
    /// Faults injected by the configured [`FaultSchedule`] (behind an
    /// `Arc` so fault deciders can tally into it directly).
    pub(crate) faults: Arc<AtomicU64>,
    /// `DELTA` payload encodings performed — exactly one per routed
    /// delta per tick, **not** one per subscriber (the encode-once
    /// invariant the fan-out tests assert against `STATS encodes=`).
    pub(crate) encodes: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            reaped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_by_verb: std::array::from_fn(|_| AtomicU64::new(0)),
            faults: Arc::new(AtomicU64::new(0)),
            encodes: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Tallies one `ERR busy` shed of `verb` (both the total and the
    /// per-verb slot).
    pub(crate) fn record_shed(&self, verb: &str) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = SHED_VERBS.iter().position(|v| *v == verb) {
            self.shed_by_verb[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An event consumed by the engine-owner thread.
pub(crate) enum Event {
    /// A new connection: its id, its outbound queue, and its in-flight
    /// request counter (see `session::forward` for the shedding
    /// contract).
    Connect(SessionId, Arc<SessionOut>, Arc<AtomicUsize>),
    /// A parsed request from a session.
    Request(SessionId, Request),
    /// An unparseable line from a session (the parse error).
    Bad(SessionId, String),
    /// A session's reader hit EOF/error; tear the session down.
    Gone(SessionId),
    /// Timer fired (interval mode): flush queued arrivals.
    Flush,
    /// Stop the event loop and close every session.
    Shutdown,
}

/// A running TCP serving layer over one [`MonitorServer`].
///
/// Dropping a `Service` without calling [`Service::shutdown`] leaves the
/// background threads running detached; call `shutdown` for an orderly
/// stop.
pub struct Service {
    addr: SocketAddr,
    inbox: SyncSender<Event>,
    stopping: Arc<AtomicBool>,
    waker: Arc<Waker>,
    threads: Vec<JoinHandle<()>>,
}

impl Service {
    /// Binds a listener and spawns the accept + engine (+ timer) threads.
    ///
    /// Bind to port 0 to let the OS choose; [`Service::local_addr`] reports
    /// the actual endpoint.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> Result<Service> {
        let server = MonitorServer::new(cfg.server.with_delta_tracking(true))?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| TkmError::InvalidParameter(format!("bind failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TkmError::Internal(format!("local_addr: {e}")))?;
        let (tx, rx) = std::sync::mpsc::sync_channel(cfg.inbox.max(1));
        let stopping = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let mut threads = Vec::new();

        let (mut reactor, waker) = Reactor::new(
            listener,
            tx.clone(),
            Arc::clone(&stopping),
            Arc::clone(&metrics),
            ReactorCfg {
                idle: cfg.idle_timeout,
                write_timeout: cfg.write_timeout,
                busy: cfg.busy_timeout,
                faults: cfg.faults.clone(),
            },
        )
        .map_err(|e| TkmError::Internal(format!("reactor setup: {e}")))?;
        threads.push(std::thread::spawn(move || reactor.run()));

        if let TickPolicy::Interval(period) = cfg.tick {
            let timer_tx = tx.clone();
            let timer_stop = Arc::clone(&stopping);
            threads.push(std::thread::spawn(move || {
                // Deadline-based so the cadence tracks `period` exactly,
                // sleeping in short slices so shutdown is not held hostage
                // by a long tick interval.
                let slice = Duration::from_millis(25);
                let mut next = Instant::now() + period;
                loop {
                    if timer_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(slice));
                        continue;
                    }
                    next += period;
                    if timer_tx.send(Event::Flush).is_err() {
                        return;
                    }
                }
            }));
        }

        let role = match cfg.role.clone() {
            Role::Standalone => RoleState::Standalone,
            Role::Coordinator => RoleState::Coordinator(CoordState::new()),
            Role::Site(site) => RoleState::Site(SiteState::new(site)),
        };
        let pool = FanoutPool::spawn(cfg.resolved_fanout_shards());
        let mut owner = EngineOwner {
            server,
            cfg,
            role,
            sessions: BTreeMap::new(),
            router: DeltaRouter::new(),
            pool,
            pending: Vec::new(),
            stats: Counters::default(),
            metrics,
        };
        threads.push(std::thread::spawn(move || owner.run(&rx)));

        Ok(Service {
            addr: local,
            inbox: tx,
            stopping,
            waker,
            threads,
        })
    }

    /// The address the service listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every session, and joins the reactor /
    /// timer / engine / fan-out threads. The reactor performs one final
    /// best-effort flush of queued output before closing sockets, so
    /// delivery of already-queued lines is best-effort on shutdown.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        let _ = self.inbox.send(Event::Shutdown);
        self.waker.notify();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A message to one fan-out shard worker.
enum ShardMsg {
    /// A session subscribed to a query this shard owns.
    Sub(QueryId, SessionId, Arc<SessionOut>),
    /// A session dropped one subscription.
    Unsub(QueryId, SessionId),
    /// A query was unregistered: drop all of its subscriptions.
    DropQuery(QueryId),
    /// One tick's encoded payloads for this shard's queries: enqueue the
    /// shared bytes onto every subscriber, then report who overflowed.
    Fanout {
        lines: Vec<(QueryId, Arc<[u8]>)>,
        cap: usize,
    },
}

/// The fan-out shard workers: queries are partitioned over `shards`
/// persistent threads by id (`q.0 % shards`, the same layout the
/// engine's `SharedParallelMonitor` uses), so one tick's delta routing
/// runs shard-parallel while each query's payload bytes stay shared
/// (`Arc`) across all of its subscribers.
struct FanoutPool {
    txs: Vec<Sender<ShardMsg>>,
    report_rx: Receiver<Vec<SessionId>>,
    workers: Vec<JoinHandle<()>>,
}

impl FanoutPool {
    fn spawn(shards: usize) -> FanoutPool {
        let shards = shards.max(1);
        let (report_tx, report_rx) = std::sync::mpsc::channel();
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::channel::<ShardMsg>();
            let report = report_tx.clone();
            txs.push(tx);
            workers.push(std::thread::spawn(move || {
                let mut subs: HashMap<QueryId, Vec<(SessionId, Arc<SessionOut>)>> = HashMap::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ShardMsg::Sub(q, sid, out) => {
                            let list = subs.entry(q).or_default();
                            if !list.iter().any(|(s, _)| *s == sid) {
                                list.push((sid, out));
                            }
                        }
                        ShardMsg::Unsub(q, sid) => {
                            if let Some(list) = subs.get_mut(&q) {
                                list.retain(|(s, _)| *s != sid);
                                if list.is_empty() {
                                    subs.remove(&q);
                                }
                            }
                        }
                        ShardMsg::DropQuery(q) => {
                            subs.remove(&q);
                        }
                        ShardMsg::Fanout { lines, cap } => {
                            // The overflow *latch* inside try_push_shared
                            // makes the skip cross-shard safe: once any
                            // shard overflows a session, every later push
                            // to it — from this shard or a concurrent one
                            // — is refused until the engine owner clears
                            // the latch right before the RESYNC baseline,
                            // so no delta lands between the drop and the
                            // resync. The local list only dedups this
                            // shard's report.
                            let mut resynced: Vec<SessionId> = Vec::new();
                            for (q, bytes) in &lines {
                                let Some(list) = subs.get(q) else { continue };
                                for (sid, out) in list {
                                    if resynced.contains(sid) {
                                        continue;
                                    }
                                    if !out.try_push_shared(Arc::clone(bytes), cap) {
                                        resynced.push(*sid);
                                    }
                                }
                            }
                            if report.send(resynced).is_err() {
                                return;
                            }
                        }
                    }
                }
            }));
        }
        FanoutPool {
            txs,
            report_rx,
            workers,
        }
    }

    fn shards(&self) -> usize {
        self.txs.len()
    }

    fn shard_of(&self, q: QueryId) -> usize {
        (q.0 % self.txs.len() as u64) as usize
    }

    fn subscribe(&self, q: QueryId, sid: SessionId, out: Arc<SessionOut>) {
        let _ = self.txs[self.shard_of(q)].send(ShardMsg::Sub(q, sid, out));
    }

    fn unsubscribe(&self, q: QueryId, sid: SessionId) {
        let _ = self.txs[self.shard_of(q)].send(ShardMsg::Unsub(q, sid));
    }

    fn drop_query(&self, q: QueryId) {
        let _ = self.txs[self.shard_of(q)].send(ShardMsg::DropQuery(q));
    }

    /// Dispatches one tick's encoded payloads to their owning shards and
    /// **waits for every shard's overflow report** — the barrier that
    /// keeps this tick's pushes ordered before the tick's reply and
    /// before any later subscribe baseline. Returns the deduplicated
    /// sessions that overflowed their push cap.
    fn fan_out(&self, lines: Vec<(QueryId, Arc<[u8]>)>, cap: usize) -> Vec<SessionId> {
        let mut per_shard: Vec<Vec<(QueryId, Arc<[u8]>)>> = vec![Vec::new(); self.txs.len()];
        for (q, bytes) in lines {
            per_shard[self.shard_of(q)].push((q, bytes));
        }
        let mut dispatched = 0usize;
        for (tx, lines) in self.txs.iter().zip(per_shard) {
            if lines.is_empty() {
                continue;
            }
            if tx.send(ShardMsg::Fanout { lines, cap }).is_ok() {
                dispatched += 1;
            }
        }
        let mut resynced: Vec<SessionId> = Vec::new();
        for _ in 0..dispatched {
            let Ok(report) = self.report_rx.recv() else {
                break;
            };
            resynced.extend(report);
        }
        resynced.sort_unstable();
        resynced.dedup();
        resynced
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        self.txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[derive(Default)]
struct Counters {
    ticks: u64,
    arrivals: u64,
    deltas: u64,
    resyncs: u64,
    tick_errors: u64,
}

/// The engine owner's view of one live session.
struct SessionHandle {
    out: Arc<SessionOut>,
    /// Requests accepted by the reader but not yet replied to; the engine
    /// decrements it *after* enqueuing each reply (shedding contract).
    inflight: Arc<AtomicUsize>,
}

/// Role-specific state carried by the engine owner (a separate field from
/// the engine so site/coordinator code can borrow both disjointly).
enum RoleState {
    Standalone,
    Coordinator(CoordState),
    Site(SiteState),
}

struct EngineOwner {
    server: MonitorServer,
    cfg: ServiceConfig,
    role: RoleState,
    sessions: BTreeMap<SessionId, SessionHandle>,
    router: DeltaRouter<SessionId>,
    /// The fan-out shard workers mirroring `router` (sharded by query
    /// id); delta routing runs there, control verbs stay here.
    pool: FanoutPool,
    /// Arrivals queued since the last flush (flat coordinate buffer).
    pending: Vec<f64>,
    stats: Counters,
    metrics: Arc<Metrics>,
}

impl EngineOwner {
    fn run(&mut self, rx: &Receiver<Event>) {
        let started = Instant::now();
        while let Ok(event) = rx.recv() {
            match event {
                Event::Connect(sid, out, inflight) => {
                    self.sessions.insert(sid, SessionHandle { out, inflight });
                }
                Event::Request(sid, req) => {
                    let quitting = matches!(req, Request::Quit);
                    if quitting {
                        self.reply(sid, &Reply::OkBye);
                    } else {
                        let reply = self.execute(sid, req, started);
                        self.reply(sid, &reply);
                    }
                    self.acknowledge(sid);
                    if quitting {
                        self.teardown(sid);
                    }
                }
                Event::Bad(sid, msg) => {
                    self.reply(
                        sid,
                        &Reply::Err {
                            code: ErrCode::Parse,
                            message: msg,
                        },
                    );
                    self.acknowledge(sid);
                }
                Event::Gone(sid) => self.teardown(sid),
                Event::Flush => {
                    if self.flush(None).is_err() {
                        self.stats.tick_errors += 1;
                    }
                }
                Event::Shutdown => break,
            }
        }
        for handle in self.sessions.values() {
            handle.out.close();
        }
        // Connects that were still queued behind the Shutdown event would
        // otherwise leave the reactor holding sockets that can never be
        // adopted; closing their queues lets it shut them down.
        while let Ok(event) = rx.try_recv() {
            if let Event::Connect(_, out, _) = event {
                out.close();
            }
        }
    }

    fn reply(&self, sid: SessionId, reply: &Reply) {
        if let Some(handle) = self.sessions.get(&sid) {
            handle.out.send_reply(reply.to_string());
        }
    }

    /// Releases one in-flight token *after* the corresponding reply was
    /// enqueued — the ordering that makes reader-side `ERR busy` shedding
    /// safe (see `session::forward`).
    fn acknowledge(&self, sid: SessionId) {
        if let Some(handle) = self.sessions.get(&sid) {
            handle.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn teardown(&mut self, sid: SessionId) {
        for q in self.router.drop_subscriber(&sid) {
            self.pool.unsubscribe(q, sid);
        }
        if let Some(handle) = self.sessions.remove(&sid) {
            handle.out.close();
        }
        // If the dead session was a site uplink, the site just missed its
        // lease: drop its contribution, keep serving from the survivors,
        // and flag every query degraded (graceful degradation — the
        // coordinator never stops answering).
        if let RoleState::Coordinator(coord) = &mut self.role {
            if coord.gone(sid).is_some() {
                let deltas = coord.republish();
                let at = coord.publish_ts();
                self.fan_out(at, &deltas);
                self.push_degraded();
            }
        }
    }

    /// Executes one request, returning its reply. `Quit` is handled by the
    /// caller.
    fn execute(&mut self, sid: SessionId, req: Request, started: Instant) -> Reply {
        if let Some(reject) = self.role_guard(&req) {
            return reject;
        }
        match req {
            Request::Register { spec, window } => self.register(spec, window),
            Request::Unregister(q) => match self.server.unregister(q) {
                Ok(()) => {
                    self.router.drop_query(q);
                    self.pool.drop_query(q);
                    if let RoleState::Coordinator(coord) = &mut self.role {
                        coord.unregister(q);
                    }
                    self.broadcast_adopt(q, None);
                    Reply::OkQuery(q)
                }
                Err(e) => err_reply(&e),
            },
            Request::Subscribe(q) => match self.result_of(q) {
                Ok(entries) => {
                    self.router.subscribe(q, sid);
                    // Baseline the subscriber immediately before its OK:
                    // FIFO ordering guarantees the snapshot arrives with
                    // the reply and before any subsequent delta. The
                    // shard mirror learns of the subscription on the same
                    // channel later fan-outs arrive on, so the first
                    // delta pushed there cannot precede this baseline.
                    if let Some(handle) = self.sessions.get(&sid) {
                        self.pool.subscribe(q, sid, Arc::clone(&handle.out));
                        handle.out.force_push(
                            Push::Snapshot {
                                query: q,
                                at: self.now_ts(),
                                entries,
                            }
                            .to_string(),
                        );
                        // A subscriber arriving mid-degradation learns the
                        // current status with its baseline.
                        if let RoleState::Coordinator(coord) = &self.role {
                            let sites = coord.degraded_sites();
                            if !sites.is_empty() {
                                handle
                                    .out
                                    .force_push(Push::Degraded { query: q, sites }.to_string());
                            }
                        }
                    }
                    Reply::OkQuery(q)
                }
                Err(e) => err_reply(&e),
            },
            Request::Unsubscribe(q) => {
                if self.router.unsubscribe(q, &sid) {
                    self.pool.unsubscribe(q, sid);
                }
                Reply::OkQuery(q)
            }
            Request::Snapshot(q) => match self.result_of(q) {
                Ok(entries) => Reply::OkSnapshot {
                    query: q,
                    at: self.now_ts(),
                    entries,
                },
                Err(e) => err_reply(&e),
            },
            Request::Tick { arrivals } => self.ingest(&arrivals, None),
            Request::TickAt { at, arrivals } => {
                if self.cfg.tick != TickPolicy::Manual {
                    return Reply::Err {
                        code: ErrCode::Unsupported,
                        message: "TICKAT requires a manual-tick server (the interval timer \
                                  owns the clock)"
                            .into(),
                    };
                }
                self.ingest(&arrivals, Some(at))
            }
            Request::Stats => self.stats_reply(started),
            Request::Ping => Reply::OkPong,
            Request::SiteHello { site, dims } => self.site_hello(sid, site, dims),
            Request::SiteDelta { at: _, delta } => self.site_delta(sid, &delta),
            Request::SiteIngest { at, base, arrivals } => self.site_ingest(at, base, &arrivals),
            // On a coordinator a bare SITETICK is a site's cycle marker;
            // on a site it is an empty ingest cycle (keeps the local clock
            // in lockstep when this site drew no arrivals).
            Request::SiteCycle { at } => match self.role {
                RoleState::Coordinator(_) => self.site_marker(sid, at),
                _ => self.site_ingest(at, 0, &[]),
            },
            // The event loop intercepts QUIT before dispatch; answering
            // defensively keeps the server alive if that ever regresses.
            Request::Quit => Reply::Err {
                code: ErrCode::Unsupported,
                message: "QUIT is handled by the session layer".into(),
            },
        }
    }

    /// Rejects verbs the configured role does not serve (`None` = serve
    /// it). Sites only speak the ingest verbs plus diagnostics; the
    /// coordinator's clock is owned by its sites, so direct ticking is
    /// refused; a standalone server knows nothing of the site verbs.
    fn role_guard(&self, req: &Request) -> Option<Reply> {
        let allowed = match (&self.role, req) {
            (_, Request::Stats | Request::Ping | Request::Quit) => true,
            (
                RoleState::Standalone,
                Request::SiteHello { .. }
                | Request::SiteDelta { .. }
                | Request::SiteIngest { .. }
                | Request::SiteCycle { .. },
            ) => false,
            (RoleState::Standalone, _) => true,
            (
                RoleState::Coordinator(_),
                Request::Tick { .. } | Request::TickAt { .. } | Request::SiteIngest { .. },
            ) => false,
            (RoleState::Coordinator(_), _) => true,
            (RoleState::Site(_), Request::SiteIngest { .. } | Request::SiteCycle { .. }) => true,
            (RoleState::Site(_), _) => false,
        };
        (!allowed).then(|| Reply::Err {
            code: ErrCode::Unsupported,
            message: format!(
                "{} is not served in the {} role",
                req.verb(),
                self.role_name()
            ),
        })
    }

    fn role_name(&self) -> &'static str {
        match self.role {
            RoleState::Standalone => "standalone",
            RoleState::Coordinator(_) => "coordinator",
            RoleState::Site(_) => "site",
        }
    }

    /// The result a subscriber-facing verb serves: the coordinator's
    /// merged published view, or the local engine's.
    fn result_of(&self, q: QueryId) -> Result<Vec<Scored>> {
        match &self.role {
            RoleState::Coordinator(coord) => coord.result_of(q).ok_or(TkmError::UnknownQuery(q)),
            _ => self.server.result(q),
        }
    }

    /// The timestamp subscriber-facing output is labeled with: the
    /// coordinator's publish frontier, or the local engine clock.
    fn now_ts(&self) -> Timestamp {
        match &self.role {
            RoleState::Coordinator(coord) => coord.publish_ts(),
            _ => self.server.now(),
        }
    }

    /// Forwards a query's adoption (or retirement, `spec: None`) to every
    /// live site uplink. Coordinator-only; a no-op elsewhere.
    fn broadcast_adopt(&self, query: QueryId, spec: Option<QuerySpec>) {
        let RoleState::Coordinator(coord) = &self.role else {
            return;
        };
        let line = Push::Adopt { query, spec }.to_string();
        for sid in coord.uplink_sids() {
            if let Some(handle) = self.sessions.get(&sid) {
                handle.out.force_push(line.clone());
            }
        }
    }

    /// Pushes the current degradation status (`DEGRADED q<ID> [sites]`) to
    /// every subscriber of every query; an empty site list announces the
    /// heal.
    fn push_degraded(&self) {
        let RoleState::Coordinator(coord) = &self.role else {
            return;
        };
        let sites = coord.degraded_sites();
        for q in coord.queries() {
            let line = Push::Degraded {
                query: q,
                sites: sites.clone(),
            }
            .to_string();
            for sid in self.router.subscribers(q) {
                if let Some(handle) = self.sessions.get(sid) {
                    handle.out.force_push(line.clone());
                }
            }
        }
    }

    /// Enrolls a site uplink (`SITE`): checks dimensionality, supersedes
    /// any previous session for the same site id, and replays the query
    /// set as `ADOPT` pushes ahead of the `OK s<id>` reply.
    fn site_hello(&mut self, sid: SessionId, site: u64, dims: usize) -> Reply {
        let want = self.server.dims();
        let RoleState::Coordinator(coord) = &mut self.role else {
            return internal_reply("SITE outside the coordinator role");
        };
        if dims != want {
            return Reply::Err {
                code: ErrCode::BadArg,
                message: format!("site monitors {dims} dims but the coordinator expects {want}"),
            };
        }
        let replay = coord.enroll(sid, site);
        if let Some(handle) = self.sessions.get(&sid) {
            for (q, spec) in replay {
                handle.out.force_push(
                    Push::Adopt {
                        query: q,
                        spec: Some(spec),
                    }
                    .to_string(),
                );
            }
        }
        Reply::OkSite(site)
    }

    /// Merges one shipped `SITEDELTA` into the sender's pool.
    fn site_delta(&mut self, sid: SessionId, delta: &ResultDelta) -> Reply {
        let RoleState::Coordinator(coord) = &mut self.role else {
            return internal_reply("SITEDELTA outside the coordinator role");
        };
        match coord.apply_delta(sid, delta) {
            Ok(q) => Reply::OkQuery(q),
            Err(message) => Reply::Err {
                code: ErrCode::BadArg,
                message,
            },
        }
    }

    /// Processes a site's cycle marker: advance its watermark, and when
    /// the frontier moved (or the site just healed) re-merge and fan the
    /// changes out to subscribers.
    fn site_marker(&mut self, sid: SessionId, at: Timestamp) -> Reply {
        let (now, publish) = {
            let RoleState::Coordinator(coord) = &mut self.role else {
                return internal_reply("SITETICK marker outside the coordinator role");
            };
            if coord.site_of(sid).is_none() {
                return Reply::Err {
                    code: ErrCode::BadArg,
                    message: "SITETICK from a connection that has not enrolled with SITE".into(),
                };
            }
            let publish = coord
                .marker(sid, at)
                .map(|o| (o.at, o.healed, coord.republish()));
            (coord.publish_ts(), publish)
        };
        if let Some((publish_at, healed, deltas)) = publish {
            self.fan_out(publish_at, &deltas);
            if healed {
                self.push_degraded();
            }
        }
        Reply::OkTick { now, queued: 0 }
    }

    /// Runs one site-local ingest cycle (`SITETICK … base=…`): tick the
    /// local engine, record the local↔global id mapping, and ship the
    /// resulting deltas plus the cycle marker up the coordinator uplink.
    fn site_ingest(&mut self, at: Timestamp, base: u64, arrivals: &[f64]) -> Reply {
        let window = self.cfg.server.window;
        let RoleState::Site(site) = &mut self.role else {
            return internal_reply("SITETICK ingest outside the site role");
        };
        site.ensure_uplink(&mut self.server);
        site.drain(&mut self.server);
        let dims = self.server.dims();
        if !arrivals.len().is_multiple_of(dims) {
            return Reply::Err {
                code: ErrCode::BadArg,
                message: format!(
                    "arrival buffer of {} values is not a whole number of {dims}-dim tuples",
                    arrivals.len()
                ),
            };
        }
        // What forwarding the raw ingest upstream would have cost — the
        // baseline the distributed bench compares shipped bytes against.
        let naive = Request::SiteIngest {
            at,
            base,
            arrivals: arrivals.to_vec(),
        }
        .to_string()
        .len() as u64
            + 1;
        if let Err(e) = self.server.tick_at(at, arrivals) {
            self.stats.tick_errors += 1;
            return err_reply(&e);
        }
        let tuples = (arrivals.len() / dims) as u64;
        site.record_batch(at, base, tuples, window);
        self.stats.ticks += 1;
        self.stats.arrivals += tuples;
        let deltas = self.server.take_deltas();
        self.stats.deltas += deltas.len() as u64;
        site.ship_cycle(at, &deltas, naive);
        Reply::OkTick {
            now: self.server.now(),
            queued: tuples as usize,
        }
    }

    fn register(&mut self, spec: QuerySpec, window: Option<crate::protocol::WireWindow>) -> Reply {
        if let Some(w) = window {
            if !w.matches(self.server.config().window) {
                return Reply::Err {
                    code: ErrCode::WindowMismatch,
                    message: format!(
                        "client asserted window={w} but the server monitors {:?}",
                        self.server.config().window
                    ),
                };
            }
        }
        match build_query(&spec).and_then(|q| self.server.register(q)) {
            Ok(id) => {
                if let RoleState::Coordinator(coord) = &mut self.role {
                    coord.register(id, spec.clone());
                }
                self.broadcast_adopt(id, Some(spec));
                Reply::OkQuery(id)
            }
            Err(e) => err_reply(&e),
        }
    }

    fn ingest(&mut self, arrivals: &[f64], at: Option<Timestamp>) -> Reply {
        let dims = self.server.dims();
        if !arrivals.len().is_multiple_of(dims) {
            return Reply::Err {
                code: ErrCode::BadArg,
                message: format!(
                    "arrival buffer of {} values is not a whole number of {dims}-dim tuples",
                    arrivals.len()
                ),
            };
        }
        let queued = arrivals.len() / dims;
        self.pending.extend_from_slice(arrivals);
        if self.cfg.tick == TickPolicy::Manual {
            if let Err(e) = self.flush(at) {
                return err_reply(&e);
            }
        }
        Reply::OkTick {
            now: self.server.now(),
            queued,
        }
    }

    /// Runs one engine cycle over the queued arrivals and fans the
    /// resulting deltas out to subscribers.
    fn flush(&mut self, at: Option<Timestamp>) -> Result<()> {
        let arrivals = std::mem::take(&mut self.pending);
        let outcome = match at {
            Some(t) => self.server.tick_at(t, &arrivals),
            None => self.server.tick(&arrivals),
        };
        // A rejected cycle (e.g. a regressing TICKAT timestamp) drops its
        // arrivals with it.
        outcome?;
        self.stats.ticks += 1;
        self.stats.arrivals += (arrivals.len() / self.server.dims().max(1)) as u64;

        let now = self.server.now();
        let deltas = self.server.take_deltas();
        self.stats.deltas += deltas.len() as u64;
        self.fan_out(now, &deltas);
        Ok(())
    }

    /// Fans a cycle's result deltas out to their subscribers through the
    /// shard workers, applying the drop-to-snapshot backpressure policy
    /// to slow consumers.
    ///
    /// Each routed delta is encoded exactly **once** (tallied in
    /// `STATS encodes=`) into an `Arc<[u8]>` payload whose bytes every
    /// subscriber's queue shares; the per-subscriber work left is one
    /// pointer enqueue on the owning shard's worker.
    fn fan_out(&mut self, now: Timestamp, deltas: &[ResultDelta]) {
        let mut lines: Vec<(QueryId, Arc<[u8]>)> = Vec::new();
        for delta in deltas {
            if self.router.subscribers(delta.query).is_empty() {
                continue;
            }
            let line = Push::Delta {
                at: now,
                delta: delta.clone(),
            }
            .to_string();
            self.metrics.encodes.fetch_add(1, Ordering::Relaxed);
            lines.push((delta.query, line_bytes(line)));
        }
        if lines.is_empty() {
            return;
        }
        let resynced = self.pool.fan_out(lines, self.cfg.push_queue);
        // Slow consumers lost their queued pushes: re-baseline every one
        // of their subscriptions from the (post-cycle) current results.
        // The fan-out barrier above guarantees no shard worker is still
        // pushing, so clearing the overflow latch here cannot race a
        // delta in ahead of the RESYNC.
        for sid in resynced {
            self.stats.resyncs += 1;
            let Some(handle) = self.sessions.get(&sid) else {
                continue;
            };
            let out = Arc::clone(&handle.out);
            let subs = self.router.subscriptions_of(&sid);
            out.clear_overflow();
            out.force_push(Push::Resync { count: subs.len() }.to_string());
            for q in subs {
                let entries = self.result_of(q).unwrap_or_default();
                out.force_push(
                    Push::Snapshot {
                        query: q,
                        at: now,
                        entries,
                    }
                    .to_string(),
                );
            }
        }
    }

    fn stats_reply(&self, started: Instant) -> Reply {
        let mut pairs = vec![
            ("engine".into(), self.server.engine_name().to_string()),
            ("dims".into(), self.server.dims().to_string()),
            ("now".into(), self.server.now().to_string()),
            ("sessions".into(), self.sessions.len().to_string()),
            ("subscriptions".into(), self.router.len().to_string()),
            ("ticks".into(), self.stats.ticks.to_string()),
            ("arrivals".into(), self.stats.arrivals.to_string()),
            ("deltas".into(), self.stats.deltas.to_string()),
            (
                "encodes".into(),
                self.metrics.encodes.load(Ordering::Relaxed).to_string(),
            ),
            ("fanout_shards".into(), self.pool.shards().to_string()),
            ("resyncs".into(), self.stats.resyncs.to_string()),
            (
                "reaped".into(),
                self.metrics.reaped.load(Ordering::Relaxed).to_string(),
            ),
            (
                "shed".into(),
                self.metrics.shed.load(Ordering::Relaxed).to_string(),
            ),
            (
                "faults".into(),
                self.metrics.faults.load(Ordering::Relaxed).to_string(),
            ),
            ("tick_errors".into(), self.stats.tick_errors.to_string()),
            (
                "pending".into(),
                (self.pending.len() / self.server.dims().max(1)).to_string(),
            ),
            ("space_bytes".into(), self.server.space_bytes().to_string()),
            ("router_bytes".into(), self.router.space_bytes().to_string()),
            (
                "uptime_ms".into(),
                started.elapsed().as_millis().to_string(),
            ),
        ];
        // Per-verb shed breakdown (only non-zero slots, to keep the line
        // short); the sum over these equals `shed=`.
        for (i, verb) in SHED_VERBS.iter().enumerate() {
            let n = self.metrics.shed_by_verb[i].load(Ordering::Relaxed);
            if n > 0 {
                pairs.push((format!("shed_{verb}"), n.to_string()));
            }
        }
        match &self.role {
            RoleState::Standalone => pairs.push(("role".into(), "standalone".into())),
            RoleState::Coordinator(coord) => pairs.extend(coord.stats()),
            RoleState::Site(site) => pairs.extend(site.stats()),
        }
        Reply::OkStats(pairs)
    }
}

/// Builds an engine [`Query`] from a wire [`QuerySpec`] — shared by
/// `REGISTER` on the serving path and `ADOPT` adoption on site uplinks.
pub(crate) fn build_query(spec: &QuerySpec) -> Result<Query> {
    // Engines pre-allocate k result slots per query, so an untrusted
    // wire k must be bounded before it reaches an allocator.
    const MAX_WIRE_K: usize = 1 << 16;
    if spec.k > MAX_WIRE_K {
        return Err(TkmError::InvalidParameter(format!(
            "k={} exceeds the serving-layer cap of {MAX_WIRE_K}",
            spec.k
        )));
    }
    let f = match spec.family {
        Family::Linear => ScoreFn::linear(spec.weights.clone()),
        Family::Product => ScoreFn::product(spec.weights.clone()),
        Family::Quadratic => ScoreFn::quadratic(spec.weights.clone()),
    }?;
    match &spec.range {
        None => Query::top_k(f, spec.k),
        Some(spans) => {
            let (lo, hi): (Vec<f64>, Vec<f64>) = spans.iter().copied().unzip();
            Rect::new(lo, hi).and_then(|rect| Query::constrained(f, spec.k, rect))
        }
    }
}

fn internal_reply(message: &str) -> Reply {
    Reply::Err {
        code: ErrCode::Internal,
        message: message.into(),
    }
}

fn err_reply(e: &TkmError) -> Reply {
    let code = match &e {
        TkmError::UnknownQuery(_) => ErrCode::UnknownQuery,
        TkmError::DimensionMismatch { .. } | TkmError::InvalidParameter(_) => ErrCode::BadArg,
        TkmError::Unsupported(_) => ErrCode::Unsupported,
        _ => ErrCode::Internal,
    };
    Reply::Err {
        code,
        message: e.to_string(),
    }
}
