//! The serving event loop.
//!
//! One [`Service`] owns one [`MonitorServer`] and any number of TCP
//! clients. All engine access is serialized through a single
//! **engine-owner thread** fed by a bounded inbox channel; per-connection
//! reader threads are pure parsers, per-connection writer threads are pure
//! drains (see [`crate::session`]). The owner thread:
//!
//! 1. executes requests in arrival order, replying on the issuing
//!    session's queue;
//! 2. accumulates `TICK`/`TICKAT` arrivals and flushes them as **one**
//!    `tick_at` per processing cycle — immediately under
//!    [`TickPolicy::Manual`], or once per wall-clock interval under
//!    [`TickPolicy::Interval`], so a burst of ingest requests inside one
//!    interval becomes a single engine cycle;
//! 3. drains the cycle's [`tkm_core::ResultDelta`]s and fans each out to the
//!    sessions subscribed to its query (via
//!    [`tkm_core::DeltaRouter`]), applying the drop-to-snapshot
//!    backpressure policy to slow consumers.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{FaultSchedule, FaultyStream, Transport};
use crate::protocol::{ErrCode, Family, Push, Reply, Request};
use crate::session::{run_reader, run_writer, Liveness, ReaderKnobs, SessionId, SessionOut};
use tkm_common::{Rect, Result, ScoreFn, Timestamp, TkmError};
use tkm_core::{DeltaRouter, MonitorServer, Query, ServerConfig};

/// When queued arrivals are flushed into an engine cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickPolicy {
    /// Every `TICK`/`TICKAT` request flushes immediately — deterministic,
    /// the mode used by tests and the loopback bench.
    Manual,
    /// Arrivals queue up; a timer flushes them as one `tick_at` per
    /// interval. `TICKAT` is rejected in this mode (the timer owns the
    /// clock).
    Interval(Duration),
}

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The engine configuration. Delta tracking is forced on — the serving
    /// layer is built around per-tick result changes.
    pub server: ServerConfig,
    /// When queued arrivals become engine cycles.
    pub tick: TickPolicy,
    /// Per-session cap on queued push lines before the drop-to-snapshot
    /// policy kicks in.
    pub push_queue: usize,
    /// Bound of the engine-owner inbox (requests in flight across all
    /// sessions); senders block when full, back-pressuring readers — until
    /// the [`ServiceConfig::busy_timeout`] shedding deadline.
    pub inbox: usize,
    /// Tear down a connection with no traffic in either direction for
    /// this long (`None` = never reap). Silent clients stay alive by
    /// sending `PING`.
    pub idle_timeout: Option<Duration>,
    /// Poison a session whose socket write blocks this long (`None` =
    /// block forever) — the deadline that frees the writer thread of a
    /// client that stopped reading.
    pub write_timeout: Option<Duration>,
    /// How long a full engine inbox may stall a request before the
    /// session sheds it with `ERR busy` (only when no earlier request of
    /// the same session is still awaiting its reply).
    pub busy_timeout: Duration,
    /// Fault-injection schedule wrapped around accepted connections
    /// (tests and the chaos bench; `None` in production).
    pub faults: Option<FaultSchedule>,
}

impl ServiceConfig {
    /// A manual-tick service over the given engine configuration, with a
    /// 1024-line push cap, a 1024-event inbox, no idle/write deadlines,
    /// a 250 ms shedding deadline, and no fault injection.
    pub fn new(server: ServerConfig) -> ServiceConfig {
        ServiceConfig {
            server: server.with_delta_tracking(true),
            tick: TickPolicy::Manual,
            push_queue: 1024,
            inbox: 1024,
            idle_timeout: None,
            write_timeout: None,
            busy_timeout: Duration::from_millis(250),
            faults: None,
        }
    }

    /// Selects the tick policy.
    pub fn with_tick(mut self, tick: TickPolicy) -> ServiceConfig {
        self.tick = tick;
        self
    }

    /// Selects the per-session push cap (minimum 1).
    pub fn with_push_queue(mut self, cap: usize) -> ServiceConfig {
        self.push_queue = cap.max(1);
        self
    }

    /// Selects the idle-reaping deadline.
    pub fn with_idle_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.idle_timeout = Some(deadline);
        self
    }

    /// Selects the per-write deadline.
    pub fn with_write_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.write_timeout = Some(deadline);
        self
    }

    /// Selects the overload-shedding deadline.
    pub fn with_busy_timeout(mut self, deadline: Duration) -> ServiceConfig {
        self.busy_timeout = deadline;
        self
    }

    /// Wraps accepted connections in a fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> ServiceConfig {
        self.faults = Some(faults);
        self
    }
}

/// Robustness counters shared by the session threads (which record) and
/// the engine owner (which reports them via `STATS`).
#[derive(Default)]
pub(crate) struct Metrics {
    /// Connections torn down by the idle deadline.
    pub(crate) reaped: AtomicU64,
    /// Requests answered `ERR busy` without reaching the engine.
    pub(crate) shed: AtomicU64,
    /// Faults injected by the configured [`FaultSchedule`] (behind an
    /// `Arc` so [`FaultyStream`] halves can tally into it directly).
    pub(crate) faults: Arc<AtomicU64>,
}

/// An event consumed by the engine-owner thread.
pub(crate) enum Event {
    /// A new connection: its id, its outbound queue, and its in-flight
    /// request counter (see `session::forward` for the shedding
    /// contract).
    Connect(SessionId, Arc<SessionOut>, Arc<AtomicUsize>),
    /// A parsed request from a session.
    Request(SessionId, Request),
    /// An unparseable line from a session (the parse error).
    Bad(SessionId, String),
    /// A session's reader hit EOF/error; tear the session down.
    Gone(SessionId),
    /// Timer fired (interval mode): flush queued arrivals.
    Flush,
    /// Stop the event loop and close every session.
    Shutdown,
}

/// A running TCP serving layer over one [`MonitorServer`].
///
/// Dropping a `Service` without calling [`Service::shutdown`] leaves the
/// background threads running detached; call `shutdown` for an orderly
/// stop.
pub struct Service {
    addr: SocketAddr,
    inbox: SyncSender<Event>,
    stopping: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Service {
    /// Binds a listener and spawns the accept + engine (+ timer) threads.
    ///
    /// Bind to port 0 to let the OS choose; [`Service::local_addr`] reports
    /// the actual endpoint.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServiceConfig) -> Result<Service> {
        let server = MonitorServer::new(cfg.server.with_delta_tracking(true))?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| TkmError::InvalidParameter(format!("bind failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| TkmError::Internal(format!("local_addr: {e}")))?;
        let (tx, rx) = std::sync::mpsc::sync_channel(cfg.inbox.max(1));
        let stopping = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        let mut threads = Vec::new();

        let ctx = AcceptCtx {
            inbox: tx.clone(),
            stopping: Arc::clone(&stopping),
            knobs: ReaderKnobs {
                idle: cfg.idle_timeout,
                busy: cfg.busy_timeout,
            },
            write_timeout: cfg.write_timeout,
            faults: cfg.faults.clone(),
            metrics: Arc::clone(&metrics),
        };
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &ctx);
        }));

        if let TickPolicy::Interval(period) = cfg.tick {
            let timer_tx = tx.clone();
            let timer_stop = Arc::clone(&stopping);
            threads.push(std::thread::spawn(move || {
                // Deadline-based so the cadence tracks `period` exactly,
                // sleeping in short slices so shutdown is not held hostage
                // by a long tick interval.
                let slice = Duration::from_millis(25);
                let mut next = Instant::now() + period;
                loop {
                    if timer_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep((next - now).min(slice));
                        continue;
                    }
                    next += period;
                    if timer_tx.send(Event::Flush).is_err() {
                        return;
                    }
                }
            }));
        }

        let mut owner = EngineOwner {
            server,
            cfg,
            sessions: BTreeMap::new(),
            router: DeltaRouter::new(),
            pending: Vec::new(),
            stats: Counters::default(),
            metrics,
        };
        threads.push(std::thread::spawn(move || owner.run(&rx)));

        Ok(Service {
            addr: local,
            inbox: tx,
            stopping,
            threads,
        })
    }

    /// The address the service listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every session, and joins the accept /
    /// timer / engine threads. Per-session writer threads drain their
    /// remaining queued lines on their own (they are detached), so
    /// delivery of already-queued output is best-effort if the process
    /// exits immediately after this returns.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        let _ = self.inbox.send(Event::Shutdown);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Everything the accept loop needs to outfit a new session's threads.
struct AcceptCtx {
    inbox: SyncSender<Event>,
    stopping: Arc<AtomicBool>,
    knobs: ReaderKnobs,
    write_timeout: Option<Duration>,
    faults: Option<FaultSchedule>,
    metrics: Arc<Metrics>,
}

fn accept_loop(listener: &TcpListener, ctx: &AcceptCtx) {
    let mut next = 0u64;
    for stream in listener.incoming() {
        if ctx.stopping.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let sid = SessionId(next);
        next += 1;
        let out = Arc::new(SessionOut::new());
        let inflight = Arc::new(AtomicUsize::new(0));
        if ctx
            .inbox
            .send(Event::Connect(sid, Arc::clone(&out), Arc::clone(&inflight)))
            .is_err()
        {
            return;
        }
        if ctx.stopping.load(Ordering::Relaxed) {
            // Shutdown raced this accept: the engine may never process the
            // Connect, so close the queue ourselves before spawning the
            // writer — close is idempotent, a double close is harmless.
            out.close();
        }
        let Ok(write_half) = stream.try_clone() else {
            let _ = ctx.inbox.send(Event::Gone(sid));
            continue;
        };
        // Wrap both halves in the session's fault plan, if one is
        // scheduled for this connection index.
        let plan = ctx
            .faults
            .as_ref()
            .and_then(|f| f.plan_for(sid.0))
            .filter(|p| !p.is_empty())
            .cloned();
        let (read_t, write_t): (Box<dyn Transport>, Box<dyn Transport>) = match plan {
            Some(plan) => {
                let seed = ctx
                    .faults
                    .as_ref()
                    .map_or(0, |f| f.seed)
                    .wrapping_add(sid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let (r, w) = FaultyStream::pair(
                    stream,
                    write_half,
                    plan,
                    seed,
                    Some(Arc::clone(&ctx.metrics.faults)),
                );
                (Box::new(r), Box::new(w))
            }
            None => (Box::new(stream), Box::new(write_half)),
        };
        let liveness = Arc::new(Liveness::new());
        let writer_out = Arc::clone(&out);
        let writer_liveness = Arc::clone(&liveness);
        let write_timeout = ctx.write_timeout;
        std::thread::spawn(move || {
            run_writer(write_t, &writer_out, &writer_liveness, write_timeout)
        });
        let reader_inbox = ctx.inbox.clone();
        let knobs = ctx.knobs;
        let reader_metrics = Arc::clone(&ctx.metrics);
        std::thread::spawn(move || {
            run_reader(
                read_t,
                sid,
                &reader_inbox,
                &out,
                &inflight,
                &liveness,
                knobs,
                &reader_metrics,
            );
        });
    }
}

#[derive(Default)]
struct Counters {
    ticks: u64,
    arrivals: u64,
    deltas: u64,
    resyncs: u64,
    tick_errors: u64,
}

/// The engine owner's view of one live session.
struct SessionHandle {
    out: Arc<SessionOut>,
    /// Requests accepted by the reader but not yet replied to; the engine
    /// decrements it *after* enqueuing each reply (shedding contract).
    inflight: Arc<AtomicUsize>,
}

struct EngineOwner {
    server: MonitorServer,
    cfg: ServiceConfig,
    sessions: BTreeMap<SessionId, SessionHandle>,
    router: DeltaRouter<SessionId>,
    /// Arrivals queued since the last flush (flat coordinate buffer).
    pending: Vec<f64>,
    stats: Counters,
    metrics: Arc<Metrics>,
}

impl EngineOwner {
    fn run(&mut self, rx: &Receiver<Event>) {
        let started = Instant::now();
        while let Ok(event) = rx.recv() {
            match event {
                Event::Connect(sid, out, inflight) => {
                    self.sessions.insert(sid, SessionHandle { out, inflight });
                }
                Event::Request(sid, req) => {
                    let quitting = matches!(req, Request::Quit);
                    if quitting {
                        self.reply(sid, &Reply::OkBye);
                    } else {
                        let reply = self.execute(sid, req, started);
                        self.reply(sid, &reply);
                    }
                    self.acknowledge(sid);
                    if quitting {
                        self.teardown(sid);
                    }
                }
                Event::Bad(sid, msg) => {
                    self.reply(
                        sid,
                        &Reply::Err {
                            code: ErrCode::Parse,
                            message: msg,
                        },
                    );
                    self.acknowledge(sid);
                }
                Event::Gone(sid) => self.teardown(sid),
                Event::Flush => {
                    if self.flush(None).is_err() {
                        self.stats.tick_errors += 1;
                    }
                }
                Event::Shutdown => break,
            }
        }
        for handle in self.sessions.values() {
            handle.out.close();
        }
        // Connects that were still queued behind the Shutdown event would
        // otherwise leave their writer threads parked forever.
        while let Ok(event) = rx.try_recv() {
            if let Event::Connect(_, out, _) = event {
                out.close();
            }
        }
    }

    fn reply(&self, sid: SessionId, reply: &Reply) {
        if let Some(handle) = self.sessions.get(&sid) {
            handle.out.send_reply(reply.to_string());
        }
    }

    /// Releases one in-flight token *after* the corresponding reply was
    /// enqueued — the ordering that makes reader-side `ERR busy` shedding
    /// safe (see `session::forward`).
    fn acknowledge(&self, sid: SessionId) {
        if let Some(handle) = self.sessions.get(&sid) {
            handle.inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn teardown(&mut self, sid: SessionId) {
        self.router.drop_subscriber(&sid);
        if let Some(handle) = self.sessions.remove(&sid) {
            handle.out.close();
        }
    }

    /// Executes one request, returning its reply. `Quit` is handled by the
    /// caller.
    fn execute(&mut self, sid: SessionId, req: Request, started: Instant) -> Reply {
        match req {
            Request::Register {
                k,
                weights,
                family,
                range,
                window,
            } => self.register(k, &weights, family, range, window),
            Request::Unregister(q) => match self.server.unregister(q) {
                Ok(()) => {
                    self.router.drop_query(q);
                    Reply::OkQuery(q)
                }
                Err(e) => err_reply(&e),
            },
            Request::Subscribe(q) => match self.server.result(q) {
                Ok(entries) => {
                    self.router.subscribe(q, sid);
                    // Baseline the subscriber immediately before its OK:
                    // FIFO ordering guarantees the snapshot arrives with
                    // the reply and before any subsequent delta.
                    if let Some(handle) = self.sessions.get(&sid) {
                        handle.out.force_push(
                            Push::Snapshot {
                                query: q,
                                at: self.server.now(),
                                entries,
                            }
                            .to_string(),
                        );
                    }
                    Reply::OkQuery(q)
                }
                Err(e) => err_reply(&e),
            },
            Request::Unsubscribe(q) => {
                self.router.unsubscribe(q, &sid);
                Reply::OkQuery(q)
            }
            Request::Snapshot(q) => match self.server.result(q) {
                Ok(entries) => Reply::OkSnapshot {
                    query: q,
                    at: self.server.now(),
                    entries,
                },
                Err(e) => err_reply(&e),
            },
            Request::Tick { arrivals } => self.ingest(&arrivals, None),
            Request::TickAt { at, arrivals } => {
                if self.cfg.tick != TickPolicy::Manual {
                    return Reply::Err {
                        code: ErrCode::Unsupported,
                        message: "TICKAT requires a manual-tick server (the interval timer \
                                  owns the clock)"
                            .into(),
                    };
                }
                self.ingest(&arrivals, Some(at))
            }
            Request::Stats => self.stats_reply(started),
            Request::Ping => Reply::OkPong,
            // The event loop intercepts QUIT before dispatch; answering
            // defensively keeps the server alive if that ever regresses.
            Request::Quit => Reply::Err {
                code: ErrCode::Unsupported,
                message: "QUIT is handled by the session layer".into(),
            },
        }
    }

    fn register(
        &mut self,
        k: usize,
        weights: &[f64],
        family: Family,
        range: Option<Vec<(f64, f64)>>,
        window: Option<crate::protocol::WireWindow>,
    ) -> Reply {
        // Engines pre-allocate k result slots per query, so an untrusted
        // wire k must be bounded before it reaches an allocator.
        const MAX_WIRE_K: usize = 1 << 16;
        if k > MAX_WIRE_K {
            return Reply::Err {
                code: ErrCode::BadArg,
                message: format!("k={k} exceeds the serving-layer cap of {MAX_WIRE_K}"),
            };
        }
        if let Some(w) = window {
            if !w.matches(self.server.config().window) {
                return Reply::Err {
                    code: ErrCode::WindowMismatch,
                    message: format!(
                        "client asserted window={w} but the server monitors {:?}",
                        self.server.config().window
                    ),
                };
            }
        }
        let f = match family {
            Family::Linear => ScoreFn::linear(weights.to_vec()),
            Family::Product => ScoreFn::product(weights.to_vec()),
            Family::Quadratic => ScoreFn::quadratic(weights.to_vec()),
        };
        let query = f.and_then(|f| match range {
            None => Query::top_k(f, k),
            Some(spans) => {
                let (lo, hi): (Vec<f64>, Vec<f64>) = spans.into_iter().unzip();
                Rect::new(lo, hi).and_then(|rect| Query::constrained(f, k, rect))
            }
        });
        match query.and_then(|q| self.server.register(q)) {
            Ok(id) => Reply::OkQuery(id),
            Err(e) => err_reply(&e),
        }
    }

    fn ingest(&mut self, arrivals: &[f64], at: Option<Timestamp>) -> Reply {
        let dims = self.server.dims();
        if !arrivals.len().is_multiple_of(dims) {
            return Reply::Err {
                code: ErrCode::BadArg,
                message: format!(
                    "arrival buffer of {} values is not a whole number of {dims}-dim tuples",
                    arrivals.len()
                ),
            };
        }
        let queued = arrivals.len() / dims;
        self.pending.extend_from_slice(arrivals);
        if self.cfg.tick == TickPolicy::Manual {
            if let Err(e) = self.flush(at) {
                return err_reply(&e);
            }
        }
        Reply::OkTick {
            now: self.server.now(),
            queued,
        }
    }

    /// Runs one engine cycle over the queued arrivals and fans the
    /// resulting deltas out to subscribers.
    fn flush(&mut self, at: Option<Timestamp>) -> Result<()> {
        let arrivals = std::mem::take(&mut self.pending);
        let outcome = match at {
            Some(t) => self.server.tick_at(t, &arrivals),
            None => self.server.tick(&arrivals),
        };
        // A rejected cycle (e.g. a regressing TICKAT timestamp) drops its
        // arrivals with it.
        outcome?;
        self.stats.ticks += 1;
        self.stats.arrivals += (arrivals.len() / self.server.dims().max(1)) as u64;

        let now = self.server.now();
        let deltas = self.server.take_deltas();
        self.stats.deltas += deltas.len() as u64;
        let mut resynced: Vec<SessionId> = Vec::new();
        for delta in &deltas {
            let subscribers = self.router.subscribers(delta.query);
            if subscribers.is_empty() {
                continue;
            }
            // Encode once per delta, not once per subscriber.
            let line = Push::Delta {
                at: now,
                delta: delta.clone(),
            }
            .to_string();
            for sid in subscribers {
                if resynced.contains(sid) {
                    continue;
                }
                let Some(handle) = self.sessions.get(sid) else {
                    continue;
                };
                if !handle.out.try_push(line.clone(), self.cfg.push_queue) {
                    resynced.push(*sid);
                }
            }
        }
        // Slow consumers lost their queued pushes: re-baseline every one
        // of their subscriptions from the (post-tick) current results.
        for sid in resynced {
            self.stats.resyncs += 1;
            let Some(handle) = self.sessions.get(&sid) else {
                continue;
            };
            let out = &handle.out;
            let subs = self.router.subscriptions_of(&sid);
            out.force_push(Push::Resync { count: subs.len() }.to_string());
            for q in subs {
                let entries = self.server.result(q).unwrap_or_default();
                out.force_push(
                    Push::Snapshot {
                        query: q,
                        at: now,
                        entries,
                    }
                    .to_string(),
                );
            }
        }
        Ok(())
    }

    fn stats_reply(&self, started: Instant) -> Reply {
        let pairs = vec![
            ("engine".into(), self.server.engine_name().to_string()),
            ("dims".into(), self.server.dims().to_string()),
            ("now".into(), self.server.now().to_string()),
            ("sessions".into(), self.sessions.len().to_string()),
            ("subscriptions".into(), self.router.len().to_string()),
            ("ticks".into(), self.stats.ticks.to_string()),
            ("arrivals".into(), self.stats.arrivals.to_string()),
            ("deltas".into(), self.stats.deltas.to_string()),
            ("resyncs".into(), self.stats.resyncs.to_string()),
            (
                "reaped".into(),
                self.metrics.reaped.load(Ordering::Relaxed).to_string(),
            ),
            (
                "shed".into(),
                self.metrics.shed.load(Ordering::Relaxed).to_string(),
            ),
            (
                "faults".into(),
                self.metrics.faults.load(Ordering::Relaxed).to_string(),
            ),
            ("tick_errors".into(), self.stats.tick_errors.to_string()),
            (
                "pending".into(),
                (self.pending.len() / self.server.dims().max(1)).to_string(),
            ),
            ("space_bytes".into(), self.server.space_bytes().to_string()),
            ("router_bytes".into(), self.router.space_bytes().to_string()),
            (
                "uptime_ms".into(),
                started.elapsed().as_millis().to_string(),
            ),
        ];
        Reply::OkStats(pairs)
    }
}

fn err_reply(e: &TkmError) -> Reply {
    let code = match &e {
        TkmError::UnknownQuery(_) => ErrCode::UnknownQuery,
        TkmError::DimensionMismatch { .. } | TkmError::InvalidParameter(_) => ErrCode::BadArg,
        TkmError::Unsupported(_) => ErrCode::Unsupported,
        _ => ErrCode::Internal,
    };
    Reply::Err {
        code,
        message: e.to_string(),
    }
}
