//! The readiness-based connection event loop (PR 10).
//!
//! Before PR 10 every accepted connection cost two dedicated threads (a
//! blocking reader and a blocking writer). That caps fan-out at a few
//! thousand subscribers per node — the "wall for production fan-out" in
//! the ROADMAP. This module replaces the pair with **one reactor thread**
//! owning every subscriber socket through a hand-rolled, level-triggered
//! `epoll` loop (no async runtime, no external crates):
//!
//! * nonblocking `accept`, with each new socket registered for read
//!   readiness under its session-id token;
//! * incremental line framing on partial reads — a request line split
//!   across any number of `epoll` wakeups (even mid-UTF-8-sequence)
//!   reassembles through [`crate::session::LineFramer`];
//! * write-interest-driven flushing on partial writes — each session's
//!   [`crate::session::SessionOut`] keeps a byte cursor into its front
//!   payload, so a short write resumes exactly where the kernel stopped
//!   accepting bytes, and `EPOLLOUT` interest is held only while a
//!   session actually has queued output;
//! * a self-pipe `Waker` so the engine owner and the fan-out shard
//!   workers (which run on other threads) can hand the reactor freshly
//!   queued output without the loop polling every session;
//! * the PR 8 fault seam re-expressed for an event loop: injected stalls
//!   become *deferred readiness deadlines* (the loop must never sleep),
//!   while resets, garbles, truncations, and short writes act on the
//!   chunk in flight (see [`crate::fault`]);
//! * the reader-side overload contract unchanged: when the engine inbox
//!   stays full past the busy deadline and the session has no earlier
//!   request awaiting its reply, the request is shed with `ERR busy`
//!   without ever reaching the engine. While a request is parked on a
//!   full inbox the session's read interest is dropped, which is exactly
//!   the TCP backpressure the blocking reader used to apply by not
//!   reading. Accepts obey the same rule: a `Connect` handoff that finds
//!   the inbox full parks the new socket and drops the *listener's* read
//!   interest until the retry lands, so overload defers new connections
//!   instead of freezing the loop.
//!
//! The syscall surface is four functions (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `close`) declared in the scoped `sys` module — the
//! only `unsafe` in the workspace.

use std::collections::{BTreeSet, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fault::{FaultDecider, FaultSchedule, Injected};
use crate::protocol::{parse_request, ErrCode, Reply};
use crate::service::{Event, Metrics};
use crate::session::{FramedLine, LineFramer, Liveness, SessionId, SessionOut, MAX_REQUEST_LINE};

/// Raw `epoll` bindings — the workspace's only `unsafe` code, scoped to
/// four syscalls and one `#[repr(C)]` struct. Everything above this
/// module is safe Rust over [`Poller`].
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_int;

    /// One kernel readiness record. x86-64 packs it (kernel ABI), other
    /// architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub(super) events: u32,
        pub(super) data: u64,
    }

    pub(super) const EPOLL_CLOEXEC: c_int = 0x80000;
    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;
    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// SAFETY wrappers: each call passes either owned fds or pointers to
    /// live stack/heap buffers whose lengths are passed alongside.
    pub(super) fn create() -> c_int {
        unsafe { epoll_create1(EPOLL_CLOEXEC) }
    }

    pub(super) fn ctl(epfd: c_int, op: c_int, fd: c_int, ev: Option<&mut EpollEvent>) -> c_int {
        let ptr = ev.map_or(std::ptr::null_mut(), std::ptr::from_mut);
        unsafe { epoll_ctl(epfd, op, fd, ptr) }
    }

    pub(super) fn wait(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> c_int {
        unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) }
    }

    pub(super) fn close_fd(fd: c_int) {
        unsafe {
            close(fd);
        }
    }
}

/// A readiness event reported by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor can accept more bytes.
    pub writable: bool,
    /// The peer closed or the descriptor errored; reads will observe
    /// EOF/the error.
    pub hangup: bool,
}

/// A minimal level-triggered `epoll` wrapper: register descriptors under
/// a `u64` token with read/write interest, then [`Poller::wait`] for
/// readiness.
///
/// Public because the fan-out benchmark's client fleet reuses it to
/// follow tens of thousands of subscriber sockets from one thread.
pub struct Poller {
    epfd: std::ffi::c_int,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> std::io::Result<Poller> {
        let epfd = sys::create();
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut ev = sys::EPOLLRDHUP;
        if readable {
            ev |= sys::EPOLLIN;
        }
        if writable {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    fn ctl(&self, op: std::ffi::c_int, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        if sys::ctl(self.epfd, op, fd, Some(&mut ev)) < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> std::io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            fd,
            Poller::interest(readable, writable),
            token,
        )
    }

    /// Changes the interest set of a registered descriptor.
    pub fn modify(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> std::io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            fd,
            Poller::interest(readable, writable),
            token,
        )
    }

    /// Deregisters a descriptor (harmless if the kernel already dropped
    /// it on close).
    pub fn remove(&self, fd: RawFd) {
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None);
    }

    /// Blocks until readiness or `timeout`, appending the ready set to
    /// `out` (cleared first). `EINTR` retries internally.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> std::io::Result<()> {
        out.clear();
        let ms = timeout.as_millis().min(i32::MAX as u128) as std::ffi::c_int;
        loop {
            let n = sys::wait(self.epfd, &mut self.buf, ms);
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in self.buf.iter().take(n.max(0) as usize) {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & sys::EPOLLIN != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Self-pipe wakeup channel into the reactor: producer threads (the
/// engine owner, fan-out shard workers) record which sessions gained
/// output and poke one byte down a socketpair the reactor polls.
pub(crate) struct Waker {
    dirty: Mutex<Vec<SessionId>>,
    /// A wakeup byte is already in flight; coalesces pokes.
    signaled: AtomicBool,
    tx: std::os::unix::net::UnixStream,
}

impl Waker {
    fn signal(&self) {
        if !self.signaled.swap(true, Ordering::SeqCst) {
            // A full pipe means a byte is already pending — the wakeup
            // still happens.
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    /// Marks `sid` as having fresh output and wakes the loop.
    pub(crate) fn wake(&self, sid: SessionId) {
        {
            let mut dirty = self
                .dirty
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            dirty.push(sid);
        }
        self.signal();
    }

    /// Wakes the loop with no session attached (shutdown notice; the
    /// loop re-checks its stop flag on every wakeup).
    pub(crate) fn notify(&self) {
        self.signal();
    }

    /// Drains the pending wakeup set. Clearing `signaled` *before*
    /// swapping the dirty list means a producer racing this drain either
    /// lands in the swapped-out list or triggers a fresh byte — never a
    /// lost wakeup.
    fn take(&self) -> Vec<SessionId> {
        self.signaled.store(false, Ordering::SeqCst);
        let mut dirty = self
            .dirty
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *dirty)
    }
}

/// Reactor knobs copied from the service configuration.
pub(crate) struct ReactorCfg {
    /// Tear down a connection silent in both directions this long.
    pub(crate) idle: Option<Duration>,
    /// Kill a session whose socket accepted no bytes for this long while
    /// output was queued.
    pub(crate) write_timeout: Option<Duration>,
    /// How long a full engine inbox may park a request before it is shed
    /// with `ERR busy`.
    pub(crate) busy: Duration,
    /// Fault-injection schedule for accepted connections, if any.
    pub(crate) faults: Option<FaultSchedule>,
}

/// A request parked on a full engine inbox (read interest is dropped
/// while one is pending).
struct PendingSend {
    event: Option<Event>,
    verb: &'static str,
    since: Instant,
}

/// An accepted connection whose `Connect` handoff found the engine inbox
/// full: adoption is deferred — and the listener's read interest dropped,
/// the same backpressure parked requests apply — until the event loop's
/// timer pass can place the event without blocking.
struct ParkedAccept {
    stream: TcpStream,
    sid: SessionId,
    out: Arc<SessionOut>,
    inflight: Arc<AtomicUsize>,
}

/// What to do with a connection after handling it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum After {
    Keep,
    Drop,
}

/// Per-connection reactor state.
struct Conn {
    sid: SessionId,
    stream: TcpStream,
    out: Arc<SessionOut>,
    inflight: Arc<AtomicUsize>,
    framer: LineFramer,
    liveness: Liveness,
    decider: Option<FaultDecider>,
    pending: Option<PendingSend>,
    /// An injected read stall defers reads until this instant; the read
    /// that then proceeds skips its fault decision (the stall *was* that
    /// operation's fault).
    read_stall: Option<Instant>,
    skip_read_decide: bool,
    /// Same, for writes.
    write_stall: Option<Instant>,
    skip_write_decide: bool,
    /// The socket has refused bytes since this instant while output was
    /// queued (the write-deadline clock).
    blocked_since: Option<Instant>,
    /// Interest currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    /// Whether this connection currently wants read readiness.
    fn wants_read(&self) -> bool {
        self.pending.is_none() && self.read_stall.is_none() && !self.out.is_closed()
    }

    /// Whether this connection currently wants write readiness.
    fn wants_write(&self) -> bool {
        self.write_stall.is_none() && !self.out.is_drained()
    }

    /// Whether any timed deadline needs the loop to wake without I/O.
    fn needs_timer(&self, write_timeout: Option<Duration>) -> bool {
        self.pending.is_some()
            || self.read_stall.is_some()
            || self.write_stall.is_some()
            || (write_timeout.is_some() && self.blocked_since.is_some())
    }
}

/// Everything connection handlers need besides the connection itself.
struct Ctx {
    inbox: SyncSender<Event>,
    metrics: Arc<Metrics>,
    busy: Duration,
    write_timeout: Option<Duration>,
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Per-wakeup read budget per connection (fairness under pipelining).
const READ_BUDGET: usize = 16;
/// Coalesced write staging size for clean (non-faulted) connections.
const WRITE_CHUNK: usize = 16 * 1024;
/// Per-wakeup write budget per connection, in staged chunks.
const WRITE_BUDGET: usize = 16;

/// The reactor: owns the listener, the wakeup pipe, and every accepted
/// connection; runs on one dedicated thread.
pub(crate) struct Reactor {
    poller: Poller,
    listener: TcpListener,
    waker: Arc<Waker>,
    waker_rx: std::os::unix::net::UnixStream,
    stopping: Arc<AtomicBool>,
    ctx: Ctx,
    cfg: ReactorCfg,
    conns: HashMap<u64, Conn>,
    /// Sessions with a timed deadline (stall, parked send, write block) —
    /// scanned each loop so the common case stays O(ready), not O(conns).
    attention: BTreeSet<u64>,
    /// An accept awaiting engine-inbox room (listener interest is off
    /// while one is parked).
    parked_accept: Option<ParkedAccept>,
    next_sid: u64,
    scratch: Vec<u8>,
}

impl Reactor {
    /// Builds a reactor over an already-bound listener.
    pub(crate) fn new(
        listener: TcpListener,
        inbox: SyncSender<Event>,
        stopping: Arc<AtomicBool>,
        metrics: Arc<Metrics>,
        cfg: ReactorCfg,
    ) -> std::io::Result<(Reactor, Arc<Waker>)> {
        listener.set_nonblocking(true)?;
        let (waker_rx, waker_tx) = std::os::unix::net::UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker = Arc::new(Waker {
            dirty: Mutex::new(Vec::new()),
            signaled: AtomicBool::new(false),
            tx: waker_tx,
        });
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        poller.add(waker_rx.as_raw_fd(), WAKER_TOKEN, true, false)?;
        let busy = cfg.busy;
        let write_timeout = cfg.write_timeout;
        Ok((
            Reactor {
                poller,
                listener,
                waker: Arc::clone(&waker),
                waker_rx,
                stopping,
                ctx: Ctx {
                    inbox,
                    metrics,
                    busy,
                    write_timeout,
                },
                cfg,
                conns: HashMap::new(),
                attention: BTreeSet::new(),
                parked_accept: None,
                next_sid: 0,
                scratch: Vec::with_capacity(WRITE_CHUNK),
            },
            waker,
        ))
    }

    /// The event loop. Returns when the service is stopping or the engine
    /// owner is gone.
    pub(crate) fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.stopping.load(Ordering::Relaxed) {
                self.drain_and_exit();
                return;
            }
            let timeout = self.poll_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable; fall back to a
                // clean stop instead of spinning.
                self.drain_and_exit();
                return;
            }
            for &ev in &events {
                match ev.token {
                    LISTENER_TOKEN => {
                        if self.accept_ready() == After::Drop {
                            return;
                        }
                    }
                    WAKER_TOKEN => self.waker_ready(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.service_deadlines();
            if self.retry_parked_accept() == After::Drop {
                return;
            }
            if let Some(idle) = self.cfg.idle {
                let slice = (idle / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
                if last_sweep.elapsed() >= slice {
                    last_sweep = Instant::now();
                    self.idle_sweep(idle);
                }
            }
        }
    }

    /// Picks the `epoll_wait` timeout: short while timed deadlines or a
    /// parked accept are outstanding, an idle-slice when reaping is
    /// configured, long otherwise (wakeups then come from readiness and
    /// the waker pipe).
    fn poll_timeout(&self) -> Duration {
        if !self.attention.is_empty() || self.parked_accept.is_some() {
            return Duration::from_millis(1);
        }
        match self.cfg.idle {
            Some(idle) => (idle / 4).clamp(Duration::from_millis(10), Duration::from_millis(250)),
            None => Duration::from_millis(500),
        }
    }

    /// Accepts every pending connection. `After::Drop` means the engine
    /// owner is gone and the loop should exit.
    ///
    /// The `Connect` handoff to the engine is strictly nonblocking: a
    /// full inbox — the overload case — parks the accepted socket and
    /// turns the listener's read interest off instead of stalling the
    /// event loop (which would freeze every existing connection's reads,
    /// writes, and deadlines until the engine drained a slot).
    fn accept_ready(&mut self) -> After {
        if self.parked_accept.is_some() {
            return After::Keep;
        }
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return After::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return After::Keep,
            };
            // Pushes are small one-way lines (no reply to piggyback an
            // ACK on); Nagle would batch them into ~40ms stalls.
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let sid = SessionId(self.next_sid);
            self.next_sid += 1;
            let out = Arc::new(SessionOut::new());
            out.attach_waker(Arc::clone(&self.waker), sid);
            let inflight = Arc::new(AtomicUsize::new(0));
            match self.ctx.inbox.try_send(Event::Connect(
                sid,
                Arc::clone(&out),
                Arc::clone(&inflight),
            )) {
                Ok(()) => {}
                Err(TrySendError::Disconnected(_)) => return After::Drop,
                Err(TrySendError::Full(_)) => {
                    // Level-triggered epoll would spin on the un-drained
                    // backlog, so stop listening until the retry lands.
                    let _ =
                        self.poller
                            .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, false, false);
                    self.parked_accept = Some(ParkedAccept {
                        stream,
                        sid,
                        out,
                        inflight,
                    });
                    return After::Keep;
                }
            }
            self.adopt(stream, sid, out, inflight);
        }
    }

    /// Retries the `Connect` handoff of a parked accept; once the inbox
    /// has room, adopts the connection, restores the listener's read
    /// interest, and drains whatever backlog piled up while parked.
    fn retry_parked_accept(&mut self) -> After {
        let Some(parked) = self.parked_accept.take() else {
            return After::Keep;
        };
        let ParkedAccept {
            stream,
            sid,
            out,
            inflight,
        } = parked;
        match self
            .ctx
            .inbox
            .try_send(Event::Connect(sid, Arc::clone(&out), Arc::clone(&inflight)))
        {
            Ok(()) => {
                let _ = self
                    .poller
                    .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false);
                self.adopt(stream, sid, out, inflight);
                self.accept_ready()
            }
            Err(TrySendError::Disconnected(_)) => After::Drop,
            Err(TrySendError::Full(_)) => {
                self.parked_accept = Some(ParkedAccept {
                    stream,
                    sid,
                    out,
                    inflight,
                });
                After::Keep
            }
        }
    }

    /// Finishes adoption of an accepted connection whose `Connect` event
    /// the engine inbox took: fault plan, poller registration, state.
    fn adopt(
        &mut self,
        stream: TcpStream,
        sid: SessionId,
        out: Arc<SessionOut>,
        inflight: Arc<AtomicUsize>,
    ) {
        if self.stopping.load(Ordering::Relaxed) {
            // Shutdown raced this accept: the engine may never process
            // the Connect, so close the queue ourselves (idempotent).
            out.close();
        }
        let decider = self
            .cfg
            .faults
            .as_ref()
            .and_then(|f| {
                f.plan_for(sid.0)
                    .filter(|p| !p.is_empty())
                    .map(|plan| (plan.clone(), f.seed))
            })
            .map(|(plan, seed)| {
                FaultDecider::new(
                    plan,
                    seed.wrapping_add(sid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    Some(Arc::clone(&self.ctx.metrics.faults)),
                )
            });
        if self
            .poller
            .add(stream.as_raw_fd(), sid.0, true, false)
            .is_err()
        {
            let _ = self.ctx.inbox.send(Event::Gone(sid));
            return;
        }
        self.conns.insert(
            sid.0,
            Conn {
                sid,
                stream,
                out,
                inflight,
                framer: LineFramer::new(MAX_REQUEST_LINE),
                liveness: Liveness::new(),
                decider,
                pending: None,
                read_stall: None,
                skip_read_decide: false,
                write_stall: None,
                skip_write_decide: false,
                blocked_since: None,
                reg_read: true,
                reg_write: false,
            },
        );
    }

    /// Drains the wakeup pipe and flushes every session producers marked
    /// dirty.
    fn waker_ready(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
        let mut dirty = self.waker.take();
        dirty.sort_unstable();
        dirty.dedup();
        for sid in dirty {
            if self.conns.contains_key(&sid.0) {
                self.drive_writes(sid.0);
            }
        }
    }

    /// Handles readiness of one connection token.
    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        if ev.writable {
            self.drive_writes(token);
        }
        if ev.readable || ev.hangup {
            self.drive_reads(token);
        }
    }

    /// Runs the read side of one connection: nonblocking reads through
    /// the fault seam into the framer, then request dispatch.
    fn drive_reads(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.wants_read() {
                return;
            }
            read_some(conn, &self.ctx)
        };
        self.settle(token, outcome);
    }

    /// Runs the write side of one connection (called on `EPOLLOUT`, on a
    /// waker poke, and after stall expiry).
    fn drive_writes(&mut self, token: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            flush_some(conn, &self.ctx, &mut self.scratch)
        };
        self.settle(token, outcome);
    }

    /// Applies a handler outcome: drop the connection or refresh its
    /// poller interest and attention membership.
    fn settle(&mut self, token: u64, outcome: After) {
        if outcome == After::Drop {
            self.teardown(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // A closed and fully drained queue is the engine saying goodbye
        // (QUIT, teardown): finish the socket.
        if conn.out.is_closed() && conn.out.is_drained() {
            self.teardown(token);
            return;
        }
        let wants_read = conn.wants_read();
        let wants_write = conn.wants_write();
        if wants_read != conn.reg_read || wants_write != conn.reg_write {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, wants_read, wants_write)
                .is_err()
            {
                self.teardown(token);
                return;
            }
            conn.reg_read = wants_read;
            conn.reg_write = wants_write;
        }
        if conn.needs_timer(self.ctx.write_timeout) {
            self.attention.insert(token);
        } else {
            self.attention.remove(&token);
        }
    }

    /// Services timed deadlines: parked sends (retry/shed), injected
    /// stalls (resume I/O), and write-block deadlines (kill).
    fn service_deadlines(&mut self) {
        let tokens: Vec<u64> = self.attention.iter().copied().collect();
        let now = Instant::now();
        for token in tokens {
            let (resume_read, resume_write, outcome) = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    self.attention.remove(&token);
                    continue;
                };
                let mut resume_read = false;
                let mut resume_write = false;
                let mut outcome = After::Keep;
                // The write deadline must fire from the timer: a socket
                // whose buffer stays full never reports EPOLLOUT again.
                if let (Some(limit), Some(since)) = (self.ctx.write_timeout, conn.blocked_since) {
                    if now.duration_since(since) >= limit {
                        outcome = After::Drop;
                    }
                }
                if conn.read_stall.is_some_and(|t| now >= t) {
                    conn.read_stall = None;
                    resume_read = true;
                }
                if conn.write_stall.is_some_and(|t| now >= t) {
                    conn.write_stall = None;
                    resume_write = true;
                }
                if outcome == After::Keep {
                    outcome = retry_pending(conn, &self.ctx, now);
                }
                (resume_read, resume_write, outcome)
            };
            if outcome == After::Drop {
                self.teardown(token);
                continue;
            }
            if resume_write {
                self.drive_writes(token);
            }
            if resume_read {
                self.drive_reads(token);
            } else {
                // retry_pending may have unparked the session; refresh
                // interest and attention even without a resume.
                self.settle(token, After::Keep);
            }
        }
    }

    /// Reaps connections silent in both directions past the idle
    /// deadline.
    fn idle_sweep(&mut self, idle: Duration) {
        let reap: Vec<u64> = self
            .conns
            .values()
            .filter(|c| c.liveness.idle() >= idle)
            .map(|c| c.sid.0)
            .collect();
        for token in reap {
            self.ctx.metrics.reaped.fetch_add(1, Ordering::Relaxed);
            self.teardown(token);
        }
    }

    /// Removes one connection: deregister, release any parked in-flight
    /// token, close the socket, and tell the engine exactly once.
    fn teardown(&mut self, token: u64) {
        self.attention.remove(&token);
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.remove(conn.stream.as_raw_fd());
        if conn.pending.take().is_some() {
            conn.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        conn.out.close();
        let _ = conn.stream.shutdown(Shutdown::Both);
        let _ = self.ctx.inbox.send(Event::Gone(conn.sid));
    }

    /// Final best-effort flush of every session's remaining output, then
    /// closes everything. Mirrors the old detached-writer behavior where
    /// queued lines drained after shutdown when the sockets allowed it.
    fn drain_and_exit(&mut self) {
        let deadline = Instant::now() + Duration::from_millis(250);
        while Instant::now() < deadline {
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            let mut pending = false;
            for token in tokens {
                self.drive_writes(token);
                if let Some(conn) = self.conns.get(&token) {
                    pending |= !conn.out.is_drained();
                }
            }
            if !pending {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.teardown(token);
        }
    }
}

/// Reads whatever the socket has ready (through the fault seam), feeds
/// the framer, and dispatches complete lines.
fn read_some(conn: &mut Conn, ctx: &Ctx) -> After {
    let mut buf = [0u8; 4096];
    for _ in 0..READ_BUDGET {
        if conn.pending.is_some() || conn.read_stall.is_some() {
            return After::Keep;
        }
        if let Some(decider) = &conn.decider {
            if conn.skip_read_decide {
                conn.skip_read_decide = false;
            } else {
                match decider.decide(false) {
                    Injected::None => {}
                    Injected::Stall(d) => {
                        // The event loop never sleeps: park the read side
                        // and resume (without a fresh decision) at the
                        // deadline.
                        conn.read_stall = Some(Instant::now() + d);
                        conn.skip_read_decide = true;
                        return After::Keep;
                    }
                    Injected::Reset
                    | Injected::Garble { .. }
                    | Injected::Truncate
                    | Injected::Partial => return After::Drop,
                }
            }
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => return After::Drop,
            Ok(n) => {
                conn.liveness.touch();
                conn.framer.feed(&buf[..n]);
                if dispatch_lines(conn, ctx) == After::Drop {
                    return After::Drop;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return After::Keep,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return After::Drop,
        }
    }
    After::Keep
}

/// Drains complete lines out of the framer into engine events, honoring
/// the overload contract (park on a full inbox, read interest off).
fn dispatch_lines(conn: &mut Conn, ctx: &Ctx) -> After {
    while conn.pending.is_none() {
        let Some(framed) = conn.framer.next_line() else {
            return After::Keep;
        };
        let (event, verb): (Event, &'static str) = match framed {
            FramedLine::TooLong => (
                Event::Bad(
                    conn.sid,
                    format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                ),
                "parse",
            ),
            FramedLine::NotUtf8 => (
                Event::Bad(conn.sid, "request line is not UTF-8".into()),
                "parse",
            ),
            FramedLine::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match parse_request(trimmed) {
                    Ok(req) => {
                        let verb = req.verb();
                        (Event::Request(conn.sid, req), verb)
                    }
                    Err(msg) => (Event::Bad(conn.sid, msg), "parse"),
                }
            }
        };
        // The shedding contract: the in-flight token is taken *before*
        // the send attempt, released by the engine after the reply.
        conn.inflight.fetch_add(1, Ordering::SeqCst);
        match ctx.inbox.try_send(event) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => {
                conn.inflight.fetch_sub(1, Ordering::SeqCst);
                return After::Drop;
            }
            Err(TrySendError::Full(event)) => {
                conn.pending = Some(PendingSend {
                    event: Some(event),
                    verb,
                    since: Instant::now(),
                });
                return After::Keep;
            }
        }
    }
    After::Keep
}

/// Retries a parked send; sheds it with `ERR busy` once the deadline has
/// passed and no earlier request of this session still awaits its reply.
fn retry_pending(conn: &mut Conn, ctx: &Ctx, now: Instant) -> After {
    let Some(pending) = &mut conn.pending else {
        return After::Keep;
    };
    let Some(event) = pending.event.take() else {
        conn.pending = None;
        return After::Keep;
    };
    match ctx.inbox.try_send(event) {
        Ok(()) => {
            conn.pending = None;
            // Bytes may already be framed behind the parked line.
            dispatch_lines(conn, ctx)
        }
        Err(TrySendError::Disconnected(_)) => {
            conn.inflight.fetch_sub(1, Ordering::SeqCst);
            conn.pending = None;
            After::Drop
        }
        Err(TrySendError::Full(event)) => {
            let verb = pending.verb;
            if now >= pending.since + ctx.busy && conn.inflight.load(Ordering::SeqCst) == 1 {
                // Every earlier request was replied to, so an out-of-band
                // ERR keeps the one-reply-per-request order; the request
                // never reached the engine, so a client retry is safe.
                conn.inflight.fetch_sub(1, Ordering::SeqCst);
                conn.pending = None;
                ctx.metrics.record_shed(verb);
                conn.out.send_reply(
                    Reply::Err {
                        code: ErrCode::Busy,
                        message: "server inbox full; request dropped, retry later".into(),
                    }
                    .to_string(),
                );
                return dispatch_lines(conn, ctx);
            }
            pending.event = Some(event);
            After::Keep
        }
    }
}

/// Flushes queued output: coalesced writes for clean connections,
/// per-line writes through the fault seam for faulted ones.
fn flush_some(conn: &mut Conn, ctx: &Ctx, scratch: &mut Vec<u8>) -> After {
    if conn.write_stall.is_some() {
        return After::Keep;
    }
    let outcome = if conn.decider.is_some() {
        flush_faulted(conn)
    } else {
        flush_clean(conn, scratch)
    };
    if outcome == After::Drop {
        return After::Drop;
    }
    if let (Some(limit), Some(since)) = (ctx.write_timeout, conn.blocked_since) {
        if since.elapsed() >= limit {
            return After::Drop;
        }
    }
    After::Keep
}

/// The fast path: stage up to [`WRITE_CHUNK`] bytes spanning queue
/// entries and hand them to the kernel in one call.
fn flush_clean(conn: &mut Conn, scratch: &mut Vec<u8>) -> After {
    for _ in 0..WRITE_BUDGET {
        let staged = conn.out.peek_coalesced(scratch, WRITE_CHUNK);
        if staged == 0 {
            conn.blocked_since = None;
            return After::Keep;
        }
        match conn.stream.write(scratch) {
            Ok(0) => return After::Drop,
            Ok(n) => {
                conn.out.advance(n);
                conn.liveness.touch();
                conn.blocked_since = None;
                if n < staged {
                    // The kernel buffer is full; EPOLLOUT resumes us.
                    conn.blocked_since = Some(Instant::now());
                    return After::Keep;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                conn.blocked_since.get_or_insert_with(Instant::now);
                return After::Keep;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return After::Drop,
        }
    }
    After::Keep
}

/// The faulted path: one queue entry (one wire line) per fault decision,
/// so garble/truncate/partial hit a single line the way the blocking
/// writer's per-line writes did.
fn flush_faulted(conn: &mut Conn) -> After {
    for _ in 0..WRITE_BUDGET {
        let Some((bytes, cursor)) = conn.out.next_chunk() else {
            conn.blocked_since = None;
            return After::Keep;
        };
        let chunk = &bytes[cursor..];
        let injected = if conn.skip_write_decide {
            conn.skip_write_decide = false;
            Injected::None
        } else {
            match &conn.decider {
                Some(decider) => decider.decide(true),
                None => Injected::None,
            }
        };
        let wrote = match injected {
            Injected::None => conn.stream.write(chunk),
            Injected::Stall(d) => {
                conn.write_stall = Some(Instant::now() + d);
                conn.skip_write_decide = true;
                return After::Keep;
            }
            Injected::Reset => return After::Drop,
            Injected::Garble { pos, mask } => {
                if chunk.is_empty() {
                    conn.stream.write(chunk)
                } else {
                    let mut garbled = chunk.to_vec();
                    let idx = (pos % garbled.len() as u64) as usize;
                    garbled[idx] ^= mask;
                    conn.stream.write(&garbled)
                }
            }
            Injected::Truncate => {
                let _ = conn.stream.write(&chunk[..chunk.len() / 2]);
                return After::Drop;
            }
            Injected::Partial => {
                let n = chunk.len().div_ceil(2).clamp(1, chunk.len().max(1));
                conn.stream.write(&chunk[..n])
            }
        };
        match wrote {
            Ok(0) => return After::Drop,
            Ok(n) => {
                conn.out.advance(n);
                conn.liveness.touch();
                conn.blocked_since = None;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                conn.blocked_since.get_or_insert_with(Instant::now);
                return After::Keep;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return After::Drop,
        }
    }
    After::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn poller_reports_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("epoll");
        poller
            .add(listener.as_raw_fd(), 7, true, false)
            .expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(10))
            .expect("wait");
        assert!(events.is_empty(), "nothing pending yet");
        let _client = TcpStream::connect(addr).expect("connect");
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending accept surfaces as readable: {events:?}"
        );
    }

    #[test]
    fn poller_tracks_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("epoll");
        let fd = server.as_raw_fd();
        poller.add(fd, 1, false, true).expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(500))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 1 && e.writable),
            "an idle socket is writable: {events:?}"
        );
        // Drop write interest: nothing should be reported any more.
        poller.modify(fd, 1, false, false).expect("modify");
        poller
            .wait(&mut events, Duration::from_millis(20))
            .expect("wait");
        assert!(events.is_empty(), "no interest, no events: {events:?}");
        poller.remove(fd);
        drop(client);
    }

    #[test]
    fn waker_coalesces_and_drains() {
        let (rx, tx) = std::os::unix::net::UnixStream::pair().expect("pair");
        rx.set_nonblocking(true).expect("nonblocking");
        tx.set_nonblocking(true).expect("nonblocking");
        let waker = Waker {
            dirty: Mutex::new(Vec::new()),
            signaled: AtomicBool::new(false),
            tx,
        };
        waker.wake(SessionId(3));
        waker.wake(SessionId(5));
        waker.wake(SessionId(3));
        let mut sink = [0u8; 16];
        let n = (&rx).read(&mut sink).expect("one byte pending");
        assert_eq!(n, 1, "pokes coalesce into one wakeup byte");
        assert_eq!(waker.take(), vec![SessionId(3), SessionId(5), SessionId(3)]);
        assert!(waker.take().is_empty(), "drained");
        // After a drain the next wake writes a fresh byte.
        waker.wake(SessionId(9));
        let n = (&rx).read(&mut sink).expect("fresh byte");
        assert_eq!(n, 1);
    }
}
