//! A small blocking client for the wire protocol.
//!
//! [`ServiceClient`] owns one TCP connection and demultiplexes the
//! server's single ordered line stream into *replies* (returned from the
//! request methods) and *pushes* (buffered, read with
//! [`ServiceClient::next_push`]). [`apply_push`] maintains a client-side
//! mirror of subscribed results from the push stream — the reconstruction
//! path the integration tests pin against the engine oracle.
//!
//! With a [`ReconnectPolicy`] attached, the client is *self-healing*: a
//! dead or garbled connection is re-dialed with exponential backoff and
//! jitter, every remembered subscription is re-`SUBSCRIBE`d, and the
//! mirror is re-baselined through the same `RESYNC`-then-`SNAPSHOT`
//! machinery the server uses for slow consumers — a consumer of
//! [`ServiceClient::next_push`] + [`apply_push`] converges back to the
//! oracle without any extra code. [`ClientStatus`] events surface the
//! `Degraded`/`Recovered` transitions.
//!
//! This client is deliberately *blocking* — one socket, simple control
//! flow — which is the right shape for tests, examples, and ingest
//! loops. It is **not** how the server side scales: the service owns all
//! of its connections from one epoll reactor thread (see
//! [`crate::reactor`]), and a client-side fleet can do the same — the
//! `serve --fanout` bench follows 10 000 subscriber sockets from one
//! thread with the exported [`crate::reactor::Poller`] and
//! [`crate::session::LineFramer`].

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::fault::splitmix64;
use crate::protocol::{
    parse_server_line, Family, Push, QuerySpec, Reply, Request, ServerLine, WireWindow,
};
use tkm_common::{QueryId, Scored, Timestamp};

/// A client-side failure: transport, framing, or a server `ERR` reply.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server sent a line this client cannot parse, or a reply of an
    /// unexpected shape.
    Protocol(String),
    /// The server answered `ERR`.
    Server {
        /// The machine-readable code.
        code: crate::protocol::ErrCode,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// Reconnect behavior of a self-healing [`ServiceClient`].
///
/// Attempt `n` (1-based) sleeps `min(base·factorⁿ⁻¹, max)` scaled by a
/// seeded jitter factor in `[0.5, 1.0]` before re-dialing, so a fleet of
/// clients dropped by the same fault does not reconnect in lockstep.
#[derive(Clone, Debug)]
pub struct ReconnectPolicy {
    /// First-attempt backoff.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Exponential growth factor per failed attempt.
    pub factor: f64,
    /// Attempts before [`ServiceClient::resume`] gives up.
    pub retries: u32,
    /// Jitter seed (deterministic per client).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            base: Duration::from_millis(20),
            max: Duration::from_secs(2),
            factor: 2.0,
            retries: 16,
            seed: 0x6A77,
        }
    }
}

/// A connection-health transition surfaced by a self-healing client
/// (drained with [`ServiceClient::take_status`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientStatus {
    /// The connection died; reconnect attempt `attempt` is starting.
    Degraded {
        /// 1-based attempt counter within one [`ServiceClient::resume`].
        attempt: u32,
    },
    /// A reconnect succeeded and the session was resumed.
    Recovered {
        /// Subscriptions re-established (and re-baselined).
        resubscribed: usize,
        /// Attempts the recovery took.
        attempts: u32,
    },
}

/// A blocking connection to a [`Service`](crate::Service).
pub struct ServiceClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Pushes received while waiting for a reply, in arrival order.
    pending: VecDeque<Push>,
    /// The endpoint we dialed (needed to re-dial).
    addr: Option<SocketAddr>,
    /// Self-healing configuration; `None` = fail fast (the default).
    policy: Option<ReconnectPolicy>,
    /// Live subscriptions, remembered for session resume.
    subs: Vec<QueryId>,
    /// Degraded/Recovered transitions not yet drained by the caller.
    statuses: VecDeque<ClientStatus>,
    /// Successful session resumes over this client's lifetime.
    reconnects: u64,
    /// Jitter state.
    rng: u64,
}

impl ServiceClient {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        // Requests are small lines; Nagle would stall pipelined sends.
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        let addr = stream.peer_addr().ok();
        Ok(ServiceClient {
            writer: stream,
            reader: BufReader::new(read_half),
            pending: VecDeque::new(),
            addr,
            policy: None,
            subs: Vec::new(),
            statuses: VecDeque::new(),
            reconnects: 0,
            rng: 0,
        })
    }

    /// Makes the client self-healing: on transport or framing failure,
    /// [`ServiceClient::next_push`] (and explicit [`ServiceClient::resume`]
    /// calls) reconnect under `policy` and resume the session.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> ServiceClient {
        self.rng = policy.seed;
        self.policy = Some(policy);
        self
    }

    /// Next unread connection-health transition, if any.
    pub fn take_status(&mut self) -> Option<ClientStatus> {
        self.statuses.pop_front()
    }

    /// Successful session resumes over this client's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Tears the current connection down, re-dials under the reconnect
    /// policy (exponential backoff + jitter), re-`SUBSCRIBE`s every
    /// remembered subscription, and re-baselines the push stream: a
    /// synthetic `RESYNC` marker followed by the fresh baseline
    /// `SNAPSHOT`s lands in the pending-push buffer, so an
    /// [`apply_push`]-driven mirror self-corrects exactly as it does for
    /// a server-side resync.
    ///
    /// Intermediate pushes sent while the connection was down are lost —
    /// that is what the re-baseline repairs. Fails only once `retries`
    /// attempts are exhausted (or no policy/endpoint is configured).
    pub fn resume(&mut self) -> ClientResult<()> {
        let Some(policy) = self.policy.clone() else {
            return Err(ClientError::Protocol(
                "no reconnect policy configured".into(),
            ));
        };
        let Some(addr) = self.addr else {
            return Err(ClientError::Protocol(
                "peer address unknown; cannot reconnect".into(),
            ));
        };
        // The old socket is dead or poisoned either way; make it
        // unambiguous so a half-working connection cannot interleave.
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        let mut backoff = policy.base;
        for attempt in 1..=policy.retries.max(1) {
            self.statuses.push_back(ClientStatus::Degraded { attempt });
            // Jitter in [0.5, 1.0]: never sleeps longer than the nominal
            // backoff, never less than half of it.
            let unit = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
            std::thread::sleep(backoff.mul_f64(0.5 + 0.5 * unit));
            backoff = Duration::from_secs_f64(
                (backoff.as_secs_f64() * policy.factor).min(policy.max.as_secs_f64()),
            );
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            self.writer = stream;
            self.reader = BufReader::new(read_half);
            // Stale pushes from the dead connection must not survive into
            // the resumed stream; the baselines below replace them.
            self.pending.clear();
            match self.resubscribe_all() {
                Ok(resubscribed) => {
                    self.reconnects += 1;
                    self.statuses.push_back(ClientStatus::Recovered {
                        resubscribed,
                        attempts: attempt,
                    });
                    return Ok(());
                }
                // The fresh connection died during resume (or the server
                // is still coming up): keep backing off.
                Err(ClientError::Io(_) | ClientError::Protocol(_)) => continue,
                Err(e @ ClientError::Server { .. }) => return Err(e),
            }
        }
        Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("reconnect gave up after {} attempts", policy.retries.max(1)),
        )))
    }

    /// Re-`SUBSCRIBE`s every remembered subscription on a fresh
    /// connection. The server enqueues each baseline `SNAPSHOT` before
    /// its `OK`, so the baselines accumulate in the pending-push buffer
    /// in subscription order; a `RESYNC` marker is prepended so consumers
    /// can tell intermediate states were lost. Subscriptions whose query
    /// vanished while we were away are dropped from the resume set.
    fn resubscribe_all(&mut self) -> ClientResult<usize> {
        self.pending.push_back(Push::Resync {
            count: self.subs.len(),
        });
        let mut kept = Vec::new();
        for q in self.subs.clone() {
            self.send(&Request::Subscribe(q))?;
            match self.wait_reply()? {
                Reply::OkQuery(_) => kept.push(q),
                Reply::Err { .. } => continue,
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected reply shape: {other}"
                    )))
                }
            }
        }
        let resubscribed = kept.len();
        self.subs = kept;
        Ok(resubscribed)
    }

    /// Runs one closure, healing the connection and retrying once if it
    /// fails on transport/framing while a reconnect policy is attached.
    fn heal<T>(
        &mut self,
        mut op: impl FnMut(&mut ServiceClient) -> ClientResult<T>,
    ) -> ClientResult<T> {
        match op(self) {
            Err(ClientError::Io(_) | ClientError::Protocol(_)) if self.policy.is_some() => {
                self.resume()?;
                op(self)
            }
            other => other,
        }
    }

    /// Sends a raw request line (terminator added here).
    pub fn send(&mut self, req: &Request) -> ClientResult<()> {
        let line = format!("{req}\n");
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<ServerLine> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed".into()));
        }
        parse_server_line(line.trim()).map_err(ClientError::Protocol)
    }

    /// Reads until the next *reply*, buffering any pushes that arrive
    /// first.
    pub fn wait_reply(&mut self) -> ClientResult<Reply> {
        loop {
            match self.read_line()? {
                ServerLine::Reply(r) => return Ok(r),
                ServerLine::Push(p) => self.pending.push_back(p),
            }
        }
    }

    /// Returns the next push, blocking on the socket if none is buffered.
    ///
    /// On a self-healing client (see [`ServiceClient::with_reconnect`]) a
    /// transport or framing failure here — a reset connection, a garbled
    /// line — triggers [`ServiceClient::resume`]; the caller then simply
    /// receives the synthetic `RESYNC` and baseline `SNAPSHOT` pushes of
    /// the resumed session.
    pub fn next_push(&mut self) -> ClientResult<Push> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                return Ok(p);
            }
            match self.read_line() {
                Ok(ServerLine::Push(p)) => return Ok(p),
                Ok(ServerLine::Reply(r)) => {
                    return Err(ClientError::Protocol(format!(
                        "unsolicited reply while reading pushes: {r}"
                    )))
                }
                Err(ClientError::Io(_) | ClientError::Protocol(_)) if self.policy.is_some() => {
                    // The resume seeds `pending`; loop around to drain it.
                    self.resume()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Returns a buffered push without touching the socket.
    pub fn try_buffered_push(&mut self) -> Option<Push> {
        self.pending.pop_front()
    }

    fn expect_query(&mut self) -> ClientResult<QueryId> {
        match self.wait_reply()? {
            Reply::OkQuery(q) => Ok(q),
            other => fail(other),
        }
    }

    /// Registers an unconstrained linear query; returns its server id.
    pub fn register_linear(&mut self, k: usize, weights: &[f64]) -> ClientResult<QueryId> {
        self.register(k, weights, Family::Linear, None, None)
    }

    /// Registers a query with full control over the wire arguments.
    pub fn register(
        &mut self,
        k: usize,
        weights: &[f64],
        family: Family,
        range: Option<Vec<(f64, f64)>>,
        window: Option<WireWindow>,
    ) -> ClientResult<QueryId> {
        self.send(&Request::Register {
            spec: QuerySpec {
                k,
                weights: weights.to_vec(),
                family,
                range,
            },
            window,
        })?;
        self.expect_query()
    }

    /// Terminates a query.
    pub fn unregister(&mut self, q: QueryId) -> ClientResult<()> {
        self.send(&Request::Unregister(q))?;
        self.expect_query().map(drop)
    }

    /// Subscribes to a query's delta stream and returns the baseline
    /// snapshot.
    ///
    /// The server enqueues the baseline `SNAPSHOT` push immediately before
    /// the `OK` reply, so after the reply it is guaranteed to sit in the
    /// push buffer — possibly *behind* deltas of other subscriptions this
    /// connection already holds, which stay buffered for
    /// [`ServiceClient::next_push`] in order.
    pub fn subscribe(&mut self, q: QueryId) -> ClientResult<Vec<Scored>> {
        self.send(&Request::Subscribe(q))?;
        self.expect_query()?;
        if !self.subs.contains(&q) {
            self.subs.push(q);
        }
        // rposition: the baseline is the *last* snapshot enqueued before
        // the reply (earlier buffered snapshots for `q` can exist after an
        // unsubscribe/resubscribe cycle).
        let baseline = self
            .pending
            .iter()
            .rposition(|p| matches!(p, Push::Snapshot { query, .. } if *query == q));
        match baseline.and_then(|pos| self.pending.remove(pos)) {
            Some(Push::Snapshot { entries, .. }) => Ok(entries),
            _ => Err(ClientError::Protocol(format!(
                "baseline snapshot for {q} missing from the subscribe reply"
            ))),
        }
    }

    /// Stops a subscription (idempotent).
    pub fn unsubscribe(&mut self, q: QueryId) -> ClientResult<()> {
        self.subs.retain(|s| *s != q);
        self.send(&Request::Unsubscribe(q))?;
        self.expect_query().map(drop)
    }

    /// One-shot result read. Idempotent, so a self-healing client retries
    /// it once across a resume.
    pub fn snapshot(&mut self, q: QueryId) -> ClientResult<(Timestamp, Vec<Scored>)> {
        self.heal(|c| {
            c.send(&Request::Snapshot(q))?;
            match c.wait_reply()? {
                Reply::OkSnapshot { query, at, entries } if query == q => Ok((at, entries)),
                other => fail(other),
            }
        })
    }

    /// Heartbeat round-trip. Idempotent, so a self-healing client retries
    /// it once across a resume.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.heal(|c| {
            c.send(&Request::Ping)?;
            match c.wait_reply()? {
                Reply::OkPong => Ok(()),
                other => fail(other),
            }
        })
    }

    /// Queues a batch of arrivals (and, under manual ticking, runs the
    /// cycle); returns the server's logical time after the request.
    pub fn tick(&mut self, arrivals: &[f64]) -> ClientResult<Timestamp> {
        self.send(&Request::Tick {
            arrivals: arrivals.to_vec(),
        })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Like [`ServiceClient::tick`] with an explicit timestamp.
    pub fn tick_at(&mut self, at: Timestamp, arrivals: &[f64]) -> ClientResult<Timestamp> {
        self.send(&Request::TickAt {
            at,
            arrivals: arrivals.to_vec(),
        })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Enrolls this connection as site `site`'s uplink on a coordinator
    /// (`SITE <id> dims=<d>`); any `ADOPT` replay pushed ahead of the
    /// reply lands in the push buffer. Returns the acknowledged site id.
    ///
    /// Test/bench drivers use this to play a site by hand; a real site
    /// server maintains its own uplink internally.
    pub fn enroll_site(&mut self, site: u64, dims: usize) -> ClientResult<u64> {
        self.send(&Request::SiteHello { site, dims })?;
        match self.wait_reply()? {
            Reply::OkSite(id) => Ok(id),
            other => fail(other),
        }
    }

    /// Drives one ingest cycle on a site server (`SITETICK @t base=g …`):
    /// `base` is the global id of the batch's first tuple. Returns the
    /// site's logical time after the cycle.
    pub fn site_ingest(
        &mut self,
        at: Timestamp,
        base: u64,
        arrivals: &[f64],
    ) -> ClientResult<Timestamp> {
        self.send(&Request::SiteIngest {
            at,
            base,
            arrivals: arrivals.to_vec(),
        })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Sends a bare cycle marker (`SITETICK @t`): an empty ingest cycle on
    /// a site, a watermark advance on a coordinator (uplink protocol).
    pub fn site_cycle(&mut self, at: Timestamp) -> ClientResult<Timestamp> {
        self.send(&Request::SiteCycle { at })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Server counters as a key → value map. Idempotent, so a
    /// self-healing client retries it once across a resume.
    pub fn stats(&mut self) -> ClientResult<BTreeMap<String, String>> {
        self.heal(|c| {
            c.send(&Request::Stats)?;
            match c.wait_reply()? {
                Reply::OkStats(pairs) => Ok(pairs.into_iter().collect()),
                other => fail(other),
            }
        })
    }

    /// Says goodbye and consumes the connection.
    pub fn quit(mut self) -> ClientResult<()> {
        self.send(&Request::Quit)?;
        match self.wait_reply()? {
            Reply::OkBye => Ok(()),
            other => fail(other),
        }
    }
}

fn fail<T>(reply: Reply) -> ClientResult<T> {
    match reply {
        Reply::Err { code, message } => Err(ClientError::Server { code, message }),
        other => Err(ClientError::Protocol(format!(
            "unexpected reply shape: {other}"
        ))),
    }
}

/// Applies one push to a client-side mirror of subscribed results.
///
/// `DELTA` edits the query's list via [`tkm_core::ResultDelta::apply`];
/// `SNAPSHOT` replaces it wholesale (this is what makes the
/// drop-to-snapshot resync self-healing); `RESYNC` itself changes nothing
/// — the snapshots that follow it do the re-baselining. `ADOPT` (a
/// site-role instruction) and `DEGRADED` (a data-quality marker) never
/// carry result data, so they leave the mirror untouched. Returns the
/// query the push affected, if any.
pub fn apply_push(mirror: &mut BTreeMap<QueryId, Vec<Scored>>, push: &Push) -> Option<QueryId> {
    match push {
        Push::Delta { delta, .. } => {
            delta.apply(mirror.entry(delta.query).or_default());
            Some(delta.query)
        }
        Push::Snapshot { query, entries, .. } => {
            mirror.insert(*query, entries.clone());
            Some(*query)
        }
        Push::Resync { .. } | Push::Adopt { .. } | Push::Degraded { .. } => None,
    }
}
