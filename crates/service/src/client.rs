//! A small blocking client for the wire protocol.
//!
//! [`ServiceClient`] owns one TCP connection and demultiplexes the
//! server's single ordered line stream into *replies* (returned from the
//! request methods) and *pushes* (buffered, read with
//! [`ServiceClient::next_push`]). [`apply_push`] maintains a client-side
//! mirror of subscribed results from the push stream — the reconstruction
//! path the integration tests pin against the engine oracle.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{parse_server_line, Family, Push, Reply, Request, ServerLine, WireWindow};
use tkm_common::{QueryId, Scored, Timestamp};

/// A client-side failure: transport, framing, or a server `ERR` reply.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// The server sent a line this client cannot parse, or a reply of an
    /// unexpected shape.
    Protocol(String),
    /// The server answered `ERR`.
    Server {
        /// The machine-readable code.
        code: crate::protocol::ErrCode,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A blocking connection to a [`Service`](crate::Service).
pub struct ServiceClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Pushes received while waiting for a reply, in arrival order.
    pending: VecDeque<Push>,
}

impl ServiceClient {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(ServiceClient {
            writer: stream,
            reader: BufReader::new(read_half),
            pending: VecDeque::new(),
        })
    }

    /// Sends a raw request line (terminator added here).
    pub fn send(&mut self, req: &Request) -> ClientResult<()> {
        let line = format!("{req}\n");
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_line(&mut self) -> ClientResult<ServerLine> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed".into()));
        }
        parse_server_line(line.trim()).map_err(ClientError::Protocol)
    }

    /// Reads until the next *reply*, buffering any pushes that arrive
    /// first.
    pub fn wait_reply(&mut self) -> ClientResult<Reply> {
        loop {
            match self.read_line()? {
                ServerLine::Reply(r) => return Ok(r),
                ServerLine::Push(p) => self.pending.push_back(p),
            }
        }
    }

    /// Returns the next push, blocking on the socket if none is buffered.
    pub fn next_push(&mut self) -> ClientResult<Push> {
        if let Some(p) = self.pending.pop_front() {
            return Ok(p);
        }
        match self.read_line()? {
            ServerLine::Push(p) => Ok(p),
            ServerLine::Reply(r) => Err(ClientError::Protocol(format!(
                "unsolicited reply while reading pushes: {r}"
            ))),
        }
    }

    /// Returns a buffered push without touching the socket.
    pub fn try_buffered_push(&mut self) -> Option<Push> {
        self.pending.pop_front()
    }

    fn expect_query(&mut self) -> ClientResult<QueryId> {
        match self.wait_reply()? {
            Reply::OkQuery(q) => Ok(q),
            other => fail(other),
        }
    }

    /// Registers an unconstrained linear query; returns its server id.
    pub fn register_linear(&mut self, k: usize, weights: &[f64]) -> ClientResult<QueryId> {
        self.register(k, weights, Family::Linear, None, None)
    }

    /// Registers a query with full control over the wire arguments.
    pub fn register(
        &mut self,
        k: usize,
        weights: &[f64],
        family: Family,
        range: Option<Vec<(f64, f64)>>,
        window: Option<WireWindow>,
    ) -> ClientResult<QueryId> {
        self.send(&Request::Register {
            k,
            weights: weights.to_vec(),
            family,
            range,
            window,
        })?;
        self.expect_query()
    }

    /// Terminates a query.
    pub fn unregister(&mut self, q: QueryId) -> ClientResult<()> {
        self.send(&Request::Unregister(q))?;
        self.expect_query().map(drop)
    }

    /// Subscribes to a query's delta stream and returns the baseline
    /// snapshot.
    ///
    /// The server enqueues the baseline `SNAPSHOT` push immediately before
    /// the `OK` reply, so after the reply it is guaranteed to sit in the
    /// push buffer — possibly *behind* deltas of other subscriptions this
    /// connection already holds, which stay buffered for
    /// [`ServiceClient::next_push`] in order.
    pub fn subscribe(&mut self, q: QueryId) -> ClientResult<Vec<Scored>> {
        self.send(&Request::Subscribe(q))?;
        self.expect_query()?;
        // rposition: the baseline is the *last* snapshot enqueued before
        // the reply (earlier buffered snapshots for `q` can exist after an
        // unsubscribe/resubscribe cycle).
        let baseline = self
            .pending
            .iter()
            .rposition(|p| matches!(p, Push::Snapshot { query, .. } if *query == q));
        match baseline.and_then(|pos| self.pending.remove(pos)) {
            Some(Push::Snapshot { entries, .. }) => Ok(entries),
            _ => Err(ClientError::Protocol(format!(
                "baseline snapshot for {q} missing from the subscribe reply"
            ))),
        }
    }

    /// Stops a subscription (idempotent).
    pub fn unsubscribe(&mut self, q: QueryId) -> ClientResult<()> {
        self.send(&Request::Unsubscribe(q))?;
        self.expect_query().map(drop)
    }

    /// One-shot result read.
    pub fn snapshot(&mut self, q: QueryId) -> ClientResult<(Timestamp, Vec<Scored>)> {
        self.send(&Request::Snapshot(q))?;
        match self.wait_reply()? {
            Reply::OkSnapshot { query, at, entries } if query == q => Ok((at, entries)),
            other => fail(other),
        }
    }

    /// Queues a batch of arrivals (and, under manual ticking, runs the
    /// cycle); returns the server's logical time after the request.
    pub fn tick(&mut self, arrivals: &[f64]) -> ClientResult<Timestamp> {
        self.send(&Request::Tick {
            arrivals: arrivals.to_vec(),
        })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Like [`ServiceClient::tick`] with an explicit timestamp.
    pub fn tick_at(&mut self, at: Timestamp, arrivals: &[f64]) -> ClientResult<Timestamp> {
        self.send(&Request::TickAt {
            at,
            arrivals: arrivals.to_vec(),
        })?;
        match self.wait_reply()? {
            Reply::OkTick { now, .. } => Ok(now),
            other => fail(other),
        }
    }

    /// Server counters as a key → value map.
    pub fn stats(&mut self) -> ClientResult<BTreeMap<String, String>> {
        self.send(&Request::Stats)?;
        match self.wait_reply()? {
            Reply::OkStats(pairs) => Ok(pairs.into_iter().collect()),
            other => fail(other),
        }
    }

    /// Says goodbye and consumes the connection.
    pub fn quit(mut self) -> ClientResult<()> {
        self.send(&Request::Quit)?;
        match self.wait_reply()? {
            Reply::OkBye => Ok(()),
            other => fail(other),
        }
    }
}

fn fail<T>(reply: Reply) -> ClientResult<T> {
    match reply {
        Reply::Err { code, message } => Err(ClientError::Server { code, message }),
        other => Err(ClientError::Protocol(format!(
            "unexpected reply shape: {other}"
        ))),
    }
}

/// Applies one push to a client-side mirror of subscribed results.
///
/// `DELTA` edits the query's list via [`tkm_core::ResultDelta::apply`];
/// `SNAPSHOT` replaces it wholesale (this is what makes the
/// drop-to-snapshot resync self-healing); `RESYNC` itself changes nothing
/// — the snapshots that follow it do the re-baselining. Returns the query
/// the push affected, if any.
pub fn apply_push(mirror: &mut BTreeMap<QueryId, Vec<Scored>>, push: &Push) -> Option<QueryId> {
    match push {
        Push::Delta { delta, .. } => {
            delta.apply(mirror.entry(delta.query).or_default());
            Some(delta.query)
        }
        Push::Snapshot { query, entries, .. } => {
            mirror.insert(*query, entries.clone());
            Some(*query)
        }
        Push::Resync { .. } => None,
    }
}
