#![deny(missing_docs)]
// `deny` (not `forbid`) since PR 10: the reactor's scoped `sys` module
// carries the workspace's only `#[allow(unsafe_code)]` for the four raw
// epoll syscalls; everything else in the crate remains safe Rust.
#![deny(unsafe_code)]

//! Multi-client TCP serving layer over the continuous top-k monitor.
//!
//! The paper's engines answer *"what are the top-k right now?"*; this
//! crate answers *"who needs to hear that it changed?"*. It wraps one
//! [`tkm_core::MonitorServer`] in a std-only (no async runtime) socket
//! server speaking a line-oriented text protocol:
//!
//! * [`protocol`] — the wire grammar: `REGISTER` / `UNREGISTER` /
//!   `SUBSCRIBE` / `UNSUBSCRIBE` / `SNAPSHOT` / `TICK` / `TICKAT` /
//!   `STATS` requests, `OK`/`ERR` replies, and the asynchronous `DELTA` /
//!   `SNAPSHOT` / `RESYNC` pushes;
//! * [`session`] — per-connection state: one ordered outbound byte queue
//!   (shared-payload entries, partial-write cursor) with the
//!   **drop-to-snapshot** backpressure policy — a subscriber that cannot
//!   keep up with its delta stream loses its backlog and is re-baselined
//!   with fresh snapshots instead of growing an unbounded queue — plus
//!   the incremental [`session::LineFramer`] request framing;
//! * [`reactor`] — the readiness-based connection event loop (PR 10): a
//!   hand-rolled level-triggered `epoll` loop on **one thread** owns
//!   every subscriber socket (nonblocking accept/read/write, no async
//!   runtime), so the thread count is O(shards), not O(connections);
//! * [`service`] — the engine-owner event loop: requests from all
//!   sessions are serialized through one bounded inbox, queued arrivals
//!   are batched into **one engine cycle per tick** (immediate under
//!   manual ticking, once per wall-clock interval otherwise), and each
//!   cycle's [`tkm_core::ResultDelta`]s are encoded **once per delta**
//!   into shared byte payloads and fanned out by a pool of shard workers
//!   (queries partitioned by id) to exactly the sessions subscribed to
//!   each query;
//! * [`client`] — a small blocking client used by the integration tests,
//!   the loopback benchmark (`cargo run -p tkm_bench --bin serve`) and the
//!   README walkthrough, with optional reconnect/backoff/resume
//!   resilience ([`ReconnectPolicy`]);
//! * [`fault`] — the [`Transport`] seam plus a deterministic
//!   fault-injection layer ([`FaultyStream`], [`FaultPlan`]) that the
//!   chaos tests and `serve --chaos` script seeded stalls, resets, and
//!   garbling through;
//! * [`distrib`] — the multi-site tier: a [`Role::Site`] server runs a
//!   local engine over its partition of the stream and ships only result
//!   *changes* (`SITEDELTA`) up one coordinator uplink, and a
//!   [`Role::Coordinator`] merges per-site partial results into global
//!   top-k's with lease-based liveness, a bounded-staleness publish
//!   frontier, and graceful `DEGRADED` degradation when sites die.
//!
//! The failure model (idle reaping, write deadlines, `PING`/`PONG`
//! heartbeats, `ERR busy` overload shedding, client backoff) is
//! documented in the README's *Failure model* section and in
//! `docs/ARCHITECTURE.md`.
//!
//! The deployment shape follows the pub/sub framing of the related work
//! (see `PAPERS.md`): many standing subscriptions over one shared stream,
//! with per-client traffic kept to result *deltas* rather than full
//! snapshots.
//!
//! ```no_run
//! use tkm_core::ServerConfig;
//! use tkm_service::{Service, ServiceClient, ServiceConfig};
//!
//! // Serve an SMA engine over a count-1000 window on an OS-chosen port.
//! let service = Service::bind("127.0.0.1:0", ServiceConfig::new(ServerConfig::sma(2, 1000)))
//!     .unwrap();
//!
//! // A subscriber registers a query and follows its changes...
//! let mut sub = ServiceClient::connect(service.local_addr()).unwrap();
//! let q = sub.register_linear(3, &[1.0, 2.0]).unwrap();
//! let baseline = sub.subscribe(q).unwrap();
//! assert!(baseline.is_empty());
//!
//! // ...while an ingest connection drives the stream.
//! let mut ingest = ServiceClient::connect(service.local_addr()).unwrap();
//! ingest.tick(&[0.9, 0.4, 0.3, 0.8]).unwrap();
//!
//! let delta = sub.next_push().unwrap(); // DELTA q0 @1 +t0:.. +t1:..
//! # drop(delta);
//! service.shutdown();
//! ```

pub mod client;
pub mod distrib;
pub mod fault;
pub mod protocol;
pub mod reactor;
pub mod service;
pub mod session;

pub use client::{
    apply_push, ClientError, ClientResult, ClientStatus, ReconnectPolicy, ServiceClient,
};
pub use distrib::{Role, SiteRole};
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultSchedule, FaultyStream, Transport};
pub use protocol::{
    parse_request, parse_server_line, ErrCode, Family, Push, QuerySpec, Reply, Request, ServerLine,
    WireWindow,
};
pub use reactor::{PollEvent, Poller};
pub use service::{Service, ServiceConfig, TickPolicy};
pub use session::{FramedLine, LineFramer, SessionId, SessionOut, MAX_REQUEST_LINE};
