//! The distributed site/coordinator tier.
//!
//! The ROADMAP's multi-site deployment shape: N **site** servers each run
//! a full local engine over their share of the stream and push only their
//! *local result changes* — `SITEDELTA` lines, a few entries per cycle —
//! up one uplink connection to a **coordinator**, which merges the per-site
//! partial results into the global top-k and serves ordinary subscribers
//! unchanged. Because every query's global top-k is contained in the union
//! of the per-site local top-k's (the per-site engine keeps the k best of
//! its subset under the same total order), merging is a concatenate / sort
//! / truncate over tiny pools — the paper's influence-region economics,
//! applied to the network instead of the grid.
//!
//! **Failure model.** The uplink rides the ordinary session layer, so the
//! coordinator's idle reaping doubles as the site *lease*: a site that
//! misses its lease (crash, partition, stall) is reaped, its pools are
//! dropped, and every query is flagged `DEGRADED` to subscribers while the
//! coordinator keeps serving from the surviving sites. Each `SITETICK`
//! marker advances the site's *watermark*; the minimum watermark over live
//! sites is the publish **frontier** — results are merged and pushed only
//! at timestamps every live site has reached, which bounds staleness to
//! the slowest live site. On reconnect a site re-enrolls (`SITE`), the
//! coordinator replays the query set as `ADOPT` pushes, the site re-ships
//! its full local state as baseline `SITEDELTA`s, and the next marker
//! heals the degradation — after which the published results are again
//! bit-exact against a single-node engine fed the union stream.
//!
//! Everything here is driven by the engine-owner thread (see
//! [`crate::service`]); this module only holds the two role state
//! machines, `CoordState` and `SiteState`. Uplink and subscriber
//! connections alike are ordinary sessions owned by the epoll reactor
//! ([`crate::reactor`]), so a coordinator inherits the fan-out tier's
//! scaling: its merged `DELTA`s are encoded once per cycle and the bytes
//! shared across every subscriber queue.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::fault::{FaultPlan, FaultyStream, Transport};
use crate::protocol::{parse_server_line, Push, Reply, Request, ServerLine};
use tkm_common::{QueryId, Scored, Timestamp, TupleId};
use tkm_core::{MonitorServer, ResultDelta};
use tkm_window::WindowSpec;

use crate::protocol::QuerySpec;

/// Which part a server plays in a (possibly single-node) deployment.
#[derive(Clone, Debug, Default)]
pub enum Role {
    /// The classic single-node server: ingests, monitors, serves.
    #[default]
    Standalone,
    /// Merges site partial results into global top-k's and serves
    /// subscribers; ingests only via enrolled sites (`TICK` is rejected).
    Coordinator,
    /// Runs a local engine over a partition of the stream (driven by
    /// `SITETICK` ingest requests) and ships local result changes up its
    /// coordinator uplink; subscriber verbs are rejected.
    Site(SiteRole),
}

/// Configuration of a [`Role::Site`] server's coordinator uplink.
#[derive(Clone, Debug)]
pub struct SiteRole {
    /// The site's stable identifier (survives restarts and reconnects).
    pub site: u64,
    /// Coordinator address, e.g. `127.0.0.1:7071`.
    pub coordinator: String,
    /// Optional fault plan wrapped around the uplink transport (chaos
    /// tests drive seeded resets/stalls/truncation on inter-site links).
    pub uplink_faults: Option<FaultPlan>,
    /// Seed for the uplink fault plan's stochastic choices.
    pub uplink_seed: u64,
}

impl SiteRole {
    /// A fault-free uplink to `coordinator` for site `site`.
    pub fn new(site: u64, coordinator: impl Into<String>) -> SiteRole {
        SiteRole {
            site,
            coordinator: coordinator.into(),
            uplink_faults: None,
            uplink_seed: 0,
        }
    }

    /// Wraps the uplink in a seeded fault plan (builder style).
    pub fn with_uplink_faults(mut self, plan: FaultPlan, seed: u64) -> SiteRole {
        self.uplink_faults = Some(plan);
        self.uplink_seed = seed;
        self
    }
}

// ------------------------------------------------------------- coordinator

use crate::session::SessionId;

/// One enrolled site as the coordinator sees it.
struct SiteLink {
    /// The uplink session currently speaking for this site (`None` while
    /// the site is down or being reaped).
    sid: Option<SessionId>,
    /// The site's last `SITETICK` marker (`None` until the first marker
    /// after (re-)enrollment — such a site blocks the frontier, bounding
    /// staleness while it baselines).
    watermark: Option<Timestamp>,
}

/// Coordinator-role state: enrolled sites, per-site result pools, and the
/// merged results last published to subscribers.
pub(crate) struct CoordState {
    /// site id → link state, for every site ever enrolled.
    links: BTreeMap<u64, SiteLink>,
    /// live uplink session → site id.
    by_sid: BTreeMap<SessionId, u64>,
    /// Sites that missed their lease and have not yet healed (their data
    /// is missing from the published merges).
    degraded: BTreeSet<u64>,
    /// Query shapes, replayed as `ADOPT` on (re-)enrollment.
    specs: BTreeMap<QueryId, QuerySpec>,
    /// query → site id → that site's local top-k (desc, global ids).
    pools: BTreeMap<QueryId, BTreeMap<u64, Vec<Scored>>>,
    /// query → merged result last pushed to subscribers.
    published: BTreeMap<QueryId, Vec<Scored>>,
    /// Publish clock: the largest frontier published so far (clamped
    /// non-decreasing so degrade-time republishes never regress it).
    last_ts: Timestamp,
    /// `SITEDELTA`s merged into pools so far.
    pub(crate) deltas_in: u64,
}

/// What a processed `SITETICK` marker asks the engine owner to do.
pub(crate) struct MarkerOutcome {
    /// Timestamp to label the publish with.
    pub(crate) at: Timestamp,
    /// Whether this marker healed the site (emit `DEGRADED` updates).
    pub(crate) healed: bool,
}

impl CoordState {
    pub(crate) fn new() -> CoordState {
        CoordState {
            links: BTreeMap::new(),
            by_sid: BTreeMap::new(),
            degraded: BTreeSet::new(),
            specs: BTreeMap::new(),
            pools: BTreeMap::new(),
            published: BTreeMap::new(),
            last_ts: Timestamp(0),
            deltas_in: 0,
        }
    }

    /// Enrolls (or re-enrolls) `site` on session `sid`, returning the
    /// query set to replay as `ADOPT` pushes. Any previous session for the
    /// same site id is superseded, and the site's pools are cleared — the
    /// site re-ships its state as baseline `SITEDELTA`s right after the
    /// hello.
    pub(crate) fn enroll(&mut self, sid: SessionId, site: u64) -> Vec<(QueryId, QuerySpec)> {
        if let Some(old) = self.links.get(&site).and_then(|l| l.sid) {
            self.by_sid.remove(&old);
        }
        self.links.insert(
            site,
            SiteLink {
                sid: Some(sid),
                watermark: None,
            },
        );
        self.by_sid.insert(sid, site);
        for per_site in self.pools.values_mut() {
            per_site.remove(&site);
        }
        self.specs.iter().map(|(q, s)| (*q, s.clone())).collect()
    }

    /// The site id enrolled on `sid`, if any.
    pub(crate) fn site_of(&self, sid: SessionId) -> Option<u64> {
        self.by_sid.get(&sid).copied()
    }

    /// The sessions of every live site uplink (`ADOPT` broadcast targets).
    pub(crate) fn uplink_sids(&self) -> Vec<SessionId> {
        self.by_sid.keys().copied().collect()
    }

    /// Handles a dead session. If it carried a site's uplink, the site's
    /// pools are dropped and the site is marked degraded; returns the site
    /// id so the owner republishes and notifies subscribers.
    pub(crate) fn gone(&mut self, sid: SessionId) -> Option<u64> {
        let site = self.by_sid.remove(&sid)?;
        let link = self.links.get_mut(&site)?;
        if link.sid != Some(sid) {
            return None;
        }
        link.sid = None;
        link.watermark = None;
        for per_site in self.pools.values_mut() {
            per_site.remove(&site);
        }
        self.degraded.insert(site);
        Some(site)
    }

    /// Merges a `SITEDELTA` into the sending site's pool for the query.
    pub(crate) fn apply_delta(
        &mut self,
        sid: SessionId,
        delta: &ResultDelta,
    ) -> Result<QueryId, String> {
        let site = self
            .site_of(sid)
            .ok_or("SITEDELTA from a connection that has not enrolled with SITE")?;
        let q = delta.query;
        if !self.specs.contains_key(&q) {
            return Err(format!("SITEDELTA for unregistered query {q}"));
        }
        let pool = self.pools.entry(q).or_default().entry(site).or_default();
        delta.apply(pool);
        self.deltas_in += 1;
        Ok(q)
    }

    /// Advances the sending site's watermark on a `SITETICK` marker.
    /// Returns what to publish: the frontier advanced, or the site just
    /// healed (its baseline is in; merges must be refreshed either way).
    pub(crate) fn marker(&mut self, sid: SessionId, at: Timestamp) -> Option<MarkerOutcome> {
        let site = self.site_of(sid)?;
        if let Some(link) = self.links.get_mut(&site) {
            link.watermark = Some(link.watermark.map_or(at, |w| w.max(at)));
        }
        let healed = self.degraded.remove(&site);
        let advanced = match self.frontier() {
            Some(f) if f > self.last_ts => {
                self.last_ts = f;
                true
            }
            _ => false,
        };
        (advanced || healed).then_some(MarkerOutcome {
            at: self.last_ts,
            healed,
        })
    }

    /// The bounded-staleness frontier: the minimum watermark over live
    /// sites. `None` while any live site has no watermark yet (it is
    /// baselining; publishing around it would silently drop its data) or
    /// no site is live at all.
    fn frontier(&self) -> Option<Timestamp> {
        let mut min = None;
        for link in self.links.values() {
            if link.sid.is_none() {
                continue;
            }
            match (min, link.watermark) {
                (_, None) => return None,
                (None, w) => min = w,
                (Some(m), Some(w)) => min = Some(m.min(w)),
            }
        }
        min
    }

    /// Records a freshly registered query (already accepted by the
    /// coordinator's engine, which allocated its id).
    pub(crate) fn register(&mut self, q: QueryId, spec: QuerySpec) {
        self.specs.insert(q, spec);
        self.published.insert(q, Vec::new());
    }

    /// Drops a terminated query.
    pub(crate) fn unregister(&mut self, q: QueryId) {
        self.specs.remove(&q);
        self.pools.remove(&q);
        self.published.remove(&q);
    }

    /// The merged result last published for `q` (what subscribers and
    /// `SNAPSHOT` see), if the query is registered.
    pub(crate) fn result_of(&self, q: QueryId) -> Option<Vec<Scored>> {
        if !self.specs.contains_key(&q) {
            return None;
        }
        Some(self.published.get(&q).cloned().unwrap_or_default())
    }

    /// The global top-k of one query: concatenate the per-site pools, sort
    /// by the global total order, truncate to k. Pool tuple ids are global
    /// (sites translate before shipping), so the tie-break order is
    /// bit-exact against a single-node engine over the union stream.
    fn merge(&self, q: QueryId, k: usize) -> Vec<Scored> {
        let mut all: Vec<Scored> = self
            .pools
            .get(&q)
            .map(|per_site| per_site.values().flatten().copied().collect())
            .unwrap_or_default();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all.dedup();
        all.truncate(k);
        all
    }

    /// Re-merges every query against its published result, updating the
    /// published state and returning the differences to fan out.
    pub(crate) fn republish(&mut self) -> Vec<ResultDelta> {
        let mut out = Vec::new();
        let queries: Vec<(QueryId, usize)> = self.specs.iter().map(|(q, s)| (*q, s.k)).collect();
        for (q, k) in queries {
            let fresh = self.merge(q, k);
            let stale = self.published.get(&q).map(Vec::as_slice).unwrap_or(&[]);
            if stale != fresh.as_slice() {
                out.push(ResultDelta::diff(q, stale, &fresh));
                self.published.insert(q, fresh);
            }
        }
        out
    }

    /// The publish clock (for degrade-time republishes, which reuse the
    /// last published timestamp rather than advancing it).
    pub(crate) fn publish_ts(&self) -> Timestamp {
        self.last_ts
    }

    /// Sites currently missing from the merges, ascending (the payload of
    /// a `DEGRADED` push; empty = healed).
    pub(crate) fn degraded_sites(&self) -> Vec<u64> {
        self.degraded.iter().copied().collect()
    }

    /// Every registered query id (each is affected when a site's liveness
    /// changes, since every query draws from every site).
    pub(crate) fn queries(&self) -> Vec<QueryId> {
        self.specs.keys().copied().collect()
    }

    /// `STATS` pairs specific to the coordinator role.
    pub(crate) fn stats(&self) -> Vec<(String, String)> {
        let live = self.links.values().filter(|l| l.sid.is_some()).count();
        let degraded = self
            .degraded
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        vec![
            ("role".into(), "coordinator".into()),
            ("sites".into(), self.links.len().to_string()),
            ("sites_live".into(), live.to_string()),
            ("degraded_sites".into(), degraded),
            ("frontier".into(), self.last_ts.to_string()),
            ("site_deltas".into(), self.deltas_in.to_string()),
        ]
    }
}

// -------------------------------------------------------------------- site

/// A contiguous run of locally ingested tuples and where they live in the
/// global id space: `SITETICK` ingest batch `base=<g>` with `len` tuples
/// maps local ids `[local, local+len)` to global `[global, global+len)`.
struct Chunk {
    local: u64,
    global: u64,
    len: u64,
    at: Timestamp,
}

/// How long an uplink read may block while draining queued coordinator
/// traffic at the top of each cycle (also the slice width of the blocking
/// hello read loop). The uplink socket is nonblocking — a timeout-based
/// read would round up to a scheduler jiffy (~4ms) on the ingest RPC's
/// critical path; this is only the sleep quantum between explicit polls.
const DRAIN_SLICE: Duration = Duration::from_millis(1);

/// Overall deadline on the enrollment hello (connect, `SITE`, `ADOPT`
/// replay, `OK s<id>`).
const HELLO_DEADLINE: Duration = Duration::from_secs(2);

/// Deadline on one uplink write; a coordinator that stopped reading kills
/// the uplink (and the site redials next cycle) instead of wedging the
/// engine owner.
const UPLINK_WRITE_DEADLINE: Duration = Duration::from_secs(5);

/// Hard cap on one uplink line (same bound as the session reader).
const MAX_UPLINK_LINE: u64 = 1 << 20;

/// The site's half of the uplink: a buffered line reader and a writer over
/// the [`Transport`] seam, plus the partial-line carry between read
/// slices.
struct Uplink {
    reader: BufReader<Box<dyn Transport>>,
    writer: Box<dyn Transport>,
    buf: Vec<u8>,
}

/// One polled uplink line.
enum Polled {
    Line(String),
    Empty,
    Dead,
}

impl Uplink {
    /// Reads one line if available, resuming partial lines across read
    /// timeout slices. With a deadline, keeps polling until it passes
    /// (the hello path); without one, returns after the first empty slice
    /// (the per-cycle drain).
    fn poll_line(&mut self, deadline: Option<Instant>) -> Polled {
        use std::io::{ErrorKind, Read};
        loop {
            let room = MAX_UPLINK_LINE.saturating_sub(self.buf.len() as u64);
            if room == 0 {
                return Polled::Dead;
            }
            match self
                .reader
                .by_ref()
                .take(room)
                .read_until(b'\n', &mut self.buf)
            {
                Ok(0) => return Polled::Dead,
                Ok(_) => {
                    if self.buf.last() == Some(&b'\n') {
                        let line = match std::str::from_utf8(&self.buf) {
                            Ok(s) => s.trim().to_string(),
                            Err(_) => return Polled::Dead,
                        };
                        self.buf.clear();
                        return Polled::Line(line);
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    match deadline {
                        Some(d) if Instant::now() < d => std::thread::sleep(DRAIN_SLICE),
                        _ => return Polled::Empty,
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Polled::Dead,
            }
        }
    }

    /// Writes one line, returning the bytes put on the wire. The socket is
    /// nonblocking, so a full send buffer is paced out explicitly — up to
    /// [`UPLINK_WRITE_DEADLINE`], after which the uplink counts as dead.
    fn send_line(&mut self, line: &str) -> std::io::Result<u64> {
        use std::io::ErrorKind;
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        let deadline = Instant::now() + UPLINK_WRITE_DEADLINE;
        let mut off = 0;
        while off < bytes.len() {
            match self.writer.write(&bytes[off..]) {
                Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => off += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(DRAIN_SLICE);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.writer.flush()?;
        Ok(bytes.len() as u64)
    }
}

/// Site-role state: the coordinator uplink, the local↔global id maps, and
/// the communication accounting the distributed bench reports.
pub(crate) struct SiteState {
    role: SiteRole,
    uplink: Option<Uplink>,
    /// global query id → local engine query id.
    gmap: BTreeMap<QueryId, QueryId>,
    /// local engine query id → global query id.
    lmap: BTreeMap<QueryId, QueryId>,
    /// Local→global tuple id translation, newest last, pruned to the
    /// window's reach.
    chunks: VecDeque<Chunk>,
    /// Local arrival sequence: the engine assigns dense ids in ingest
    /// order, so this mirrors its internal counter.
    next_local: u64,
    /// Bytes actually shipped up the uplink (deltas + markers + hello).
    pub(crate) bytes_shipped: u64,
    /// Bytes naive forwarding would have shipped (the raw ingest lines).
    pub(crate) bytes_naive: u64,
    /// Failed uplink writes / rejected uplink replies / bad uplink lines.
    pub(crate) uplink_errors: u64,
    /// Uplink (re)connection attempts that completed the hello.
    pub(crate) enrollments: u64,
    /// Local tuple ids that could not be translated (accounting bug
    /// guard; shipped deltas skip them instead of killing the site).
    pub(crate) translate_misses: u64,
}

impl SiteState {
    pub(crate) fn new(role: SiteRole) -> SiteState {
        SiteState {
            role,
            uplink: None,
            gmap: BTreeMap::new(),
            lmap: BTreeMap::new(),
            chunks: VecDeque::new(),
            next_local: 0,
            bytes_shipped: 0,
            bytes_naive: 0,
            uplink_errors: 0,
            enrollments: 0,
            translate_misses: 0,
        }
    }

    /// Ensures the uplink is connected and enrolled, redialing (one
    /// attempt; the next cycle retries) after a failure. On a successful
    /// re-enrollment the coordinator has cleared this site's pools, so the
    /// current local results are re-shipped as baseline `SITEDELTA`s.
    pub(crate) fn ensure_uplink(&mut self, server: &mut MonitorServer) {
        if self.uplink.is_some() {
            return;
        }
        let Some(mut link) = self.connect() else {
            return;
        };
        if !self.hello(&mut link, server) {
            return;
        }
        self.uplink = Some(link);
        self.enrollments += 1;
        self.ship_baseline(server);
    }

    /// Opens the transport (optionally wrapped in the configured fault
    /// plan) without speaking yet.
    fn connect(&mut self) -> Option<Uplink> {
        let Ok(stream) = TcpStream::connect(&self.role.coordinator) else {
            return None;
        };
        // Deltas and watermarks are small lines on the merge's critical
        // path; Nagle batching would cost tens of ms per cycle. The
        // socket is nonblocking (both halves share the fd): the per-cycle
        // drain must return instantly when no coordinator traffic is
        // queued, and [`Uplink`] paces reads and writes explicitly.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let Ok(write_half) = stream.try_clone() else {
            return None;
        };
        let (r, w): (Box<dyn Transport>, Box<dyn Transport>) = match &self.role.uplink_faults {
            Some(plan) if !plan.is_empty() => {
                let (r, w) = FaultyStream::pair(
                    stream,
                    write_half,
                    plan.clone(),
                    self.role.uplink_seed,
                    None,
                );
                (Box::new(r), Box::new(w))
            }
            _ => (Box::new(stream), Box::new(write_half)),
        };
        Some(Uplink {
            reader: BufReader::new(r),
            writer: w,
            buf: Vec::new(),
        })
    }

    /// Speaks the enrollment hello: `SITE <id> dims=<d>`, then drains the
    /// coordinator's `ADOPT` replay (installing each query locally) until
    /// the `OK s<id>` reply.
    fn hello(&mut self, link: &mut Uplink, server: &mut MonitorServer) -> bool {
        let hello = Request::SiteHello {
            site: self.role.site,
            dims: server.dims(),
        }
        .to_string();
        let Ok(n) = link.send_line(&hello) else {
            self.uplink_errors += 1;
            return false;
        };
        self.bytes_shipped += n;
        let deadline = Instant::now() + HELLO_DEADLINE;
        loop {
            match link.poll_line(Some(deadline)) {
                Polled::Line(line) => match parse_server_line(&line) {
                    Ok(ServerLine::Push(push)) => {
                        // ship_baseline after enrollment covers these.
                        let _ = self.apply_adopt(&push, server);
                    }
                    Ok(ServerLine::Reply(Reply::OkSite(_))) => return true,
                    Ok(ServerLine::Reply(Reply::Err { .. })) | Err(_) => {
                        self.uplink_errors += 1;
                        return false;
                    }
                    Ok(ServerLine::Reply(_)) => {}
                },
                Polled::Empty | Polled::Dead => {
                    self.uplink_errors += 1;
                    return false;
                }
            }
        }
    }

    /// Installs or retires one `ADOPT`ed query in the local engine.
    /// Returns the (global, local) ids of a newly installed query, whose
    /// current local result must then be shipped as a baseline.
    fn apply_adopt(
        &mut self,
        push: &Push,
        server: &mut MonitorServer,
    ) -> Option<(QueryId, QueryId)> {
        let Push::Adopt { query: gid, spec } = push else {
            return None;
        };
        match spec {
            Some(spec) => {
                if self.gmap.contains_key(gid) {
                    return None;
                }
                match crate::service::build_query(spec).and_then(|q| server.register(q)) {
                    Ok(lid) => {
                        self.gmap.insert(*gid, lid);
                        self.lmap.insert(lid, *gid);
                        Some((*gid, lid))
                    }
                    Err(_) => {
                        self.uplink_errors += 1;
                        None
                    }
                }
            }
            None => {
                if let Some(lid) = self.gmap.remove(gid) {
                    self.lmap.remove(&lid);
                    let _ = server.unregister(lid);
                }
                None
            }
        }
    }

    /// Drains queued coordinator traffic (query adoptions, acks of shipped
    /// deltas) without blocking past one empty read slice. A query adopted
    /// mid-run immediately ships its current local result as a baseline
    /// `SITEDELTA` — the coordinator's pool for it starts empty.
    pub(crate) fn drain(&mut self, server: &mut MonitorServer) {
        let Some(mut link) = self.uplink.take() else {
            return;
        };
        loop {
            match link.poll_line(None) {
                Polled::Line(line) => match parse_server_line(&line) {
                    Ok(ServerLine::Push(push)) => {
                        if let Some((gid, lid)) = self.apply_adopt(&push, server) {
                            if !self.ship_query_baseline(&mut link, gid, lid, server) {
                                self.uplink_errors += 1;
                                return;
                            }
                        }
                    }
                    Ok(ServerLine::Reply(Reply::Err { .. })) => self.uplink_errors += 1,
                    Ok(ServerLine::Reply(_)) => {}
                    Err(_) => self.uplink_errors += 1,
                },
                Polled::Empty => break,
                Polled::Dead => {
                    self.uplink_errors += 1;
                    return;
                }
            }
        }
        self.uplink = Some(link);
    }

    /// Records one ingest batch's local↔global id mapping and prunes
    /// mappings the window can no longer surface.
    pub(crate) fn record_batch(
        &mut self,
        at: Timestamp,
        base: u64,
        tuples: u64,
        window: WindowSpec,
    ) {
        if tuples > 0 {
            self.chunks.push_back(Chunk {
                local: self.next_local,
                global: base,
                len: tuples,
                at,
            });
            self.next_local += tuples;
        }
        match window {
            WindowSpec::Count(n) => {
                // Keep enough chunks to cover the window plus the batch
                // that evicts into it.
                let floor = self.next_local.saturating_sub(2 * n as u64 + tuples);
                while let Some(front) = self.chunks.front() {
                    if front.local + front.len <= floor {
                        self.chunks.pop_front();
                    } else {
                        break;
                    }
                }
            }
            WindowSpec::Time(d) | WindowSpec::TimeSized { duration: d, .. } => {
                let floor = Timestamp(at.0.saturating_sub(d.saturating_add(2)));
                while let Some(front) = self.chunks.front() {
                    if front.at < floor {
                        self.chunks.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Translates a local tuple id to its global id.
    fn global_id(&mut self, local: TupleId) -> Option<TupleId> {
        let idx = self.chunks.partition_point(|c| c.local + c.len <= local.0);
        match self.chunks.get(idx) {
            Some(c) if local.0 >= c.local => Some(TupleId(c.global + (local.0 - c.local))),
            _ => {
                self.translate_misses += 1;
                None
            }
        }
    }

    /// Translates one local delta into coordinator space: local query id →
    /// global query id, local tuple ids → global tuple ids.
    fn translate(&mut self, delta: &ResultDelta) -> Option<ResultDelta> {
        let gid = *self.lmap.get(&delta.query)?;
        let mut translated = ResultDelta {
            query: gid,
            added: Vec::with_capacity(delta.added.len()),
            removed: Vec::with_capacity(delta.removed.len()),
        };
        for e in &delta.added {
            translated.added.push(Scored {
                score: e.score,
                id: self.global_id(e.id)?,
            });
        }
        for e in &delta.removed {
            translated.removed.push(Scored {
                score: e.score,
                id: self.global_id(e.id)?,
            });
        }
        Some(translated)
    }

    /// Ships one cycle's worth of local result changes plus the cycle
    /// marker up the uplink, and tallies what naive forwarding of the raw
    /// ingest line would have cost instead.
    pub(crate) fn ship_cycle(&mut self, at: Timestamp, deltas: &[ResultDelta], naive_bytes: u64) {
        self.bytes_naive += naive_bytes;
        let Some(mut link) = self.uplink.take() else {
            return;
        };
        for delta in deltas {
            let Some(translated) = self.translate(delta) else {
                continue;
            };
            if translated.is_empty() {
                continue;
            }
            let line = Request::SiteDelta {
                at,
                delta: translated,
            }
            .to_string();
            match link.send_line(&line) {
                Ok(n) => self.bytes_shipped += n,
                Err(_) => {
                    self.uplink_errors += 1;
                    return;
                }
            }
        }
        let marker = Request::SiteCycle { at }.to_string();
        match link.send_line(&marker) {
            Ok(n) => {
                self.bytes_shipped += n;
                self.uplink = Some(link);
            }
            Err(_) => self.uplink_errors += 1,
        }
    }

    /// Re-ships the full current local result of every adopted query as
    /// baseline `SITEDELTA`s (the heal path: the coordinator cleared this
    /// site's pools at re-enrollment).
    fn ship_baseline(&mut self, server: &MonitorServer) {
        let Some(mut link) = self.uplink.take() else {
            return;
        };
        let adopted: Vec<(QueryId, QueryId)> = self.gmap.iter().map(|(g, l)| (*g, *l)).collect();
        for (gid, lid) in adopted {
            if !self.ship_query_baseline(&mut link, gid, lid, server) {
                self.uplink_errors += 1;
                return;
            }
        }
        self.uplink = Some(link);
    }

    /// Ships one query's full current local result as a baseline `SITEDELTA`
    /// over `link`. Returns false when the uplink write failed (the caller
    /// drops the link and counts the error).
    fn ship_query_baseline(
        &mut self,
        link: &mut Uplink,
        gid: QueryId,
        lid: QueryId,
        server: &MonitorServer,
    ) -> bool {
        let Ok(entries) = server.result(lid) else {
            return true;
        };
        let mut baseline = ResultDelta {
            query: gid,
            added: Vec::with_capacity(entries.len()),
            removed: Vec::new(),
        };
        for e in &entries {
            if let Some(global) = self.global_id(e.id) {
                baseline.added.push(Scored {
                    score: e.score,
                    id: global,
                });
            }
        }
        if baseline.added.is_empty() {
            return true;
        }
        let line = Request::SiteDelta {
            at: server.now(),
            delta: baseline,
        }
        .to_string();
        match link.send_line(&line) {
            Ok(n) => {
                self.bytes_shipped += n;
                true
            }
            Err(_) => false,
        }
    }

    /// `STATS` pairs specific to the site role.
    pub(crate) fn stats(&self) -> Vec<(String, String)> {
        vec![
            ("role".into(), "site".into()),
            ("site".into(), self.role.site.to_string()),
            (
                "uplink".into(),
                if self.uplink.is_some() { "up" } else { "down" }.into(),
            ),
            ("adopted".into(), self.gmap.len().to_string()),
            ("bytes_shipped".into(), self.bytes_shipped.to_string()),
            ("bytes_naive".into(), self.bytes_naive.to_string()),
            ("enrollments".into(), self.enrollments.to_string()),
            ("uplink_errors".into(), self.uplink_errors.to_string()),
            ("translate_misses".into(), self.translate_misses.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    fn spec(k: usize) -> QuerySpec {
        QuerySpec {
            k,
            weights: vec![1.0],
            family: crate::protocol::Family::Linear,
            range: None,
        }
    }

    #[test]
    fn merge_is_concat_sort_truncate_with_global_tiebreak() {
        let mut c = CoordState::new();
        c.register(QueryId(0), spec(3));
        c.enroll(SessionId(1), 10);
        c.enroll(SessionId(2), 20);
        c.apply_delta(
            SessionId(1),
            &ResultDelta {
                query: QueryId(0),
                added: vec![s(0.9, 4), s(0.5, 7)],
                removed: vec![],
            },
        )
        .expect("site 10 delta");
        c.apply_delta(
            SessionId(2),
            &ResultDelta {
                query: QueryId(0),
                added: vec![s(0.9, 2), s(0.7, 9)],
                removed: vec![],
            },
        )
        .expect("site 20 delta");
        // Equal scores break ties on the smaller (older) global id.
        assert_eq!(
            c.merge(QueryId(0), 3),
            vec![s(0.9, 2), s(0.9, 4), s(0.7, 9)]
        );
    }

    #[test]
    fn frontier_is_min_watermark_over_live_sites() {
        let mut c = CoordState::new();
        c.register(QueryId(0), spec(2));
        c.enroll(SessionId(1), 0);
        c.enroll(SessionId(2), 1);
        // One site baselining: no frontier, no publishes.
        assert!(c.marker(SessionId(1), Timestamp(5)).is_none());
        // Both reported: frontier = min(5, 3) = 3.
        let out = c.marker(SessionId(2), Timestamp(3)).expect("publish");
        assert_eq!(out.at, Timestamp(3));
        assert!(!out.healed);
        // The slow site catches up: frontier advances to 5.
        let out = c.marker(SessionId(2), Timestamp(5)).expect("publish");
        assert_eq!(out.at, Timestamp(5));
        // A dead site stops gating the frontier.
        assert_eq!(c.gone(SessionId(1)), Some(0));
        assert_eq!(c.degraded_sites(), vec![0]);
        let out = c.marker(SessionId(2), Timestamp(9)).expect("publish");
        assert_eq!(out.at, Timestamp(9));
    }

    #[test]
    fn reenrollment_supersedes_and_heals_on_first_marker() {
        let mut c = CoordState::new();
        c.register(QueryId(0), spec(2));
        c.enroll(SessionId(1), 7);
        c.apply_delta(
            SessionId(1),
            &ResultDelta {
                query: QueryId(0),
                added: vec![s(1.0, 0)],
                removed: vec![],
            },
        )
        .expect("delta");
        c.marker(SessionId(1), Timestamp(1));
        let deltas = c.republish();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].added, vec![s(1.0, 0)]);
        assert_eq!(c.gone(SessionId(1)), Some(7));
        let deltas = c.republish();
        assert_eq!(deltas.len(), 1, "dropping the pool empties the merge");
        assert_eq!(deltas[0].removed, vec![s(1.0, 0)]);
        // Re-enroll on a new session: replay carries the query set.
        let replay = c.enroll(SessionId(9), 7);
        assert_eq!(replay.len(), 1);
        assert!(c.degraded_sites() == vec![7], "degraded until first marker");
        // A stale Gone for the old session must not re-degrade.
        assert_eq!(c.gone(SessionId(1)), None);
        c.apply_delta(
            SessionId(9),
            &ResultDelta {
                query: QueryId(0),
                added: vec![s(1.0, 0)],
                removed: vec![],
            },
        )
        .expect("baseline");
        let out = c.marker(SessionId(9), Timestamp(2)).expect("heal publish");
        assert!(out.healed);
        assert!(c.degraded_sites().is_empty());
        let deltas = c.republish();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].added, vec![s(1.0, 0)]);
    }

    #[test]
    fn site_translates_local_ids_through_batch_chunks() {
        let mut site = SiteState::new(SiteRole::new(3, "127.0.0.1:1"));
        let w = WindowSpec::Time(100);
        site.record_batch(Timestamp(1), 40, 2, w); // locals 0,1 → 40,41
        site.record_batch(Timestamp(2), 90, 3, w); // locals 2,3,4 → 90,91,92
        assert_eq!(site.global_id(TupleId(0)), Some(TupleId(40)));
        assert_eq!(site.global_id(TupleId(1)), Some(TupleId(41)));
        assert_eq!(site.global_id(TupleId(4)), Some(TupleId(92)));
        assert_eq!(site.global_id(TupleId(5)), None);
        assert_eq!(site.translate_misses, 1);
    }

    #[test]
    fn chunk_pruning_respects_the_window_reach() {
        let mut site = SiteState::new(SiteRole::new(0, "127.0.0.1:1"));
        let w = WindowSpec::Time(5);
        for t in 0..20u64 {
            site.record_batch(Timestamp(t), t * 10, 1, w);
        }
        // Old chunks are gone, recent ones (within duration + slack) stay.
        assert_eq!(site.global_id(TupleId(0)), None);
        assert_eq!(site.global_id(TupleId(19)), Some(TupleId(190)));
        assert_eq!(site.global_id(TupleId(14)), Some(TupleId(140)));
        assert!(site.chunks.len() <= 9);
    }
}
