#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Core vocabulary types shared by every crate in the top-k monitoring
//! workspace.
//!
//! This crate deliberately has no dependencies: it defines the tuple/query
//! identifiers, a totally ordered `f64` wrapper, a fast hasher for integer
//! keys, the monotone scoring functions of the paper (linear, product,
//! quadratic, plus an open `Custom` variant), axis-parallel rectangles and
//! the workspace error type.

pub mod error;
pub mod fxhash;
pub mod geom;
pub mod ids;
pub mod ordered;
pub mod score;

pub use error::{Result, TkmError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use geom::Rect;
pub use ids::{QueryId, QuerySlot, Timestamp, TupleId};
pub use ordered::OrderedF64;
pub use score::{
    LinearFn, Monotonicity, ProductFn, QuadraticFn, ScoreFn, Scored, ScoringFunction, MAX_DIMS,
};
